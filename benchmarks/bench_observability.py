"""S5f — the observability layer's overhead gate.

Runs one fixed multi-user AIDE scenario twice — once with the no-op
default (``NOOP``) and once with a full :class:`Observability`
attached — and asserts the two contracts the subsystem makes:

* **byte identity**: every report, diff page, and archive is
  byte-identical with telemetry on and off;
* **bounded overhead**: the instrumented run costs at most 5% more
  wall-clock than the no-op run (min-of-N timing to shed scheduler
  noise).

Writes ``benchmarks/results/BENCH_obs.json`` next to the other
BENCH_* files so CI can archive them.
"""

import json
import os
import time

from repro.aide.engine import Aide
from repro.core.w3newer.hotlist import Hotlist
from repro.obs import NOOP, Observability
from repro.rcs.rcsfile import serialize_rcsfile
from repro.simclock import DAY, SimClock
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

USERS = 3
URLS = 8
ROUNDS = 3
REPS = 5
#: The acceptance gate: instrumented wall-clock / no-op wall-clock.
MAX_OVERHEAD = 1.05


def make_pages():
    """URLS pages, each with ROUNDS successive versions."""
    generator = PageGenerator(seed=23)
    mix = MutationMix.typical(seed=23)
    pages = {}
    for index in range(URLS):
        versions = [generator.page(paragraphs=12, links=6)]
        for _ in range(ROUNDS - 1):
            versions.append(mix.apply(versions[-1]))
        pages[f"/page{index}.html"] = versions
    return pages


def run_scenario(obs, pages):
    """The fixed workload; returns every observable output."""
    clock = SimClock()
    aide = Aide(clock=clock, obs=obs)
    server = aide.network.create_server("www.example.com")
    urls = [f"http://www.example.com{path}" for path in pages]
    for path, versions in pages.items():
        server.set_page(path, versions[0])
    hotlist_lines = "\n".join(f"{url} Page" for url in urls)
    names = [f"user{i}@example.com" for i in range(USERS)]
    for name in names:
        user = aide.add_user(name, Hotlist.from_lines(hotlist_lines))
        for url in urls:
            user.visit(url, clock)
            aide.remember(name, url)
    outputs = []
    for round_index in range(1, ROUNDS):
        clock.advance(3 * DAY)
        for path, versions in pages.items():
            server.set_page(path, versions[round_index])
        clock.advance(DAY)
        for name in names:
            run = aide.run_w3newer(name)
            outputs.append(run.report_html)
            for url in urls[:2]:
                outputs.append(aide.diff(name, url).body)
    outputs.extend(
        serialize_rcsfile(archive)
        for _key, archive in sorted(aide.store.archives.items())
    )
    return aide, outputs


def timed(obs_factory, pages, reps=REPS):
    best = float("inf")
    outputs = None
    aide = None
    for _ in range(reps):
        start = time.perf_counter()
        aide, outputs = run_scenario(obs_factory(), pages)
        best = min(best, time.perf_counter() - start)
    return best, aide, outputs


def test_observability_overhead_gate(sink):
    pages = make_pages()

    off_s, _aide_off, off_outputs = timed(lambda: NOOP, pages)
    on_s, aide_on, on_outputs = timed(
        lambda: Observability(seed=17), pages
    )

    assert on_outputs == off_outputs, (
        "telemetry changed an observable output"
    )
    overhead = on_s / off_s
    events = len(aide_on.obs.journal)
    snapshot = aide_on.obs.snapshot()

    sink.row("S5f: observability overhead (enabled vs no-op, min of "
             f"{REPS} reps)")
    sink.row(f"{'variant':>10s} {'seconds':>9s} {'events':>7s} "
             f"{'metrics':>8s}")
    sink.row(f"{'no-op':>10s} {off_s:9.4f} {'-':>7s} {'-':>8s}")
    sink.row(f"{'enabled':>10s} {on_s:9.4f} {events:7d} "
             f"{len(snapshot):8d}")
    sink.row(f"overhead: {(overhead - 1) * 100:+.1f}% "
             f"(gate: +{(MAX_OVERHEAD - 1) * 100:.0f}%)")

    report = {
        "noop_seconds": round(off_s, 6),
        "enabled_seconds": round(on_s, 6),
        "overhead_ratio": round(overhead, 4),
        "gate_ratio": MAX_OVERHEAD,
        "byte_identical": True,
        "journal_events": events,
        "metric_names": len(snapshot),
        "users": USERS,
        "urls": URLS,
        "rounds": ROUNDS,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_obs.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    assert overhead <= MAX_OVERHEAD, (
        f"observability overhead {(overhead - 1) * 100:.1f}% exceeds the "
        f"{(MAX_OVERHEAD - 1) * 100:.0f}% gate"
    )


def test_telemetry_determinism(sink):
    """Same seed, same scenario → byte-identical JSONL journal."""
    pages = make_pages()
    first, _ = run_scenario(Observability(seed=29), pages)
    second, _ = run_scenario(Observability(seed=29), pages)
    a = first.obs.journal.to_jsonl()
    b = second.obs.journal.to_jsonl()
    assert a == b and a != ""
    sink.row("telemetry determinism: two seeded runs produced "
             f"byte-identical journals ({len(a.splitlines())} records)")
