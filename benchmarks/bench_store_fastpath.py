"""S7b — the snapshot-storage fast path end to end.

Four scenarios, each measuring one fast-path layer against the
reference path (``StoreOptions().reference()``, the paper's exact cost
model) while asserting byte-identical outputs:

* **deep checkout** — revision 1 of a 500-revision archive: keyframe
  checkpoints vs the full reverse-delta chain walk (gate: ≥5x);
* **multi-user coalescing** — 25 users remember the same URL at the
  same instant: one fetch + one check-in fanned out vs 25 independent
  check-ins (gate: ≥3x);
* **revision lookup** — ``revision_at`` over a 1000-revision archive:
  bisect vs linear scan;
* **append-only persistence** — syncing 10 new check-ins into a
  200-URL repository: journal append vs full ``,v`` rewrite.

Results land in ``benchmarks/results/BENCH_snapshot.json`` next to
``BENCH_htmldiff.json`` so CI can archive them.
"""

import json
import os
import time

from repro.core.snapshot.persistence import append_store, load_store, save_store
from repro.core.snapshot.store import SnapshotStore, StoreOptions
from repro.rcs.archive import RcsArchive
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

DEEP_REVISIONS = 500
COALESCE_USERS = 25
LOOKUP_REVISIONS = 1000
JOURNAL_URLS = 200


def history(revisions, seed=23, paragraphs=30):
    page = PageGenerator(seed=seed).page(paragraphs=paragraphs, links=10)
    mix = MutationMix.typical(seed=seed)
    texts = [page]
    while len(texts) < revisions:
        page = mix.apply(page)
        if page != texts[-1]:
            texts.append(page)
    return texts


def best_of(repetitions, work, *, setup=None):
    best = float("inf")
    value = None
    for _ in range(repetitions):
        state = setup() if setup is not None else None
        start = time.perf_counter()
        value = work(state) if setup is not None else work()
        best = min(best, time.perf_counter() - start)
    return best, value


# ----------------------------------------------------------------------
def scenario_deep_checkout(sink):
    texts = history(DEEP_REVISIONS)
    keyframed = RcsArchive("deep", keyframe_interval=16)
    reference = RcsArchive("deep")
    for date, text in enumerate(texts):
        keyframed.checkin(text, date=date)
        reference.checkin(text, date=date)

    loops = 20
    ref_s, ref_text = best_of(
        3, lambda: [reference.checkout("1.1") for _ in range(loops)][-1])
    fast_s, fast_text = best_of(
        3, lambda: [keyframed.checkout("1.1") for _ in range(loops)][-1])
    assert fast_text == ref_text == texts[0], "keyframes changed the output"
    speedup = ref_s / fast_s
    sink.row(f"  deep checkout (rev 1 of {DEEP_REVISIONS}): "
             f"ref {ref_s / loops * 1e3:.3f} ms  fast {fast_s / loops * 1e3:.3f} ms  "
             f"{speedup:.1f}x  (chain {reference.chain_length('1.1')} -> "
             f"{keyframed.chain_length('1.1')} deltas)")
    return {
        "revisions": DEEP_REVISIONS,
        "keyframe_interval": 16,
        "reference_ms_per_checkout": round(ref_s / loops * 1e3, 4),
        "fast_ms_per_checkout": round(fast_s / loops * 1e3, 4),
        "reference_chain_length": reference.chain_length("1.1"),
        "fast_chain_length": keyframed.chain_length("1.1"),
        "speedup": round(speedup, 2),
    }


def scenario_coalescing(sink):
    page = PageGenerator(seed=31).page(paragraphs=400, links=20)
    users = [f"user{i}@att.com" for i in range(COALESCE_USERS)]

    def make_world(options):
        clock = SimClock()
        network = Network(clock)
        network.create_server("busy.com").set_page("/hot.html", page)
        store = SnapshotStore(clock, UserAgent(network, clock),
                              options=options)
        return store

    def sweep(store):
        return [store.remember(user, "http://busy.com/hot.html")
                for user in users]

    ref_s, ref_results = best_of(
        5, sweep, setup=lambda: make_world(StoreOptions().reference()))
    fast_s, fast_results = best_of(
        5, sweep, setup=lambda: make_world(StoreOptions()))

    assert [r.revision for r in fast_results] == \
        [r.revision for r in ref_results]
    assert [r.changed for r in fast_results] == \
        [r.changed for r in ref_results]
    speedup = ref_s / fast_s
    sink.row(f"  {COALESCE_USERS}-user same-instant remember: "
             f"ref {ref_s * 1e3:.2f} ms  coalesced {fast_s * 1e3:.2f} ms  "
             f"{speedup:.1f}x")
    return {
        "users": COALESCE_USERS,
        "page_bytes": len(page),
        "reference_ms": round(ref_s * 1e3, 3),
        "coalesced_ms": round(fast_s * 1e3, 3),
        "speedup": round(speedup, 2),
    }


def scenario_revision_lookup(sink):
    indexed = RcsArchive("lookup")
    for date in range(LOOKUP_REVISIONS):
        indexed.checkin(f"line\nrevision {date}\n", date=date * 10)

    queries = list(range(-5, LOOKUP_REVISIONS * 10 + 5, 7))

    def with_bisect():
        return [indexed.revision_at(q) for q in queries][-1]

    def with_scan():
        # The pre-index cost model: force the linear fallback.
        indexed._dates_monotonic = False
        try:
            return [indexed.revision_at(q) for q in queries][-1]
        finally:
            indexed._dates_monotonic = True

    ref_s, ref_last = best_of(3, with_scan)
    fast_s, fast_last = best_of(3, with_bisect)
    assert ref_last.number == fast_last.number
    speedup = ref_s / fast_s
    sink.row(f"  revision_at x{len(queries)} on {LOOKUP_REVISIONS} revs: "
             f"scan {ref_s * 1e3:.1f} ms  bisect {fast_s * 1e3:.1f} ms  "
             f"{speedup:.1f}x")
    return {
        "revisions": LOOKUP_REVISIONS,
        "queries": len(queries),
        "scan_ms": round(ref_s * 1e3, 3),
        "bisect_ms": round(fast_s * 1e3, 3),
        "speedup": round(speedup, 2),
    }


def scenario_journal(sink, tmp_base):
    clock = SimClock()
    network = Network(clock)
    store = SnapshotStore(clock, UserAgent(network, clock))
    gen = PageGenerator(seed=47)
    for index in range(JOURNAL_URLS):
        clock.advance(1)
        store.checkin_content(
            "archiver@att.com", f"http://corpus.org/doc{index}.html",
            gen.page(paragraphs=6, links=3))

    full_dir = os.path.join(tmp_base, "full")
    journal_dir = os.path.join(tmp_base, "journal")
    save_store(store, journal_dir)

    mix = MutationMix.typical(seed=5)
    for index in range(10):
        clock.advance(1)
        url = f"http://corpus.org/doc{index}.html"
        store.checkin_content(
            "archiver@att.com", url,
            mix.apply(store.view(url, rewrite_base=False)))

    # One shot: append_store mutates the persistence markers, so the
    # first call is the measurement.
    journal_s, appended = best_of(1, lambda: append_store(store, journal_dir))
    assert appended == 10
    full_s, _ = best_of(3, lambda: save_store(store, full_dir))

    # The journal-loaded store equals the fully-rewritten one.
    check_full = SnapshotStore(clock, store.agent)
    check_journal = SnapshotStore(clock, store.agent)
    load_store(check_full, full_dir)
    load_store(check_journal, journal_dir)
    from repro.rcs.rcsfile import serialize_rcsfile
    assert {u: serialize_rcsfile(a) for u, a in check_full.archives.items()} \
        == {u: serialize_rcsfile(a) for u, a in check_journal.archives.items()}

    speedup = full_s / journal_s
    sink.row(f"  sync 10 check-ins into {JOURNAL_URLS}-URL repo: "
             f"rewrite {full_s * 1e3:.1f} ms  journal {journal_s * 1e3:.1f} ms  "
             f"{speedup:.1f}x")
    return {
        "urls": JOURNAL_URLS,
        "new_checkins": 10,
        "full_rewrite_ms": round(full_s * 1e3, 3),
        "journal_append_ms": round(journal_s * 1e3, 3),
        "speedup": round(speedup, 2),
    }


# ----------------------------------------------------------------------
def test_store_fastpath(benchmark, sink, tmp_path):
    sink.row("S7b: snapshot storage fast path vs reference "
             "(byte-identical outputs)")
    report = {
        "deep_checkout": scenario_deep_checkout(sink),
        "remember_coalescing": scenario_coalescing(sink),
        "revision_lookup": scenario_revision_lookup(sink),
        "journal_persistence": scenario_journal(sink, str(tmp_path)),
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_snapshot.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    # Acceptance bars (measured far above; the margins keep slow CI
    # machines from flaking).
    assert report["deep_checkout"]["speedup"] >= 5.0
    assert report["remember_coalescing"]["speedup"] >= 3.0

    # pytest-benchmark row: the headline deep-checkout scenario.
    texts = history(DEEP_REVISIONS)
    archive = RcsArchive("bench", keyframe_interval=16)
    for date, text in enumerate(texts):
        archive.checkin(text, date=date)
    benchmark(lambda: archive.checkout("1.1"))
