"""F1 — Figure 1: the w3newer report.

"Output of w3newer showing a number of anchors (the descriptive text
comes from the hotlist).  The ones that are marked as 'changed' have
modification dates after the time the user's browser history indicates
the URL was seen.  Some URLs were not checked at all, and others were
checked and are known to have been seen by the user."

The bench builds a hotlist exhibiting exactly those three row classes
(plus an error row), generates the report, and verifies its structure:
grouping, bolded changed entries, Remember/Diff/History anchors.
"""

import re

from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.pagegen import PageGenerator

CONFIG = parse_threshold_config(
    "Default 2d\nhttp://fresh\\.com/.* never\n"
)


def build_world():
    clock = SimClock()
    network = Network(clock)
    generator = PageGenerator(seed=14)
    server = network.create_server("tracked.com")
    for i in range(6):
        server.set_page(f"/page{i}.html", generator.page(title=f"Tracked {i}"))
    never = network.create_server("fresh.com")
    never.set_page("/daily.html", "<P>different every day</P>")
    hotlist = Hotlist.from_lines(
        "\n".join(
            [f"http://tracked.com/page{i}.html Interesting page {i}"
             for i in range(6)]
            + ["http://fresh.com/daily.html The daily page",
               "http://tracked.com/gone.html A dead page"]
        )
    )
    tracker = W3Newer(clock, UserAgent(network, clock), hotlist, config=CONFIG)
    return clock, server, tracker


def generate_report():
    clock, server, tracker = build_world()
    # pages 0-2: user saw them, then they changed -> "changed"
    # page 3: user saw it after its last change -> "seen"
    # page 4: changed but user recently visited -> "not checked"
    # page 5: never seen by the user -> "changed (never seen)"
    for i in range(4):
        tracker.mark_page_viewed(f"http://tracked.com/page{i}.html")
    clock.advance(3 * DAY)
    generator = PageGenerator(seed=77)
    for i in range(3):
        server.set_page(f"/page{i}.html", generator.page(title=f"Tracked {i} v2"))
    server.set_page("/page4.html", generator.page(title="Tracked 4 v2"))
    clock.advance(3 * DAY)
    tracker.mark_page_viewed("http://tracked.com/page4.html")
    clock.advance(DAY)
    return tracker.run()


def test_fig1_report(benchmark, sink):
    result = benchmark.pedantic(generate_report, rounds=1, iterations=1)
    html = result.report_html

    sink.row("F1: w3newer report rows (state per hotlist anchor)")
    for outcome in result.outcomes:
        sink.row(f"  {outcome.state.value:24s} {outcome.url}")
    sink.row()
    changed = [o for o in result.outcomes if o.is_new_to_user]
    sink.row(f"changed: {len(changed)}  errors: {len(result.errors)}  "
             f"skipped: {result.skipped}")

    # The three links per anchor (Section 6 / Figure 1's right-hand side).
    assert html.count("[Remember]") == len(result.outcomes)
    assert html.count("[Diff]") == len(result.outcomes)
    assert html.count("[History]") == len(result.outcomes)
    # Changed rows are bolded and sorted before unchanged ones.
    assert len(changed) == 4  # pages 0-2 + never-seen page 5
    first_unchanged = min(
        html.find("Interesting page 3"), html.find("The daily page")
    )
    for outcome in changed:
        title_pos = html.find(outcome.url)
        assert 0 <= title_pos < first_unchanged
    # The dead page surfaces as an error row with the status text.
    assert "404" in html
    # The never-checked page is present but marked never checked.
    assert "never checked" in html
    # Row classes match Figure 1's three categories.
    states = {o.state.value for o in result.outcomes}
    assert {"changed", "seen", "not checked"} <= states
