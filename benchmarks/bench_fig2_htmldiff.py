"""F2 — Figure 2: HtmlDiff's merged page over the USENIX home page.

"Output of HtmlDiff showing the differences between a subset of two
versions of the USENIX Association home page (as of 9/29/95 and
11/3/95).  Small arrows point to changes, with bold italics indicating
additions and with deleted text struck out.  The banner at the top of
the page was inserted by HtmlDiff."

The bench regenerates that page from our reconstructions of the two
versions and reports the visual inventory: banner, arrow chain,
struck-out deletions, emphasized additions, eliminated old markups.
"""

import re

from repro.core.htmldiff.api import html_diff
from repro.web.sites import usenix_home_v1, usenix_home_v2


def run_diff():
    return html_diff(usenix_home_v1(), usenix_home_v2())


def test_fig2_htmldiff(benchmark, sink):
    result = benchmark(run_diff)
    html = result.html

    strikes = len(re.findall(r"<STRIKE>", html))
    adds = len(re.findall(r"<STRONG><I>", html))
    arrows = len(re.findall(r'<IMG SRC="/aide-icons/', html))
    anchors = re.findall(r'<A NAME="(aidediff\d+)">', html)
    links = re.findall(r'<A HREF="#(aidediff\d+)">', html)

    sink.row("F2: HtmlDiff merged page over USENIX home v1 -> v2")
    sink.row(f"  differences (arrow regions): {result.difference_count}")
    sink.row(f"  struck-out deletions:        {strikes}")
    sink.row(f"  emphasized additions:        {adds}")
    sink.row(f"  arrow images:                {arrows}")
    sink.row(f"  chain anchors:               {len(anchors)}")
    sink.row(f"  change density:              {result.change_density:.0%}")
    sink.row()
    sink.row("  merged page (first 25 lines):")
    for line in html.splitlines()[:25]:
        sink.row("    " + line[:100])

    # Figure 2's visual inventory.
    assert "AT&amp;T Internet Difference Engine" in html  # the banner
    assert strikes >= 1 and adds >= 1
    assert arrows == result.difference_count
    for target in links:
        assert target in anchors, f"dangling chain link {target}"
    # The dropped event's link must be gone, its text struck.
    assert "/events/lisa95/" not in html
    assert re.search(r"<STRIKE>[^<]*LISA", html)
    # The added event must arrive with a live link.
    assert '/events/usenix96/' in html
    assert not result.density_suppressed
