"""S2 — economies of scale: centralized vs per-user tracking.

Section 2.1 (URL-minder) and 8.3 (server-side tracking): "Centralizing
the update checks on a W3 server has the advantage of polling hosts
only once regardless of the number of users interested"; "Regardless of
how many users have registered an interest in a page, it need only be
checked once".

The bench sweeps the number of users sharing one community page set and
counts origin-server requests per day under (a) every user running
their own poller and (b) one central tracker serving everyone.
"""

from repro.aide.tracker import CentralTracker
from repro.baselines.w3new import W3New
from repro.core.snapshot.store import SnapshotStore
from repro.core.w3newer.hotlist import Hotlist
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.pagegen import PageGenerator

USER_COUNTS = (1, 5, 25, 100)
SHARED_PAGES = 20
SIM_DAYS = 7


def build_network():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("community.org")
    generator = PageGenerator(seed=2)
    urls = []
    for index in range(SHARED_PAGES):
        path = f"/doc{index}.html"
        server.set_page(path, generator.page())
        urls.append(f"http://community.org{path}")
    return clock, network, server, urls


def run_sweep():
    results = {}
    for users in USER_COUNTS:
        # (a) per-user pollers.
        clock, network, server, urls = build_network()
        hotlist = Hotlist.from_lines("\n".join(urls))
        pollers = [
            W3New(clock, UserAgent(network, clock), hotlist)
            for _ in range(users)
        ]
        for day in range(1, SIM_DAYS + 1):
            clock.advance_to(day * DAY)
            for poller in pollers:
                poller.run()
        per_user_requests = server.request_count

        # (b) one central tracker.
        clock, network, server, urls = build_network()
        store = SnapshotStore(clock, UserAgent(network, clock))
        tracker = CentralTracker(store, clock)
        for user_index in range(users):
            for url in urls:
                tracker.subscribe(f"user{user_index}", url)
        for day in range(1, SIM_DAYS + 1):
            clock.advance_to(day * DAY)
            tracker.poll()
            for user_index in range(users):
                tracker.report_for(f"user{user_index}")
        central_requests = server.request_count

        results[users] = (per_user_requests, central_requests)
    return results


def test_centralized_economy(benchmark, sink):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    sink.row("S2: origin requests over one week, 20 shared pages")
    sink.row(f"{'users':>6s} {'per-user pollers':>17s} {'central':>9s} "
             f"{'ratio':>7s}")
    for users in USER_COUNTS:
        per_user, central = results[users]
        sink.row(f"{users:6d} {per_user:17d} {central:9d} "
                 f"{per_user / central:6.1f}x")

    # The paper's claim: central cost is flat in user count…
    baseline_central = results[USER_COUNTS[0]][1]
    for users in USER_COUNTS:
        assert results[users][1] == baseline_central
    # …while per-user cost is linear in it.
    assert results[100][0] >= 90 * results[1][0]
