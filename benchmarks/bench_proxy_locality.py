"""S11 — proxy-cache locality for w3newer traffic (§8.3).

"Although it runs a related daemon on the same machine as an AT&T-wide
proxy-caching server, which... may eliminate some accesses over the
Internet, there is insufficient locality in that cache for it to
eliminate a significant fraction of requests."

The bench measures exactly that: the proxy's hit fraction for w3newer
checks when users' hotlists barely overlap (the paper's reality) versus
when they overlap heavily (the hope).  The centralized tracker is the
fix the paper draws from this observation, so its request count is
shown alongside.
"""

from repro.aide.engine import Aide
from repro.core.w3newer.hotlist import Hotlist
from repro.simclock import DAY
from repro.workloads.scenario import build_hotlist, build_web

USERS = 8
HOTLIST_SIZE = 25
SIM_DAYS = 7


def run_scenario(shared_fraction):
    web = build_web(sites=30, pages_per_site=10, seed=12)
    aide = Aide(clock=web.clock, network=web.network)
    shared = build_hotlist(web, size=int(HOTLIST_SIZE * shared_fraction),
                           seed=1).urls()
    users = []
    for index in range(USERS):
        private = [
            url for url in build_hotlist(
                web, size=HOTLIST_SIZE, seed=100 + index
            ).urls()
            if url not in shared
        ][: HOTLIST_SIZE - len(shared)]
        hotlist = Hotlist.from_lines("\n".join(shared + private))
        users.append(aide.add_user(f"user{index}", hotlist))

    for day in range(1, SIM_DAYS + 1):
        web.cron.run_until(day * DAY)
        for user in users:
            run = user.tracker.run()
            for outcome in run.changed[:5]:
                user.visit(outcome.url, aide.clock)

    proxy = aide.proxy
    total = proxy.hits + proxy.misses + proxy.revalidations
    hit_rate = proxy.hits / total if total else 0.0
    origin_requests = len(web.network.log)
    return hit_rate, origin_requests


def test_proxy_locality(benchmark, sink):
    def sweep():
        return {
            "disjoint (4% shared)": run_scenario(0.04),
            "half shared": run_scenario(0.5),
            "fully shared": run_scenario(1.0),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    sink.row(f"S11: proxy locality for {USERS} users x {HOTLIST_SIZE} URLs, "
             f"{SIM_DAYS} days")
    sink.row(f"{'hotlist overlap':24s} {'proxy hit rate':>15s} "
             f"{'network requests':>17s}")
    for label, (hit_rate, requests) in results.items():
        sink.row(f"{label:24s} {hit_rate:14.0%} {requests:17d}")

    disjoint = results["disjoint (4% shared)"]
    shared = results["fully shared"]
    # The paper's observation: with little overlap the proxy cannot
    # eliminate a significant fraction of requests...
    assert disjoint[0] < 0.5
    # ...while overlap is precisely what makes caching pay.
    assert shared[0] > disjoint[0]
    assert shared[1] < disjoint[1]
