"""S10 — the CGI timeout problem and the keep-alive remedy (§4.2).

"When a CGI script is invoked, httpd sets up a default timeout, and if
the script does not generate output for a full timeout interval, httpd
will return an error to the browser.  This was a problem for snapshot
because the script might have to retrieve a page over the Internet and
then do a time-consuming comparison...  snapshot forks a child process
that generates one space character... every several seconds."

The bench sweeps operation durations against an httpd timeout with the
keep-alive child on and off, and reports survival rates plus the
padding overhead (bytes of spaces per request).
"""

from repro.core.snapshot.keepalive import CgiTimeout, KeepAlive

DURATIONS = (5, 30, 59, 60, 120, 600)
HTTPD_TIMEOUT = 60
EMIT_INTERVAL = 10


def run_matrix():
    with_child = KeepAlive(httpd_timeout=HTTPD_TIMEOUT,
                           emit_interval=EMIT_INTERVAL)
    without_child = KeepAlive(httpd_timeout=HTTPD_TIMEOUT, enabled=False)
    rows = []
    for duration in DURATIONS:
        try:
            guarded = with_child.run(duration)
            guarded_ok, padding = True, guarded.padding_spaces
        except CgiTimeout:
            guarded_ok, padding = False, 0
        try:
            without_child.run(duration)
            naked_ok = True
        except CgiTimeout:
            naked_ok = False
        rows.append((duration, naked_ok, guarded_ok, padding))
    return rows


def test_keepalive_survival(benchmark, sink):
    rows = benchmark(run_matrix)

    sink.row(f"S10: CGI survival vs operation duration "
             f"(httpd timeout {HTTPD_TIMEOUT}s, child emits every "
             f"{EMIT_INTERVAL}s)")
    sink.row(f"{'duration':>9s} {'no child':>9s} {'with child':>11s} "
             f"{'padding bytes':>14s}")
    for duration, naked_ok, guarded_ok, padding in rows:
        sink.row(f"{duration:8d}s {'ok' if naked_ok else 'TIMEOUT':>9s} "
                 f"{'ok' if guarded_ok else 'TIMEOUT':>11s} {padding:14d}")

    by_duration = {row[0]: row for row in rows}
    # Below the timeout both configurations survive.
    assert by_duration[59][1] and by_duration[59][2]
    # At/over the timeout the naked script dies; the child saves it.
    for duration in (60, 120, 600):
        assert not by_duration[duration][1]
        assert by_duration[duration][2]
    # The overhead is honest: one space per emit interval.
    assert by_duration[600][3] == 600 // EMIT_INTERVAL
