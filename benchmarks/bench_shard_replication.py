"""S20 — replicated shards under seeded chaos (§4.2).

"The facility could ... replicate itself among multiple computers, as
many W3 services do."  This bench is the replication layer's gate
battery, all in virtual time on seeded runs:

* **availability + durability under chaos** — with R=2, a
  :class:`~repro.serve.ShardFaultPlan` kills each of the 4 shards once
  mid-run under a 10,000-user (20,000-request) closed loop; every
  request must still be eventually served (no 5xx after the
  Retry-After dance) and no acknowledged revision may be lost;
* **byte-identity to an unfaulted twin** — after the anti-entropy
  scrub, every response and every replica's per-URL state fingerprint
  from the chaos run must be byte-identical to a zero-fault twin run:
  recovery provably reconstructs the exact state, not an
  approximation.  (The identity load is read-only — reads never stamp
  state here, so the twin comparison is exact; a mutating stream's
  user-stamp *times* would shift with retry timing and prove nothing.)
* **write-path chaos is reproducible and convergent** — a mutating
  load under the same staggered kills drives writes through failover
  and hinted handoff; every hint drains, every URL's replicas converge
  to byte-identity, and running the identical seeded run twice yields
  identical stats and identical fleet state;
* **scrub convergence** — replicas diverged by hand (same revision
  count, different history: the failure read repair cannot see) are
  converged to fingerprint identity by the scrub alone;
* **bounded write amplification** — the R=2 fleet stores at most
  ``1.15 x R`` times the logical archive bytes of the unreplicated
  R=1 fleet under the identical seeded workload.

Writes ``benchmarks/results/BENCH_shard_replication.json``.
"""

import json
import os
import time

from repro.serve import (
    ClosedLoopLoad,
    DiffServer,
    ReplicationManager,
    ShardFaultPlan,
    build_world,
    seed_world,
    url_fingerprint,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SEED = 1996
PAGES = 128
ROUNDS = 3
SHARDS = 4
USERS = 10_000
REQUESTS_PER_USER = 2
WORKERS_PER_SHARD = 8
QUEUE_LIMIT = 256
THINK_TIME = 30
ARRIVAL_WINDOW = 120
SCRUB_INTERVAL = 300
REPLICATION = 2

#: Seeding (PAGES x ROUNDS remembers, 30s spacing, 3600s round gap)
#: ends at t=22320 and the load's makespan is ~1650s, so this schedule
#: kills every shard once *inside* the load window.
KILL_START = 22_450
KILL_DOWNTIME = 150
KILL_SPACING = 350

#: The smaller mutating chaos run (hinted-handoff + reproducibility).
WRITE_USERS = 2_000
WRITE_MUTATION_RATE = 0.05

#: The acceptance gates.
MAX_WRITE_AMPLIFICATION = 1.15  # x R


def build_server(replication, fault_plan=None):
    world = build_world(SEED, pages=PAGES)
    server = DiffServer(
        world.clock, world.agent, shards=SHARDS,
        workers_per_shard=WORKERS_PER_SHARD, queue_limit=QUEUE_LIMIT,
        replication=replication, fault_plan=fault_plan,
        scrub_interval=SCRUB_INTERVAL if replication > 1 else 0,
    )
    revisions = seed_world(server, world, seed=SEED, rounds=ROUNDS)
    return world, server, revisions


def run_load(world, server, revisions, users=USERS, mutation_rate=0.0):
    load = ClosedLoopLoad(
        SEED, world.urls, revisions, users=users,
        requests_per_user=REQUESTS_PER_USER, think_time=THINK_TIME,
        arrival_window=ARRIVAL_WINDOW, mutation_rate=mutation_rate,
    )
    started = time.time()
    report = load.run(server, start=world.clock.now)
    return report, time.time() - started


def settle(server):
    """Drain any scheduled transitions past the end of the run, then
    scrub the URL space to a fixed point."""
    mgr = server.replicator
    mgr.advance(10**9)
    for _ in range(8):
        if not mgr.scrub(10**9):
            break
    return mgr


def stored_bytes(server):
    """Physical archive bytes across the whole fleet: every revision
    text on every shard (replicas count once per copy, which is the
    point of the amplification gate)."""
    total = 0
    for shard in server.store.shards:
        for archive in shard.archives.values():
            for _info, text in archive.iter_texts():
                total += len(text)
    return total


def replica_fingerprints(server):
    """(shard, url) -> fingerprint for every replica copy in the
    fleet, the byte-identity witness between two runs."""
    mgr = server.replicator
    out = {}
    for url in mgr.known_urls():
        for shard in mgr.replica_set(url):
            out[(shard, url)] = url_fingerprint(
                server.store.shards[shard], url)
    return out


def kill_plan():
    return ShardFaultPlan.kill_each_once(
        SHARDS, start=KILL_START, downtime=KILL_DOWNTIME,
        spacing=KILL_SPACING)


def test_replicated_shards_survive_chaos(sink):
    sink.row("S20: replicated shards with failover, hinted handoff, and "
             "anti-entropy repair")
    sink.row(f"  shards={SHARDS} R={REPLICATION} pages={PAGES} "
             f"users={USERS} requests/user={REQUESTS_PER_USER}")
    sink.row("")

    # -- the chaos run and its zero-fault twin -------------------------
    chaos_world, chaos_server, chaos_revisions = build_server(
        REPLICATION, fault_plan=kill_plan())
    chaos_report, chaos_wall = run_load(chaos_world, chaos_server,
                                        chaos_revisions)
    chaos_mgr = settle(chaos_server)

    calm_world, calm_server, calm_revisions = build_server(REPLICATION)
    calm_report, calm_wall = run_load(calm_world, calm_server,
                                      calm_revisions)
    settle(calm_server)
    assert chaos_revisions == calm_revisions

    for label, report, wall in (("chaos", chaos_report, chaos_wall),
                                ("zero-fault", calm_report, calm_wall)):
        sink.row(f"  {label:<11} makespan={report.makespan}s "
                 f"completed={report.completed}/{report.requests} "
                 f"shed={report.shed} wall={wall:.1f}s")
    stats = chaos_mgr.stats()
    sink.row(f"  chaos: crashes={stats['crashes']} "
             f"recoveries={stats['recoveries']} "
             f"failovers={stats['failovers']} "
             f"unavailable={stats['unavailable']}")
    sink.row("")

    # -- gate: 100% availability through every single-shard kill -------
    assert stats["crashes"] == SHARDS, (
        f"only {stats['crashes']}/{SHARDS} scheduled kills fired inside "
        f"the run; retune KILL_START/KILL_SPACING")
    assert stats["recoveries"] == SHARDS
    assert chaos_report.completed == USERS * REQUESTS_PER_USER
    five_hundreds = sum(
        1 for response in chaos_report.responses.values()
        if response.status >= 500
    )
    assert five_hundreds == 0, (
        f"{five_hundreds} requests ended in a 5xx despite retries")

    # -- gate: zero lost revisions -------------------------------------
    lost = 0
    for url, revs in chaos_revisions.items():
        key = chaos_server.store.router.canonical(url)
        for shard in chaos_mgr.replica_set(key):
            archive = chaos_server.store.shards[shard].archives.get(key)
            if archive is None or archive.revision_count < len(revs):
                lost += 1
    sink.row(f"  durability: {lost} replica copies missing acknowledged "
             f"revisions (gate: 0)")
    assert lost == 0

    # -- gate: responses byte-identical to the zero-fault twin ---------
    response_mismatches = sum(
        1 for key, response in chaos_report.responses.items()
        if (response.status, response.body)
        != (calm_report.responses[key].status,
            calm_report.responses[key].body)
    )
    sink.row(f"  response identity: "
             f"{len(chaos_report.responses) - response_mismatches}/"
             f"{len(chaos_report.responses)} identical to zero-fault run")
    assert response_mismatches == 0

    # -- gate: post-scrub state byte-identical to the twin -------------
    chaos_prints = replica_fingerprints(chaos_server)
    calm_prints = replica_fingerprints(calm_server)
    assert set(chaos_prints) == set(calm_prints)
    state_mismatches = sum(
        1 for key, digest in chaos_prints.items()
        if calm_prints[key] != digest
    )
    sink.row(f"  state identity: "
             f"{len(chaos_prints) - state_mismatches}/{len(chaos_prints)} "
             f"replica fingerprints identical to zero-fault run")
    assert state_mismatches == 0

    # -- gate: mutating chaos drains hints, converges, reproduces ------
    write_gates = _write_chaos_gate(sink)

    # -- gate: scrub converges manual divergence -----------------------
    scrub_repairs = _scrub_convergence_gate(sink)

    # -- gate: write amplification bounded -----------------------------
    plain_world, plain_server, plain_revisions = build_server(1)
    plain_report, plain_wall = run_load(plain_world, plain_server,
                                        plain_revisions)
    assert plain_report.completed == USERS * REQUESTS_PER_USER
    plain_bytes = stored_bytes(plain_server)
    replicated_bytes = stored_bytes(chaos_server)
    amplification = replicated_bytes / plain_bytes
    sink.row(f"  write amplification: {replicated_bytes} bytes at "
             f"R={REPLICATION} vs {plain_bytes} at R=1 -> "
             f"{amplification:.3f}x (gate: <= "
             f"{MAX_WRITE_AMPLIFICATION * REPLICATION:.2f}x)")
    assert amplification <= MAX_WRITE_AMPLIFICATION * REPLICATION, (
        f"replication stores {amplification:.3f}x the unreplicated "
        f"bytes; expected <= {MAX_WRITE_AMPLIFICATION}x per replica"
    )

    # -- persist -------------------------------------------------------
    payload = {
        "seed": SEED,
        "pages": PAGES,
        "shards": SHARDS,
        "replication": REPLICATION,
        "users": USERS,
        "requests_per_user": REQUESTS_PER_USER,
        "kill_plan": {
            "start": KILL_START,
            "downtime": KILL_DOWNTIME,
            "spacing": KILL_SPACING,
        },
        "chaos": chaos_report.to_dict(),
        "zero_fault": calm_report.to_dict(),
        "unreplicated": plain_report.to_dict(),
        "replication_stats": stats,
        "gates": {
            "availability_5xx": five_hundreds,
            "lost_revision_copies": lost,
            "response_mismatches": response_mismatches,
            "state_fingerprint_mismatches": state_mismatches,
            "replica_fingerprints_compared": len(chaos_prints),
            "write_chaos": write_gates,
            "scrub_convergence_repairs": scrub_repairs,
            "write_amplification": round(amplification, 4),
            "max_write_amplification": MAX_WRITE_AMPLIFICATION
            * REPLICATION,
        },
        "wall_seconds": {
            "chaos": round(chaos_wall, 2),
            "zero_fault": round(calm_wall, 2),
            "unreplicated": round(plain_wall, 2),
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_shard_replication.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _run_write_chaos():
    world, server, revisions = build_server(REPLICATION,
                                            fault_plan=kill_plan())
    report, _wall = run_load(world, server, revisions, users=WRITE_USERS,
                             mutation_rate=WRITE_MUTATION_RATE)
    mgr = settle(server)
    return server, mgr, report


def _write_chaos_gate(sink):
    """Writes through failover and hinted handoff: the mutating chaos
    run must drain every hint, converge every URL's replicas to
    byte-identity, and reproduce exactly when run twice."""
    first_server, first_mgr, first_report = _run_write_chaos()
    second_server, second_mgr, second_report = _run_write_chaos()

    stats = first_mgr.stats()
    sink.row(f"  write chaos: completed={first_report.completed}/"
             f"{first_report.requests} hints queued="
             f"{stats['handoff']['queued']} replayed="
             f"{stats['handoff']['replayed']} depth="
             f"{stats['handoff']['depth']}")
    assert first_report.completed == first_report.requests
    assert stats["crashes"] == SHARDS
    assert stats["handoff"]["queued"] > 0, (
        "the mutating chaos run never exercised hinted handoff; raise "
        "WRITE_MUTATION_RATE or widen the kill windows")
    assert stats["handoff"]["depth"] == 0, "undrained handoff hints"

    unconverged = [url for url in first_mgr.known_urls()
                   if not first_mgr.converged(url)]
    sink.row(f"  write chaos convergence: {len(unconverged)} unconverged "
             f"URLs (gate: 0)")
    assert unconverged == []

    assert second_mgr.stats() == stats, "chaos run is not reproducible"
    first_prints = replica_fingerprints(first_server)
    second_prints = replica_fingerprints(second_server)
    rerun_mismatches = sum(
        1 for key, digest in first_prints.items()
        if second_prints.get(key) != digest
    )
    sink.row(f"  write chaos reproducibility: {rerun_mismatches} state "
             f"mismatches across identical reruns (gate: 0)")
    assert first_prints.keys() == second_prints.keys()
    assert rerun_mismatches == 0
    return {
        "hints_queued": stats["handoff"]["queued"],
        "hints_replayed": stats["handoff"]["replayed"],
        "unconverged_urls": len(unconverged),
        "rerun_state_mismatches": rerun_mismatches,
    }


def _scrub_convergence_gate(sink):
    """Diverge replicas by hand — equal revision counts, different
    history, the shape read repair cannot detect — and prove the scrub
    alone converges every URL to fingerprint identity."""
    world, server, _revisions = build_server(REPLICATION)
    mgr: ReplicationManager = server.replicator
    diverged = []
    for url in world.urls[:16]:
        key = server.store.router.canonical(url)
        victim = mgr.replica_set(key)[1]
        shard = server.store.shards[victim]
        count = shard.archives[key].revision_count
        del shard.archives[key]
        archive = shard.archive_for(key)
        for number in range(count):
            archive.checkin(f"<P>divergent {number}</P>", number + 1,
                            author="entropy")
        diverged.append(url)
    assert all(not mgr.converged(url) for url in diverged)

    repairs = 0
    for _ in range(8):
        repairs += mgr.scrub(world.clock.now + 10**9)
        if all(mgr.converged(url) for url in diverged):
            break
    sink.row(f"  scrub convergence: {len(diverged)} URLs diverged, "
             f"{repairs} repairs to byte-identity (gate: all converge)")
    assert all(mgr.converged(url) for url in diverged)
    assert repairs >= len(diverged)
    return repairs
