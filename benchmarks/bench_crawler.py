"""S12 — hierarchical tracking: one bookmark, a whole collection (§8.3).

"Many times, a 'home page' refers to a number of other pages, both
within the same namespace and external.  By following the internal
pages automatically, a single entry in one's hotlist could result in
notification whenever any of those pages is modified...  Following
links recursively is inappropriate for tools run by every user
individually but would be feasible for a centralized service."

The bench compares notification *coverage* for changes to a home
page's subpages:

* plain per-user w3newer with only the home page bookmarked — blind to
  subpage edits unless the home page itself changes;
* the centralized tracker with the home page as a crawl root — every
  subpage edit surfaces.
"""

from repro.aide.tracker import CentralTracker
from repro.core.snapshot.store import SnapshotStore
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.mutate import edit_sentence
from repro.workloads.pagegen import PageGenerator

SUBPAGES = 8
SIM_DAYS = 10


def build_site():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("project.org")
    generator = PageGenerator(seed=6)
    for index in range(SUBPAGES):
        server.set_page(f"/part{index}.html",
                        generator.page(title=f"Part {index}"))
    links = "".join(
        f'<LI><A HREF="/part{i}.html">Part {i}</A>' for i in range(SUBPAGES)
    )
    server.set_page(
        "/",
        "<HTML><HEAD><TITLE>The Project</TITLE></HEAD><BODY>"
        f"<H1>The Project</H1><UL>{links}</UL></BODY></HTML>",
    )
    return clock, network, server


def run_comparison():
    import random

    # --- per-user w3newer, home page only ------------------------------
    clock, network, server = build_site()
    rng = random.Random(13)
    tracker = W3Newer(
        clock, UserAgent(network, clock),
        Hotlist.from_lines("http://project.org/ The project home page"),
        config=parse_threshold_config("Default 0\n"),
    )
    # The user has already read the home page; only *new* changes count.
    tracker.mark_page_viewed("http://project.org/")
    w3newer_detected = 0
    subpage_edits = 0
    for day in range(1, SIM_DAYS + 1):
        clock.advance_to(day * DAY)
        # One subpage edited per day; the home page itself never changes.
        index = day % SUBPAGES
        page = server.get_page(f"/part{index}.html")
        server.set_page(f"/part{index}.html", edit_sentence(page.body, rng))
        subpage_edits += 1
        run = tracker.run()
        w3newer_detected += len(run.changed)
        for outcome in run.changed:
            tracker.mark_page_viewed(outcome.url)

    # --- central tracker with a crawl root -----------------------------
    clock, network, server = build_site()
    rng = random.Random(13)
    store = SnapshotStore(clock, UserAgent(network, clock))
    central = CentralTracker(store, clock)
    central.add_crawl_root("fred", "http://project.org/", depth=1)
    central.poll()  # baseline crawl + archive
    crawler_detected = 0
    for day in range(1, SIM_DAYS + 1):
        clock.advance_to(day * DAY)
        index = day % SUBPAGES
        page = server.get_page(f"/part{index}.html")
        server.set_page(f"/part{index}.html", edit_sentence(page.body, rng))
        changed = central.poll()
        crawler_detected += sum(1 for flag in changed.values() if flag)
    tracked = len(central.tracked_urls())
    return subpage_edits, w3newer_detected, crawler_detected, tracked


def test_hierarchical_tracking(benchmark, sink):
    edits, w3newer_hits, crawler_hits, tracked = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    sink.row("S12: one bookmarked home page, subpages edited daily")
    sink.row(f"  subpage edits made:               {edits}")
    sink.row(f"  detected by home-page-only w3newer: {w3newer_hits}")
    sink.row(f"  detected by crawl-root tracker:     {crawler_hits}")
    sink.row(f"  pages tracked from one bookmark:    {tracked}")

    # The home page never changes, so the bookmark-only tracker sees
    # nothing; the crawler sees every edit.
    assert w3newer_hits == 0
    assert crawler_hits == edits
    assert tracked == 1 + SUBPAGES
