"""S12/S19 — crawl-scale benchmarks.

S12 — hierarchical tracking: one bookmark, a whole collection (§8.3).

"Many times, a 'home page' refers to a number of other pages, both
within the same namespace and external.  By following the internal
pages automatically, a single entry in one's hotlist could result in
notification whenever any of those pages is modified...  Following
links recursively is inappropriate for tools run by every user
individually but would be feasible for a centralized service."

The bench compares notification *coverage* for changes to a home
page's subpages:

* plain per-user w3newer with only the home page bookmarked — blind to
  subpage edits unless the home page itself changes;
* the centralized tracker with the home page as a crawl root — every
  subpage edit surfaces.

S19 — adaptive revisit scheduling + the concurrent crawl pipeline at
100k-URL scale.  Three gates, written to
``benchmarks/results/BENCH_crawler.json``:

* **freshness**: with an equal per-run fetch budget, the adaptive
  policy (Poisson change-rate estimator, seeded from the world's
  synthetic revision histories) must detect at least 1.3x more changes
  per HTTP request than the paper's static Table-1-style policy;
* **throughput**: 8 governor workers must shrink the virtual makespan
  of the same fetch load at least 4x vs 1 worker;
* **determinism**: two executions of the same seeded run, in
  independently built worlds, must produce byte-identical Figure 1
  reports and identical fetch traces.
"""

import hashlib
import json
import os

from repro.aide.tracker import CentralTracker
from repro.core.w3newer import (
    BrowserHistory,
    ChangeRateEstimator,
    CrawlOptions,
    ReportOptions,
    SchedulePolicy,
    UrlState,
)
from repro.web.politeness import PolitenessLog
from repro.workloads import (
    apply_changes,
    build_crawl_hotlist,
    build_crawl_world,
    seed_estimator,
)
from repro.core.snapshot.store import SnapshotStore
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.mutate import edit_sentence
from repro.workloads.pagegen import PageGenerator

SUBPAGES = 8
SIM_DAYS = 10


def build_site():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("project.org")
    generator = PageGenerator(seed=6)
    for index in range(SUBPAGES):
        server.set_page(f"/part{index}.html",
                        generator.page(title=f"Part {index}"))
    links = "".join(
        f'<LI><A HREF="/part{i}.html">Part {i}</A>' for i in range(SUBPAGES)
    )
    server.set_page(
        "/",
        "<HTML><HEAD><TITLE>The Project</TITLE></HEAD><BODY>"
        f"<H1>The Project</H1><UL>{links}</UL></BODY></HTML>",
    )
    return clock, network, server


def run_comparison():
    import random

    # --- per-user w3newer, home page only ------------------------------
    clock, network, server = build_site()
    rng = random.Random(13)
    tracker = W3Newer(
        clock, UserAgent(network, clock),
        Hotlist.from_lines("http://project.org/ The project home page"),
        config=parse_threshold_config("Default 0\n"),
    )
    # The user has already read the home page; only *new* changes count.
    tracker.mark_page_viewed("http://project.org/")
    w3newer_detected = 0
    subpage_edits = 0
    for day in range(1, SIM_DAYS + 1):
        clock.advance_to(day * DAY)
        # One subpage edited per day; the home page itself never changes.
        index = day % SUBPAGES
        page = server.get_page(f"/part{index}.html")
        server.set_page(f"/part{index}.html", edit_sentence(page.body, rng))
        subpage_edits += 1
        run = tracker.run()
        w3newer_detected += len(run.changed)
        for outcome in run.changed:
            tracker.mark_page_viewed(outcome.url)

    # --- central tracker with a crawl root -----------------------------
    clock, network, server = build_site()
    rng = random.Random(13)
    store = SnapshotStore(clock, UserAgent(network, clock))
    central = CentralTracker(store, clock)
    central.add_crawl_root("fred", "http://project.org/", depth=1)
    central.poll()  # baseline crawl + archive
    crawler_detected = 0
    for day in range(1, SIM_DAYS + 1):
        clock.advance_to(day * DAY)
        index = day % SUBPAGES
        page = server.get_page(f"/part{index}.html")
        server.set_page(f"/part{index}.html", edit_sentence(page.body, rng))
        changed = central.poll()
        crawler_detected += sum(1 for flag in changed.values() if flag)
    tracked = len(central.tracked_urls())
    return subpage_edits, w3newer_detected, crawler_detected, tracked


def test_hierarchical_tracking(benchmark, sink):
    edits, w3newer_hits, crawler_hits, tracked = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    sink.row("S12: one bookmarked home page, subpages edited daily")
    sink.row(f"  subpage edits made:               {edits}")
    sink.row(f"  detected by home-page-only w3newer: {w3newer_hits}")
    sink.row(f"  detected by crawl-root tracker:     {crawler_hits}")
    sink.row(f"  pages tracked from one bookmark:    {tracked}")

    # The home page never changes, so the bookmark-only tracker sees
    # nothing; the crawler sees every edit.
    assert w3newer_hits == 0
    assert crawler_hits == edits
    assert tracked == 1 + SUBPAGES


# ----------------------------------------------------------------------
# S19 — adaptive revisit scheduling + concurrent crawl at 100k URLs
# ----------------------------------------------------------------------

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

CRAWL_URLS = 100_000
CRAWL_HOSTS = 200
CRAWL_BUDGET = 8_000
CRAWL_DAYS = 3
CRAWL_SEED = 0

_S19_REPORT = {}


def build_crawl_tracker(policy, workers, seed=CRAWL_SEED, render=False):
    """A fresh seeded 100k-URL world plus a fully wired tracker."""
    clock = SimClock()
    clock.advance(100 * DAY)
    network = Network(clock)
    world = build_crawl_world(
        urls=CRAWL_URLS, hosts=CRAWL_HOSTS, seed=CRAWL_SEED,
        clock=clock, network=network,
    )
    politeness = PolitenessLog()
    agent = UserAgent(network, clock, politeness=politeness)
    history = BrowserHistory()
    for url in world.urls:
        history.visit(url, clock.now)
    estimator = ChangeRateEstimator()
    if policy is SchedulePolicy.ADAPTIVE:
        seed_estimator(world, estimator)
    tracker = W3Newer(
        clock, agent, build_crawl_hotlist(world), history=history,
        crawl=CrawlOptions(
            workers=workers, budget=CRAWL_BUDGET, policy=policy,
            seed=seed, record_decisions=False,
        ),
        estimator=estimator,
        report_options=ReportOptions(render=render),
    )
    return clock, world, tracker, politeness


def run_crawl_day(clock, world, tracker):
    """Advance one day, churn the world, run, and mark detections."""
    clock.advance(DAY)
    apply_changes(world)
    result = tracker.run()
    detections = [o for o in result.outcomes
                  if o.state is UrlState.CHANGED]
    for outcome in detections:
        tracker.mark_page_viewed(outcome.url)
    day = {
        "detections": len(detections),
        "http_requests": result.http_requests,
        "makespan": tracker.last_crawl["governor"]["makespan"],
    }
    report_html = result.report_html
    tracker.runs.clear()  # 100k outcomes per run: don't accumulate
    return day, report_html


def _save_s19():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_crawler.json")
    existing = {}
    if os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
    existing.update(_S19_REPORT)
    existing["world"] = {
        "urls": CRAWL_URLS, "hosts": CRAWL_HOSTS,
        "budget": CRAWL_BUDGET, "seed": CRAWL_SEED,
    }
    with open(path, "w") as fh:
        json.dump(existing, fh, indent=2, sort_keys=True)


def test_adaptive_freshness_per_fetch(sink):
    """Gate: adaptive >= 1.3x freshness-per-fetch vs static, equal budget."""
    sink.row(f"S19a: freshness per fetch, {CRAWL_URLS} URLs, "
             f"budget {CRAWL_BUDGET}/run, {CRAWL_DAYS} daily runs")
    totals = {}
    for policy in (SchedulePolicy.STATIC, SchedulePolicy.ADAPTIVE):
        clock, world, tracker, _ = build_crawl_tracker(policy, workers=8)
        days = []
        for _ in range(CRAWL_DAYS):
            day, _html = run_crawl_day(clock, world, tracker)
            days.append(day)
        detections = sum(d["detections"] for d in days)
        requests = sum(d["http_requests"] for d in days)
        per_fetch = detections / requests if requests else 0.0
        totals[policy.value] = {
            "detections": detections, "http_requests": requests,
            "freshness_per_fetch": round(per_fetch, 4), "days": days,
        }
        sink.row(f"  {policy.value:8s}: {detections:6d} changes detected / "
                 f"{requests:6d} requests = {per_fetch:.4f} per fetch")
    ratio = (totals["adaptive"]["freshness_per_fetch"]
             / totals["static"]["freshness_per_fetch"])
    sink.row(f"  adaptive/static ratio: {ratio:.2f}x (gate: >= 1.3x)")
    _S19_REPORT["freshness"] = dict(totals, ratio=round(ratio, 3))
    _save_s19()
    assert ratio >= 1.3


def test_concurrent_throughput(sink):
    """Gate: 8 workers shrink the virtual makespan >= 4x vs 1 worker."""
    sink.row(f"S19b: virtual-time throughput, {CRAWL_URLS} URLs, "
             f"budget {CRAWL_BUDGET}")
    spans = {}
    for workers in (1, 8):
        clock, world, tracker, _ = build_crawl_tracker(
            SchedulePolicy.ADAPTIVE, workers=workers,
        )
        day, _html = run_crawl_day(clock, world, tracker)
        spans[workers] = day["makespan"]
        sink.row(f"  {workers} worker(s): makespan {day['makespan']}s "
                 f"for {day['http_requests']} requests")
    speedup = spans[1] / spans[8]
    sink.row(f"  speedup: {speedup:.2f}x (gate: >= 4x at 8 workers)")
    _S19_REPORT["throughput"] = {
        "makespan_1_worker": spans[1], "makespan_8_workers": spans[8],
        "speedup": round(speedup, 3),
    }
    _save_s19()
    assert spans[8] * 4 <= spans[1]


def test_seeded_run_byte_identical(sink):
    """Gate: same seed, independently built worlds, identical bytes."""
    sink.row(f"S19c: determinism witness, {CRAWL_URLS} URLs, seed "
             f"{CRAWL_SEED}")
    digests, traces = [], []
    for attempt in range(2):
        clock, world, tracker, _ = build_crawl_tracker(
            SchedulePolicy.ADAPTIVE, workers=8, render=True,
        )
        day, html = run_crawl_day(clock, world, tracker)
        digest = hashlib.sha256(html.encode()).hexdigest()
        digests.append(digest)
        traces.append(tracker.last_crawl["trace"])
        sink.row(f"  execution {attempt + 1}: report sha256 {digest[:16]}… "
                 f"({len(html)} bytes), {len(tracker.last_crawl['trace'])} "
                 f"fetch slots")
    identical = digests[0] == digests[1] and traces[0] == traces[1]
    sink.row(f"  byte-identical: {identical}")
    _S19_REPORT["determinism"] = {
        "report_sha256": digests[0], "identical": identical,
        "fetch_slots": len(traces[0]),
    }
    _save_s19()
    assert identical
    assert digests[0]  # a report was actually rendered
