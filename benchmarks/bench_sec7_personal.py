"""E7b — Section 7's personal deployments.

"Personal use has been successful: one of us has recorded over 250 URLs
and the other nearly 100."  And the overload lesson: "Merely sorting
URLs by most recent modification dates is not satisfactory when the
number of URLs grows into the hundreds."

The bench simulates both users — a 250-URL hotlist and a 100-URL one —
through a month of daily runs against the same synthetic web, and
reports per-user: requests spent, changes surfaced, and the size of
the "what's new" list the user confronts each morning (the information-
overload figure that motivated prioritization).
"""

from repro.aide.engine import Aide
from repro.core.w3newer.report import ReportOptions
from repro.aide.prioritize import parse_priority_config
from repro.simclock import DAY, WEEK
from repro.workloads.scenario import build_hotlist, build_web

SIM_DAYS = 28


def run_user(aide, web, name, size, reads_per_day):
    hotlist = build_hotlist(web, size=size, seed=hash(name) % 10_000)
    user = aide.add_user(name, hotlist)
    daily_changed = []
    requests = 0
    for day in range(1, SIM_DAYS + 1):
        web.cron.run_until(day * DAY)
        run = user.tracker.run()
        requests += run.http_requests
        daily_changed.append(len(run.changed))
        for outcome in run.changed[:reads_per_day]:
            user.visit(outcome.url, aide.clock)
    return user, daily_changed, requests


def build_and_run():
    web = build_web(sites=40, pages_per_site=10, seed=250)
    aide = Aide(clock=web.clock, network=web.network)
    heavy = run_user(aide, web, "douglis@research", 250, reads_per_day=15)
    light = run_user(aide, web, "ball@research", 100, reads_per_day=15)
    return heavy, light


def test_sec7_personal(benchmark, sink):
    heavy, light = benchmark.pedantic(build_and_run, rounds=1, iterations=1)

    sink.row("E7b: two personal deployments, one month of daily runs")
    sink.row(f"{'user':22s} {'hotlist':>7s} {'requests':>9s} "
             f"{'avg changed/day':>16s} {'peak changed':>13s}")
    for (user, daily, requests), size in ((heavy, 250), (light, 100)):
        avg = sum(daily) / len(daily)
        sink.row(f"{user.name:22s} {size:7d} {requests:9d} "
                 f"{avg:16.1f} {max(daily):13d}")

    heavy_user, heavy_daily, heavy_requests = heavy
    light_user, light_daily, light_requests = light

    # The bigger hotlist costs more but sublinearly per-URL…
    assert heavy_requests > light_requests
    # …and its report routinely exceeds what a person reads in a
    # sitting: the information-overload problem.
    overload_days = sum(1 for n in heavy_daily if n > 15)
    sink.row()
    sink.row(f"days the 250-URL report exceeded 15 changes: {overload_days}"
             f" of {SIM_DAYS} (the Section 7 overload complaint)")
    assert overload_days > SIM_DAYS // 3

    # Prioritization demo: the overload remedy reorders the report.
    priorities = parse_priority_config("http://www\\.site0\\..* 10\n")
    last_run = heavy_user.tracker.runs[-1]
    from repro.core.w3newer.report import render_report

    html = render_report(
        last_run.outcomes, list(heavy_user.hotlist),
        ReportOptions(priority=priorities.as_function()),
    )
    assert html  # renders cleanly with a priority function
