"""S6 — snapshot service resource use under concurrent demand.

Section 4.2: "These loads can be alleviated by caching the output of
HtmlDiff for a while, so many users who have seen versions N and N+1 of
a page could retrieve HtmlDiff(pageN, pageN+1) with a single invocation
of HtmlDiff"; and the lock-queueing wish: "the second snapshot process
would just wait for the page and then return, rather than repeating
the work."

The bench sends a crowd of users at one popular page's Diff and
Remember endpoints and counts HtmlDiff invocations and origin fetches
with the caching/coalescing machinery on and off.
"""

from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.pagegen import PageGenerator

USERS = 40


def build_store(diff_cache_ttl):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("popular.com")
    generator = PageGenerator(seed=21)
    server.set_page("/story.html", generator.page(paragraphs=12))
    store = SnapshotStore(clock, UserAgent(network, clock),
                          diff_cache_ttl=diff_cache_ttl)
    return clock, network, server, store


def exercise(diff_cache_ttl):
    clock, network, server, store = build_store(diff_cache_ttl)
    users = [f"user{i}@att.com" for i in range(USERS)]
    # Everyone remembers the page on day 0 (same cron-driven instant).
    for user in users:
        store.remember(user, "http://popular.com/story.html")
    fetches_day0 = server.get_count

    # The page changes; next day the whole crowd clicks Diff.
    clock.advance(DAY)
    generator = PageGenerator(seed=22)
    server.set_page("/story.html", generator.page(paragraphs=12))
    clock.advance(DAY)
    for user in users:
        store.diff(user, "http://popular.com/story.html")
    return {
        "fetches_day0": fetches_day0,
        "total_fetches": server.get_count,
        "htmldiff_invocations": store.htmldiff_invocations,
        "lock_contentions": store.locks.contentions,
        "coalesced": store.coalescer.coalesced,
    }


def test_snapshot_service_caching(benchmark, sink):
    def run_both():
        return exercise(diff_cache_ttl=HOUR), exercise(diff_cache_ttl=0)

    cached, uncached_ttl = benchmark.pedantic(run_both, rounds=1, iterations=1)

    sink.row(f"S6: {USERS} users remember + diff one page")
    sink.row(f"{'metric':26s} {'with caching':>13s} {'ttl=0':>7s} "
             f"{'naive (no sharing)':>19s}")
    naive_fetches = USERS * 2  # every user fetches for remember and diff
    naive_diffs = USERS
    sink.row(f"{'origin fetches':26s} {cached['total_fetches']:13d} "
             f"{uncached_ttl['total_fetches']:7d} {naive_fetches:19d}")
    sink.row(f"{'HtmlDiff invocations':26s} "
             f"{cached['htmldiff_invocations']:13d} "
             f"{uncached_ttl['htmldiff_invocations']:7d} {naive_diffs:19d}")
    sink.row(f"{'lock contentions':26s} {cached['lock_contentions']:13d} "
             f"{uncached_ttl['lock_contentions']:7d} {'-':>19s}")
    sink.row(f"{'requests coalesced':26s} {cached['coalesced']:13d} "
             f"{uncached_ttl['coalesced']:7d} {'-':>19s}")

    # One fetch for 40 simultaneous remembers (request coalescing)…
    assert cached["fetches_day0"] == 1
    # …and one HtmlDiff run serves the whole crowd's identical diff.
    assert cached["htmldiff_invocations"] == 1
    # Same-instant coalescing works even with the TTL cache off.
    assert uncached_ttl["htmldiff_invocations"] == 1
    # Versus 40 invocations if every request ran its own comparison.
    assert cached["htmldiff_invocations"] * USERS == naive_diffs
