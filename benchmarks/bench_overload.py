"""S13 — aggravating an overloaded proxy, and the abort remedy (§3.1).

"Proxy-caching servers are sometimes overloaded to the point of timing
out large numbers of requests, and a background task that retrieves
many URLs in a short time can aggravate their condition.  W3newer
should therefore be able to detect cases when it should abort and try
again later."

The bench fires a 40-URL w3newer run through proxies of decreasing
burst capacity and reports, per capacity: URLs checked before abort,
timeouts inflicted on the proxy, and whether the systemic-failure
detector tripped — plus the paced-checking alternative that stays under
every limit.
"""

from repro.core.w3newer.checker import UrlChecker
from repro.core.w3newer.errors import SystemicFailureDetector
from repro.core.w3newer.history import BrowserHistory
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.statuscache import StatusCache
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.web.proxy import ProxyCache

URL_COUNT = 40
LIMITS = (0, 20, 8, 3)
CONFIG = parse_threshold_config("Default 0\n")


def build_world(limit):
    clock = SimClock()
    network = Network(clock)
    # One page per host: the overload hits the shared proxy, and the
    # resulting timeouts span many distinct hosts — the signature the
    # systemic-failure detector requires before aborting a run.
    for i in range(URL_COUNT):
        server = network.create_server(f"site{i:02d}.com")
        server.set_page("/page.html", f"<P>page {i}</P>")
    proxy = ProxyCache(network, clock, ttl=HOUR)
    proxy.requests_per_instant_limit = limit
    agent = UserAgent(network, clock, proxy=proxy)
    hotlist = Hotlist.from_lines(
        "\n".join(f"http://site{i:02d}.com/page.html"
                  for i in range(URL_COUNT))
    )
    return clock, agent, proxy, hotlist


def run_sweep():
    rows = []
    for limit in LIMITS:
        clock, agent, proxy, hotlist = build_world(limit)
        tracker = W3Newer(clock, agent, hotlist, config=CONFIG,
                          proxy=proxy, abort_after_failures=3)
        clock.advance(DAY)
        result = tracker.run()
        rows.append((limit, len(result.outcomes), bool(result.aborted)))
    # The paced alternative under the tightest limit.
    clock, agent, proxy, hotlist = build_world(LIMITS[-1])
    clock.advance(DAY)
    checker = UrlChecker(
        clock=clock, agent=agent, config=CONFIG,
        history=BrowserHistory(),
        cache=StatusCache(),
        proxy=proxy,
        failure_detector=SystemicFailureDetector(abort_after=3),
    )
    errors = 0
    for index, entry in enumerate(hotlist):
        if index:
            clock.advance(2)  # spread the burst over time
        if checker.check(entry.url).error:
            errors += 1
    return rows, errors


def test_proxy_overload_abort(benchmark, sink):
    rows, paced_errors = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    sink.row(f"S13: {URL_COUNT}-URL burst through a weak proxy")
    sink.row(f"{'burst limit':>11s} {'URLs checked':>13s} {'aborted':>8s}")
    for limit, checked, aborted in rows:
        label = "unlimited" if limit == 0 else str(limit)
        sink.row(f"{label:>11s} {checked:13d} {'yes' if aborted else 'no':>8s}")
    sink.row(f"\npaced checking under limit {LIMITS[-1]}: {paced_errors} errors")

    by_limit = {limit: (checked, aborted) for limit, checked, aborted in rows}
    # A healthy proxy: full run, no abort.
    assert by_limit[0] == (URL_COUNT, False)
    # The weakest proxy: the run aborts early instead of hammering on.
    assert by_limit[3][1] is True
    assert by_limit[3][0] < URL_COUNT
    # Pacing the same work avoids every timeout.
    assert paced_errors == 0
