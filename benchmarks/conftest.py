"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables/figures (or a
claim made in prose) and both prints the rows and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


class ResultSink:
    """Collects a benchmark's regenerated table and writes it out."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines = []

    def row(self, text: str = "") -> None:
        self.lines.append(text)
        print(text)

    def flush(self) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{self.name}.txt")
        with open(path, "w") as handle:
            handle.write("\n".join(self.lines) + "\n")


@pytest.fixture
def sink(request):
    out = ResultSink(request.node.name)
    yield out
    out.flush()
