"""S4d — the HtmlDiff fast path end to end.

Measures ``html_diff`` with the full fast path (anchor decomposition +
exact fast lane/interning + bag-of-items bound) against the reference
path (all three off) on small/medium/large synthetic page pairs, and
verifies the two render byte-identical pages while timing them.

Beyond the human-readable rows, the numbers land in
``benchmarks/results/BENCH_htmldiff.json`` so CI can archive them.
"""

import json
import os
import time

from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.options import HtmlDiffOptions
from repro.core.htmldiff.tokenizer import tokenize_document
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: (label, paragraphs, links, repetitions) — reps shrink as pages grow.
SIZES = (
    ("small", 10, 5, 5),
    ("medium", 40, 10, 3),
    ("large", 120, 15, 2),
)


def make_pair(paragraphs, links, seed=11, edits=3):
    old = PageGenerator(seed=seed).page(paragraphs=paragraphs, links=links)
    mix = MutationMix.typical(seed=seed)
    new = old
    for _ in range(edits):
        new = mix.apply(new)
    return old, new


def timed(old, new, options, reps):
    best = float("inf")
    html = None
    for _ in range(reps):
        start = time.perf_counter()
        result = html_diff(old, new, options=options)
        best = min(best, time.perf_counter() - start)
        html = result.html
    return best, html


def test_fastpath_speedup(benchmark, sink):
    fast = HtmlDiffOptions()
    reference = fast.reference()

    sink.row("S4d: HtmlDiff fast path vs reference (byte-identical output)")
    sink.row(f"{'size':>6s} {'tokens':>7s} {'ref ms':>8s} {'fast ms':>8s} "
             f"{'tok/s fast':>11s} {'speedup':>8s}")

    report = {}
    for label, paragraphs, links, reps in SIZES:
        old, new = make_pair(paragraphs, links)
        tokens = len(tokenize_document(old)) + len(tokenize_document(new))
        ref_s, ref_html = timed(old, new, reference, reps)
        fast_s, fast_html = timed(old, new, fast, reps)
        assert fast_html == ref_html, f"{label}: fast path changed the output"
        speedup = ref_s / fast_s
        tokens_per_sec = tokens / fast_s
        report[label] = {
            "paragraphs": paragraphs,
            "tokens": tokens,
            "reference_seconds": round(ref_s, 6),
            "fast_seconds": round(fast_s, 6),
            "tokens_per_second_fast": round(tokens_per_sec, 1),
            "tokens_per_second_reference": round(tokens / ref_s, 1),
            "speedup": round(speedup, 2),
        }
        sink.row(f"{label:>6s} {tokens:7d} {ref_s * 1e3:8.1f} "
                 f"{fast_s * 1e3:8.1f} {tokens_per_sec:11.0f} "
                 f"{speedup:7.1f}x")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_htmldiff.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    # The acceptance bar: at least 3x on the large workload.  (Measured
    # well above 10x; 3x keeps slow CI machines from flaking.)
    assert report["large"]["speedup"] >= 3.0

    old, new = make_pair(*SIZES[-1][1:3])
    benchmark(lambda: html_diff(old, new, options=fast))
