"""S14 — simultaneous-user limits and replication (§4.2).

"The facility could also impose a limit on the number of simultaneous
users, or replicate itself among multiple computers, as many W3
services do."

The bench throws a burst of users at the snapshot facility under an
admission limit of 10 concurrent requests per machine, with 1 vs 3
replicas, and reports served/rejected counts and how the page archives
partition.
"""

from repro.core.snapshot.replication import (
    AdmissionControl,
    ReplicatedSnapshotService,
)
from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.pagegen import PageGenerator

USERS = 60
PAGES = 12
PER_MACHINE_LIMIT = 10


def run_burst(replica_count):
    clock = SimClock()
    network = Network(clock)
    origin = network.create_server("site.com")
    generator = PageGenerator(seed=3)
    for i in range(PAGES):
        origin.set_page(f"/p{i}.html", generator.page())
    agent = UserAgent(network, clock)
    replicas = [
        SnapshotService(SnapshotStore(clock, agent))
        for _ in range(replica_count)
    ]
    front = ReplicatedSnapshotService(replicas)
    limiters = [
        AdmissionControl(replica, clock, PER_MACHINE_LIMIT)
        for replica in replicas
    ]
    # Admission control sits per machine, behind the router.
    front.replicas = limiters  # type: ignore[assignment]
    aide = network.create_server("aide.att.com")
    aide.register_cgi("/cgi-bin/snapshot", front)
    client = UserAgent(network, clock)

    served = rejected = 0
    for user in range(USERS):
        url = f"http://site.com/p{user % PAGES}.html"
        resp = client.get(
            "http://aide.att.com/cgi-bin/snapshot"
            f"?action=remember&url={url}&user=user{user}"
        ).response
        if resp.status == 200:
            served += 1
        elif resp.status == 503:
            rejected += 1
    per_replica = [limiter.admitted for limiter in limiters]
    return served, rejected, per_replica


def test_replication_burst(benchmark, sink):
    def run_both():
        return run_burst(1), run_burst(3)

    single, triple = benchmark.pedantic(run_both, rounds=1, iterations=1)

    sink.row(f"S14: {USERS} simultaneous remember requests, "
             f"limit {PER_MACHINE_LIMIT}/machine")
    sink.row(f"{'replicas':>8s} {'served':>7s} {'rejected':>9s} "
             f"{'per-machine admits':>20s}")
    for label, (served, rejected, per_replica) in (("1", single),
                                                   ("3", triple)):
        sink.row(f"{label:>8s} {served:7d} {rejected:9d} "
                 f"{str(per_replica):>20s}")

    # One machine saturates at its limit; three machines triple the
    # admitted load for the same burst.
    assert single[0] == PER_MACHINE_LIMIT
    assert single[1] == USERS - PER_MACHINE_LIMIT
    assert triple[0] > 2 * single[0]
    assert all(count <= PER_MACHINE_LIMIT for count in triple[2])
