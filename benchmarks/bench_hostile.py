"""S21 — hostile-content hardening: the deterministic fuzzing harness.

A change tracker that crawls the open web will sooner or later fetch
something pathological — a truncated transfer, a decompression bomb, a
page nested a thousand DIVs deep, binary bytes wearing a ``text/html``
label.  The guard layer (:mod:`repro.web.guards`) must turn every such
document into a *verdict*, never a crash, a hang, or an unbounded
allocation; and it must be invisible on benign traffic.

Four gates, all seeded and deterministic, recorded in
``benchmarks/results/BENCH_hostile.json``:

* **no-crash / no-hang / bounded-memory** — >= 500 mutated documents
  swept through the full ingest stack (header check, transfer decode,
  text admission, lex + repair scan, budgeted HtmlDiff) under
  ``GuardLimits.strict()``.  Every document must resolve to admitted /
  guard verdict; any other exception is a crash.  Admitted bodies and
  token counts must stay within the declared caps.
* **coverage** — every one of the nine guard classes in
  ``GUARD_SLUGS`` must trip at least once across the sweep.
* **quarantine** — a w3newer crawl over a hostile world must complete
  with QUARANTINED verdicts (never wedge), journal the evidence, and
  spend zero HTTP requests on quarantined URLs while they are in
  backoff.
* **differential** — on benign documents the guards must be invisible:
  ``admit`` returns the body byte-identical, and HtmlDiff output with
  the default budget attached is byte-identical to HtmlDiff without.
"""

import json
import os
import time

from repro.core.htmldiff.api import html_diff
from repro.core.quarantine import QuarantineJournal
from repro.core.w3newer import UrlState
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.guards import (
    GUARD_SLUGS,
    ContentGuard,
    ContentGuardError,
    GuardLimits,
)
from repro.web.http import Headers
from repro.web.network import Network
from repro.web.server import HttpServer
from repro.workloads import PageGenerator, hostile_corpus
from repro.workloads.hostileworld import populate_hostile_server
from repro.workloads.mutate import MUTATORS

from conftest import RESULTS_DIR

SEED = 1996
FUZZ_DOCS = 540
CRAWL_DOCS = 40
BENIGN_PAIRS = 24
#: Generous wall-clock ceiling for the whole sweep — the no-hang gate.
#: The budgets make the work virtually bounded; this catches a real
#: infinite loop without making the gate timing-flaky.
SWEEP_SECONDS_LIMIT = 120.0


class _FetchedDoc:
    """The minimal response surface ``ContentGuard.admit`` consumes."""

    def __init__(self, doc):
        self.headers = Headers()
        for name, value in doc.headers.items():
            self.headers.set(name, value)
        self.headers.set("Content-Type", doc.content_type)
        self.body = doc.body
        self.content_type = doc.content_type


def run_fuzz_sweep():
    """Gate 1+2: the corpus through the full ingest stack."""
    limits = GuardLimits.strict()
    guard = ContentGuard(limits)
    docs = hostile_corpus(FUZZ_DOCS, seed=SEED)
    reference = PageGenerator(seed=SEED).page(paragraphs=3, links=2)
    crashes = []
    admitted = 0
    degraded_diffs = 0
    oversized = 0
    started = time.monotonic()
    for doc in docs:
        url = f"http://hostile.example/{doc.name}.html"
        try:
            body = guard.admit(url, _FetchedDoc(doc))
        except ContentGuardError:
            continue
        except Exception as exc:  # noqa: BLE001 — the gate itself
            crashes.append((doc.name, f"{type(exc).__name__}: {exc}"))
            continue
        admitted += 1
        if limits.max_body_bytes and len(body) > limits.max_body_bytes:
            oversized += 1
        # Admitted documents must also diff safely under the budget.
        try:
            result = html_diff(reference, body,
                               budget=limits.html_budget(url))
            if result.degraded:
                degraded_diffs += 1
        except Exception as exc:  # noqa: BLE001
            crashes.append((doc.name, f"diff: {type(exc).__name__}: {exc}"))
    elapsed = time.monotonic() - started
    return {
        "documents": len(docs),
        "admitted": admitted,
        "tripped": dict(sorted(guard.trips.items())),
        "crashes": crashes,
        "oversized_admits": oversized,
        "degraded_diffs": degraded_diffs,
        "elapsed_seconds": round(elapsed, 2),
    }


def run_quarantine_crawl(tmp_journal):
    """Gate 3: a w3newer crawl over a hostile world never wedges."""
    clock = SimClock()
    network = Network(clock)
    server = network.add_server(HttpServer("hostile.example", clock))
    docs = hostile_corpus(CRAWL_DOCS, seed=SEED + 1)
    urls = populate_hostile_server(server, docs)
    expected_bad = {
        url for url, doc in zip(urls, docs) if doc.expect
    }
    journal = QuarantineJournal(tmp_journal)
    tracker = W3Newer(
        clock, UserAgent(network, clock),
        Hotlist.from_lines("\n".join(urls)),
        config=parse_threshold_config("Default 0\n"),
        guard=ContentGuard(GuardLimits.strict()),
        quarantine=journal,
        abort_after_failures=len(urls) + 1,
    )
    first = tracker.run()
    quarantined = {o.url for o in first.quarantined}
    # Second run a few hours later: every quarantined URL is inside its
    # one-day backoff window, so it must cost zero HTTP requests.
    clock.advance(6 * HOUR)
    second = tracker.run()
    backoff_requests = sum(
        o.http_requests for o in second.outcomes if o.url in quarantined
    )
    still_quarantined = {o.url for o in second.quarantined}
    return {
        "urls": len(urls),
        "designed_hostile": len(expected_bad),
        "first_run_quarantined": len(quarantined),
        "missed_hostile": sorted(expected_bad - quarantined),
        "false_quarantines": sorted(quarantined - expected_bad),
        "journal_entries": len(journal),
        "journal_by_guard": journal.stats()["by_guard"],
        "backoff_http_requests": backoff_requests,
        "second_run_quarantined": len(still_quarantined),
        "report_mentions_quarantine": (
            "quarantined" in first.report_html
        ),
    }


def run_differential():
    """Gate 4: guards are byte-invisible on benign traffic."""
    guard = ContentGuard(GuardLimits())
    generator = PageGenerator(seed=SEED + 2)
    import random

    rng = random.Random(SEED + 2)
    mutators = sorted(MUTATORS)
    mismatches = []
    for index in range(BENIGN_PAIRS):
        old = generator.page(paragraphs=4, links=3)
        new = MUTATORS[mutators[index % len(mutators)]](old, rng)
        url = f"http://benign.example/page{index}.html"
        if guard.admit_body(url, old, "text/html") != old:
            mismatches.append((index, "admit altered the body"))
        plain = html_diff(old, new)
        budgeted = html_diff(
            old, new, budget=GuardLimits().html_budget(url)
        )
        if plain.html != budgeted.html:
            mismatches.append((index, "budgeted diff differs"))
        if budgeted.degraded:
            mismatches.append((index, "benign diff degraded"))
    return {"pairs": BENIGN_PAIRS, "mismatches": mismatches}


def test_hostile_hardening(sink, tmp_path):
    sink.row("S21: hostile-content hardening (seeded fuzz harness)")
    sink.row("")

    fuzz = run_fuzz_sweep()
    sink.row(f"fuzz sweep: {fuzz['documents']} documents, "
             f"{fuzz['admitted']} admitted, "
             f"{sum(fuzz['tripped'].values())} guard trips, "
             f"{len(fuzz['crashes'])} crashes, "
             f"{fuzz['elapsed_seconds']}s")
    for slug in GUARD_SLUGS:
        sink.row(f"  {slug:16s} {fuzz['tripped'].get(slug, 0):5d} trips")

    crawl = run_quarantine_crawl(str(tmp_path / "quarantine.jsonl"))
    sink.row("")
    sink.row(f"crawl: {crawl['urls']} hostile URLs, "
             f"{crawl['first_run_quarantined']} quarantined, "
             f"{crawl['journal_entries']} journaled, "
             f"{crawl['backoff_http_requests']} requests wasted in backoff")

    differential = run_differential()
    sink.row("")
    sink.row(f"differential: {differential['pairs']} benign pairs, "
             f"{len(differential['mismatches'])} mismatches")

    report = {
        "seed": SEED,
        "fuzz": fuzz,
        "quarantine_crawl": crawl,
        "differential": differential,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_hostile.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # Gate 1: no crashes, no hangs, no cap-busting admissions.
    assert fuzz["crashes"] == [], fuzz["crashes"]
    assert fuzz["elapsed_seconds"] < SWEEP_SECONDS_LIMIT
    assert fuzz["oversized_admits"] == 0
    assert fuzz["documents"] >= 500
    # Gate 2: every guard class fired.
    missing = [s for s in GUARD_SLUGS if not fuzz["tripped"].get(s)]
    assert not missing, f"guards never tripped: {missing}"
    # Gate 3: the crawl completed, quarantined every designed-hostile
    # URL, journaled the evidence, and spent nothing during backoff.
    assert crawl["missed_hostile"] == []
    assert crawl["false_quarantines"] == []
    assert crawl["journal_entries"] == crawl["first_run_quarantined"]
    assert crawl["backoff_http_requests"] == 0
    assert crawl["second_run_quarantined"] == crawl["first_run_quarantined"]
    assert crawl["report_mentions_quarantine"]
    # Gate 4: guards are invisible on benign traffic.
    assert differential["mismatches"] == []
