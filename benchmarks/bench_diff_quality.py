"""S3 — comparison quality: the sentence model vs UNIX diff on HTML.

Section 2.3: "Line-based comparison utilities such as UNIX diff clearly
are ill-suited to the comparison of structured documents such as HTML."
Section 5.1's worked example: paragraph-to-list restructuring should
show "no change to content, but a change to the formatting".

The bench runs a labelled mutation suite — content edits (must be
flagged), formatting-only edits (must NOT be flagged as content
change), and byte-noise edits (whitespace reflow; no change at all) —
through HtmlDiff and the line-diff baseline, and reports each tool's
confusion counts.
"""

import random

from repro.baselines.linediff import line_diff_html
from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.classify import EntryClass
from repro.workloads.mutate import (
    append_paragraph,
    cosmetic_whitespace,
    delete_paragraph,
    edit_sentence,
    restructure,
)
from repro.workloads.pagegen import PageGenerator

CASES_PER_KIND = 30

#: (operator, does it change CONTENT?)
SUITE = (
    ("edit_sentence", edit_sentence, True),
    ("append_paragraph", append_paragraph, True),
    ("delete_paragraph", delete_paragraph, True),
    ("restructure (para->list)", restructure, False),
    ("cosmetic whitespace", cosmetic_whitespace, False),
)


def htmldiff_sees_content_change(old, new):
    """Did HtmlDiff report changed *sentences* (as opposed to only
    formatting / break-markup changes)?"""
    result = html_diff(old, new)
    for entry in result.diff.entries:
        if entry.cls is EntryClass.OLD or entry.cls is EntryClass.NEW:
            token = entry.old_token or entry.new_token
            if not hasattr(token, "normalized"):  # a sentence, not a break
                return True
        elif entry.is_fuzzy_common:
            return True
    return False


def run_suite():
    scores = {}
    for label, operator, is_content in SUITE:
        html_correct = 0
        line_correct = 0
        for case in range(CASES_PER_KIND):
            rng = random.Random(case)
            page = PageGenerator(seed=case).page(paragraphs=6, links=4)
            mutated = operator(page, rng)
            if mutated == page:
                # Operator declined (e.g. nothing to delete): skip par.
                html_correct += 1
                line_correct += 1
                continue
            html_flags = htmldiff_sees_content_change(page, mutated)
            line_flags = line_diff_html(page, mutated).flags_change
            if html_flags == is_content:
                html_correct += 1
            if line_flags == is_content:
                line_correct += 1
        scores[label] = (html_correct, line_correct, is_content)
    return scores


def test_diff_quality(benchmark, sink):
    scores = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    sink.row("S3: content-change detection accuracy "
             f"({CASES_PER_KIND} cases per class)")
    sink.row(f"{'edit class':28s} {'content?':>8s} {'HtmlDiff':>9s} "
             f"{'line diff':>10s}")
    for label, (html_ok, line_ok, is_content) in scores.items():
        sink.row(f"{label:28s} {'yes' if is_content else 'no':>8s} "
                 f"{html_ok:8d}/{CASES_PER_KIND} {line_ok:9d}/{CASES_PER_KIND}")

    # Content edits: both tools catch them.
    for label, (html_ok, line_ok, is_content) in scores.items():
        if is_content:
            assert html_ok == CASES_PER_KIND, label
            assert line_ok == CASES_PER_KIND, label
    # Formatting-only / byte-noise edits: line diff cries wolf on every
    # one; HtmlDiff keeps quiet — the whole point of the sentence model.
    restructure_scores = scores["restructure (para->list)"]
    whitespace_scores = scores["cosmetic whitespace"]
    assert restructure_scores[0] == CASES_PER_KIND   # HtmlDiff right
    assert restructure_scores[1] == 0                # line diff wrong
    assert whitespace_scores[0] == CASES_PER_KIND
    assert whitespace_scores[1] == 0
