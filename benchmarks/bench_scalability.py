"""S1 — w3newer's scalability against poll-everything trackers.

Section 3's engineering claim: w3newer "omits checks of pages already
known to be modified since the user last saw the page, and pages that
have been viewed by the user within some threshold", plus cached robot
verdicts and proxy dates — so it issues far fewer HTTP requests per run
than w3new (its ancestor) or SmartMarks-style pollers, and the gap
widens with hotlist size.

The bench sweeps hotlist size, runs each tracker daily for two
simulated weeks over the same evolving web, and reports total HTTP
requests per tracker per size.
"""

from repro.aide.engine import Aide
from repro.baselines.smartmarks import SmartMarks
from repro.baselines.w3new import W3New
from repro.core.w3newer.history import BrowserHistory
from repro.simclock import DAY
from repro.web.client import UserAgent
from repro.workloads.scenario import build_hotlist, build_web

SIZES = (25, 50, 100, 200)
SIM_DAYS = 14


def run_sweep():
    results = {}
    for size in SIZES:
        web = build_web(sites=25, pages_per_site=10, seed=31)
        aide = Aide(clock=web.clock, network=web.network)
        hotlist = build_hotlist(web, size=size, seed=5)

        user = aide.add_user("w3newer-user", hotlist)
        w3new_history = BrowserHistory()
        w3new = W3New(web.clock, UserAgent(web.network, web.clock),
                      hotlist, history=w3new_history)
        marks_history = BrowserHistory()
        marks = SmartMarks(web.clock, UserAgent(web.network, web.clock),
                           hotlist, history=marks_history)

        counts = {"w3newer": 0, "w3new": 0, "smartmarks": 0}
        for day in range(1, SIM_DAYS + 1):
            web.cron.run_until(day * DAY)
            before = len(web.network.log)
            run = user.tracker.run()
            counts["w3newer"] += len(web.network.log) - before

            before = len(web.network.log)
            w3new.run()
            counts["w3new"] += len(web.network.log) - before

            before = len(web.network.log)
            marks.poll()
            counts["smartmarks"] += len(web.network.log) - before

            # All three users read some of what changed.
            for outcome in run.changed[:10]:
                user.visit(outcome.url, aide.clock)
                w3new_history.visit(outcome.url, web.clock.now)
                marks_history.visit(outcome.url, web.clock.now)
        results[size] = counts
    return results


def test_scalability_sweep(benchmark, sink):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    sink.row("S1: total HTTP requests, daily runs for two weeks")
    sink.row(f"{'hotlist size':>12s} {'w3newer':>9s} {'w3new':>9s} "
             f"{'smartmarks':>11s} {'saving vs w3new':>16s}")
    for size in SIZES:
        counts = results[size]
        saving = counts["w3new"] / max(1, counts["w3newer"])
        sink.row(f"{size:12d} {counts['w3newer']:9d} {counts['w3new']:9d} "
                 f"{counts['smartmarks']:11d} {saving:15.1f}x")

    # Shape: w3newer always cheapest; the advantage holds at every size.
    for size in SIZES:
        counts = results[size]
        assert counts["w3newer"] < counts["w3new"]
        assert counts["w3newer"] < counts["smartmarks"]
    # And the ratio does not collapse as hotlists grow.
    small = results[SIZES[0]]
    large = results[SIZES[-1]]
    assert large["w3new"] / large["w3newer"] >= 0.8 * (
        small["w3new"] / small["w3newer"]
    )
