"""E7a — Section 7's disk accounting.

"There are over 500 URLs archived... and the archive uses under 8
Mbytes of disk storage (an average of 14.3 Kbytes/URL).  Three files
account for 2.7 Mbytes of that total, and each file is a URL that
changes every 1-3 days and is being automatically archived upon each
change."

The bench archives 500 synthetic URLs with a realistic mix of change
rates (including three heavy daily-churn wholesale-replacement pages,
auto-archived on every change, like the paper's three outliers) over a
simulated month, and reports: total bytes, bytes/URL, the top-3 share,
and the full-copy baseline the reverse-delta design is up against.
The absolute numbers depend on synthetic page sizes; the *shape* —
average around the order of 10 KB/URL, a few churners dominating —
is the reproduction target.
"""

import random

from repro.aide.fixedpages import FixedPageCollection
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, WEEK, CronScheduler, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator
from repro.workloads.schedule import WebEvolver

URL_COUNT = 500
HEAVY_CHURNERS = 3
SIM_DAYS = 28


def build_and_run():
    clock = SimClock()
    network = Network(clock)
    cron = CronScheduler(clock)
    evolver = WebEvolver(cron, seed=7)
    generator = PageGenerator(seed=7)
    rng = random.Random(7)

    store = SnapshotStore(clock, UserAgent(network, clock))
    collection = FixedPageCollection(store, clock)

    server = network.create_server("archive-universe.org")
    for index in range(URL_COUNT):
        path = f"/doc{index}.html"
        if index < HEAVY_CHURNERS:
            # The paper's three outliers: large pages replaced wholesale
            # every 1-3 days (the rewrite must stay large, so it gets a
            # dedicated job rather than the generic rewrite operator).
            server.set_page(path, generator.page(paragraphs=40, links=20))

            def wholesale(now, _path=path, _seed=index):
                fresh = PageGenerator(seed=_seed * 100_000 + now)
                server.set_page(_path, fresh.page(paragraphs=40, links=20))

            cron.schedule(rng.choice((DAY, 2 * DAY, 3 * DAY)), wholesale)
        else:
            server.set_page(path, generator.page(
                paragraphs=rng.randint(3, 10), links=rng.randint(0, 8)))
            roll = rng.random()
            if roll < 0.30:
                evolver.evolve(server, path, WEEK, jitter=WEEK,
                               mix=MutationMix.typical(seed=index))
            elif roll < 0.55:
                evolver.evolve(server, path, 2 * WEEK, jitter=WEEK,
                               mix=MutationMix.typical(seed=index))
            # else: static
        collection.add_url(f"http://archive-universe.org{path}")

    collection.schedule(cron, period=DAY)
    cron.run_until(SIM_DAYS * DAY)
    return store


def test_sec7_storage(benchmark, sink):
    store = benchmark.pedantic(build_and_run, rounds=1, iterations=1)

    total = store.total_bytes()
    by_url = store.bytes_by_url()
    per_url = total / max(1, len(by_url))
    top3 = sorted(by_url.values(), reverse=True)[:3]
    top3_share = sum(top3) / total
    full_copies = store.full_copy_bytes()
    revisions = sum(
        archive.revision_count for archive in store.archives.values()
    )

    # Reconstruction cost: deltas applied to check out each archive's
    # oldest revision, with the store's keyframes vs the plain reverse
    # chain (head-to-oldest distance).
    before = sum(a.delta_applications for a in store.archives.values())
    for archive in store.archives.values():
        archive.checkout("1.1")
    keyframed_deltas = sum(
        a.delta_applications for a in store.archives.values()) - before
    plain_deltas = sum(
        a.revision_count - 1 for a in store.archives.values())
    keyframe_bytes = sum(
        a.keyframe_bytes() for a in store.archives.values())

    sink.row("E7a: snapshot archive after a month of auto-archiving")
    sink.row(f"  URLs archived:        {store.url_count()}   "
             f"(paper: 'over 500')")
    sink.row(f"  total archive bytes:  {total:,}   (paper: < 8 MB)")
    sink.row(f"  avg bytes/URL:        {per_url:,.0f}   (paper: 14.3 KB)")
    sink.row(f"  top-3 churners' share: {top3_share:.0%}   "
             f"(paper: 2.7/8.0 = 34%)")
    sink.row(f"  revisions stored:     {revisions}")
    sink.row(f"  full-copy baseline:   {full_copies:,} bytes "
             f"({full_copies / total:.1f}x the RCS archive)")
    sink.row(f"  oldest-rev reconstruction: {keyframed_deltas} delta "
             f"applications (plain reverse chain: {plain_deltas})")
    sink.row(f"  keyframe overhead:    {keyframe_bytes:,} bytes in memory "
             f"(interval {store.options.keyframe_interval}; "
             f"not written to disk)")

    # Shape checks against the paper's report.
    assert store.url_count() == URL_COUNT
    assert total < 8 * 1024 * 1024, "under the paper's 8 MB"
    assert 1_000 < per_url < 30_000, "same order as the paper's 14.3 KB"
    assert top3_share > 0.15, "a few churners dominate the archive"
    assert full_copies > 1.5 * total, "reverse deltas clearly beat copies"
    assert keyframed_deltas <= plain_deltas, \
        "keyframes never make reconstruction costlier"
