"""S18 — the sharded diff server's two hard gates.

A seeded closed-loop load of 10,000 simulated users (20,000 logical
requests, all in virtual time) drives :class:`~repro.serve.server.
DiffServer` in three configurations and asserts:

* **byte identity** — every response the 4-shard, pooled, cached
  server serves is byte-identical (status, body, content type) to what
  the single-store reference :class:`~repro.core.snapshot.service.
  SnapshotService` produces for the same request;
* **scaling** — closed-loop throughput at 4 shards is at least 3x the
  1-shard baseline (same per-shard worker count — shards are machines,
  so 4 shards own 4x the workers), with p99 latency bounded;
* **backpressure works** — overload is shed with 503 + ``Retry-After``
  and every shed request eventually completes after honoring the
  advice (the closed loop retries exactly when told to).

Writes ``benchmarks/results/BENCH_service.json`` next to the other
BENCH_* files so CI can archive them.
"""

import json
import os
import time

from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.serve import ClosedLoopLoad, DiffServer, build_world, seed_world

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SEED = 1996
PAGES = 128
ROUNDS = 3
USERS = 10_000
REQUESTS_PER_USER = 2
WORKERS_PER_SHARD = 8
QUEUE_LIMIT = 256
THINK_TIME = 30
ARRIVAL_WINDOW = 120

#: The acceptance gates.
MIN_SPEEDUP = 3.0
MAX_P99 = 2 * 3600  # four-shard p99 must stay under two simulated hours


def build_server(shards):
    world = build_world(SEED, pages=PAGES)
    server = DiffServer(
        world.clock, world.agent, shards=shards,
        workers_per_shard=WORKERS_PER_SHARD, queue_limit=QUEUE_LIMIT,
    )
    revisions = seed_world(server, world, seed=SEED, rounds=ROUNDS)
    return world, server, revisions


def build_reference():
    world = build_world(SEED, pages=PAGES)
    service = SnapshotService(SnapshotStore(world.clock, world.agent))
    revisions = seed_world(service, world, seed=SEED, rounds=ROUNDS)
    return world, service, revisions


def run_load(world, server, revisions):
    load = ClosedLoopLoad(
        SEED, world.urls, revisions, users=USERS,
        requests_per_user=REQUESTS_PER_USER, think_time=THINK_TIME,
        arrival_window=ARRIVAL_WINDOW,
    )
    started = time.time()
    report = load.run(server, start=world.clock.now)
    return report, time.time() - started


def test_diff_server_scaling_and_identity(sink):
    sink.row("S18: sharded diff server under 10k-user closed-loop load")
    sink.row(f"  pages={PAGES} rounds={ROUNDS} users={USERS} "
             f"requests/user={REQUESTS_PER_USER}")
    sink.row("")

    # -- the system under test and the baseline ------------------------
    world1, server1, revisions1 = build_server(shards=1)
    report1, wall1 = run_load(world1, server1, revisions1)
    world4, server4, revisions4 = build_server(shards=4)
    report4, wall4 = run_load(world4, server4, revisions4)
    assert revisions1 == revisions4

    header = (f"  {'config':<12} {'makespan':>9} {'throughput':>11} "
              f"{'p50':>6} {'p99':>6} {'shed':>8} {'wall':>7}")
    sink.row(header)
    for label, report, wall in (("1 shard", report1, wall1),
                                ("4 shards", report4, wall4)):
        sink.row(f"  {label:<12} {report.makespan:>8}s "
                 f"{report.throughput:>9.2f}/s {report.latency_p50:>5}s "
                 f"{report.latency_p99:>5}s {report.shed:>8} {wall:>6.1f}s")
    speedup = report4.throughput / report1.throughput
    sink.row(f"  speedup: {speedup:.2f}x  (gate: >= {MIN_SPEEDUP}x)")
    sink.row("")

    # -- gate: every logical request completed despite shedding --------
    for report in (report1, report4):
        assert report.completed == USERS * REQUESTS_PER_USER
    assert report4.shed > 0, "load never exercised backpressure"

    # -- gate: byte identity against the single-store reference -------
    ref_world, reference, _ = build_reference()
    replayed = ClosedLoopLoad.replay(report4, reference,
                                     now=ref_world.clock.now)
    mismatches = 0
    for key, response in report4.responses.items():
        other = replayed[key]
        identical = (
            response.status == other.status
            and response.body == other.body
            and response.headers.get("Content-Type")
            == other.headers.get("Content-Type")
        )
        if not identical:
            mismatches += 1
    sink.row(f"  byte-identity: {len(report4.responses) - mismatches}/"
             f"{len(report4.responses)} responses identical to reference")
    assert mismatches == 0, f"{mismatches} responses diverged from reference"

    # -- gate: scaling and bounded tail --------------------------------
    assert speedup >= MIN_SPEEDUP, (
        f"4-shard throughput only {speedup:.2f}x the 1-shard baseline"
    )
    assert report4.latency_p99 <= MAX_P99, (
        f"4-shard p99 {report4.latency_p99}s exceeds {MAX_P99}s"
    )

    # -- persist -------------------------------------------------------
    stats4 = server4.stats()
    payload = {
        "seed": SEED,
        "pages": PAGES,
        "users": USERS,
        "requests_per_user": REQUESTS_PER_USER,
        "workers_per_shard": WORKERS_PER_SHARD,
        "queue_limit": QUEUE_LIMIT,
        "one_shard": report1.to_dict(),
        "four_shards": report4.to_dict(),
        "speedup": round(speedup, 4),
        "gates": {
            "min_speedup": MIN_SPEEDUP,
            "max_p99": MAX_P99,
            "byte_identity_responses": len(report4.responses),
            "byte_identity_mismatches": mismatches,
        },
        "four_shard_stats": {
            "routed": stats4["routed"],
            "pool": stats4["pool"],
            "response_cache": stats4["response_cache"],
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_service.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    cache = stats4["response_cache"]
    sink.row(f"  response cache: {cache['hits']} hits, "
             f"hit rate {cache['hit_rate']:.2f}")
    sink.row(f"  four-shard routing: {stats4['routed']}")
