"""S22 — the Memento interop layer's three hard gates.

All in virtual time, over deterministically seeded worlds:

* **negotiation identity** — over a 1,000-URL world with 20 revisions
  per page, TimeGate negotiation (302 + follow the Location) returns
  the revision ``view_at`` would pick for 100% of 5,000 seeded random
  datetimes, with byte-identical bodies — on the reference CGI
  :class:`~repro.core.snapshot.service.SnapshotService` *and* on the
  sharded, response-cached :class:`~repro.serve.server.DiffServer`;
* **federation fidelity** — a cross-archive diff (local revision vs a
  memento negotiated from a simulated remote archive over the virtual
  network) is byte-identical to a direct ``html_diff`` of the same
  revision pair;
* **spoiler avoidance** — a datetime-pinned browse session following
  ≥ 50 links through the TimeGate never serves a memento newer than
  the pin.

Writes ``benchmarks/results/BENCH_memento.json`` next to the other
BENCH_* files so CI can archive them.
"""

import hashlib
import json
import os

from repro.core.htmldiff.api import html_diff
from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.aide.browser import TimeTravelSession
from repro.memento.client import MementoClient
from repro.memento.core import ACCEPT_DATETIME
from repro.memento.endpoints import MementoEndpoints
from repro.memento.federation import ArchiveFederation
from repro.serve import DiffServer, build_world, seed_world
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.http import Headers, Request
from repro.web.network import Network

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

SEED = 7089  # the Memento RFC number
PAGES = 1000
ROUNDS = 20
TRIALS = 5000
SHARDED_TRIALS = 500  # the DiffServer subcheck replays a seeded subset
FOLLOWS = 60  # the pinned browse gate requires >= 50


def _draw(salt: str, bound: int) -> int:
    digest = hashlib.sha256(f"{SEED}|{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % bound


def _get(service, query, now, headers=None):
    request = Request(
        "GET", f"http://aide.example.com/cgi-bin/snapshot?{query}",
        headers=Headers(headers or {}))
    return service(request, now)


def _negotiate(service, url, target, now):
    """One TimeGate negotiation: the 302 followed by hand.

    Returns ``(status, rev, body)`` — rev/body are None on a 406.
    """
    gate = _get(service, f"action=timegate&url={url}", now,
                {ACCEPT_DATETIME: str(target)})
    if gate.status != 302:
        return gate.status, None, None
    location = gate.headers.get("Location")
    memento = _get(service, location.split("?", 1)[1], now)
    rev = location.split("rev=")[1].split("&")[0]
    return gate.status, rev, memento.body


def test_memento_gates(sink):
    sink.row("S22: Memento TimeGate / federation / pinned-browse gates")
    sink.row(f"  pages={PAGES} rounds={ROUNDS} trials={TRIALS} "
             f"follows={FOLLOWS} seed={SEED}")
    sink.row("")

    # == gate 1: negotiation identity against view_at ==================
    world = build_world(SEED, pages=PAGES)
    store = SnapshotStore(world.clock, world.agent)
    service = SnapshotService(store)
    seed_world(service, world, seed=SEED, rounds=ROUNDS)
    now = world.clock.now

    matches = refusals = 0
    for trial in range(TRIALS):
        url = world.urls[_draw(f"t{trial}.url", len(world.urls))]
        # Targets straddle the archive: pages check in staggered over
        # each round, so early draws land before a page's first capture
        # (406 territory) and the rest inside its revision history.
        target = _draw(f"t{trial}.date", now + now // 4)
        status, rev, body = _negotiate(service, url, target, now)
        oracle = store.archive_for(url).revision_at(target)
        if oracle is None:
            assert status == 406, (
                f"view_at refuses but timegate served: {url} @ {target}")
            refusals += 1
            continue
        assert status == 302 and rev == oracle.number, (
            f"negotiated {rev}, view_at picks {oracle.number}: "
            f"{url} @ {target}")
        view = _get(service, f"action=view&url={url}&date={target}", now)
        assert body == view.body, (
            f"negotiated body diverged from view_at: {url} @ {target}")
        matches += 1
    sink.row(f"  gate 1 (reference): {matches} byte-identical "
             f"negotiations, {refusals} agreed refusals "
             f"({matches + refusals}/{TRIALS})")
    assert matches + refusals == TRIALS
    assert matches > 0 and refusals > 0, "trial mix never hit both sides"

    # -- subcheck: the sharded server negotiates identically -----------
    sharded_world = build_world(SEED, pages=PAGES)
    server = DiffServer(sharded_world.clock, sharded_world.agent,
                        shards=4, workers_per_shard=2, queue_limit=64)
    seed_world(server, sharded_world, seed=SEED, rounds=ROUNDS)
    sharded_now = sharded_world.clock.now
    assert sharded_now == now
    sharded_matches = 0
    for trial in range(SHARDED_TRIALS):
        url = world.urls[_draw(f"t{trial}.url", len(world.urls))]
        target = _draw(f"t{trial}.date", now + now // 4)
        # Space the requests out in virtual time so the shard pools
        # drain; an open-loop burst at one instant just measures the
        # (already benchmarked) backpressure path.
        sharded_world.clock.advance(60)
        mine = _negotiate(server, url, target, sharded_world.clock.now)
        theirs = _negotiate(service, url, target, now)
        assert mine == theirs, (
            f"sharded negotiation diverged: {url} @ {target}")
        sharded_matches += 1
    cache_stats = server.stats()["response_cache"]
    sink.row(f"  gate 1 (sharded):   {sharded_matches}/{SHARDED_TRIALS} "
             f"identical to reference "
             f"(cache hits {cache_stats['hits']})")

    # == gate 2: federated diff fidelity ===============================
    clock = SimClock()
    network = Network(clock)
    url = "http://site.com/fed.html"

    def archive_on(host, bodies):
        agent = UserAgent(network, clock)
        fed_store = SnapshotStore(clock, agent)
        for body in bodies:
            clock.advance(3600)
            fed_store.checkin_content("bench@repro", url, body)
        network.create_server(host).register_cgi(
            "/cgi-bin/snapshot", SnapshotService(fed_store))
        return fed_store

    remote_store = archive_on("archive.example.org", [
        "<HTML><BODY><P>shared opening line.</P>"
        "<P>remote revision one.</P></BODY></HTML>",
        "<HTML><BODY><P>shared opening line.</P>"
        "<P>remote revision two, reworded.</P></BODY></HTML>",
    ])
    local_store = archive_on("aide.att.com", [
        "<HTML><BODY><P>shared opening line.</P>"
        "<P>the local capture.</P></BODY></HTML>",
    ])
    peer = MementoClient(UserAgent(network, clock),
                         "http://archive.example.org/cgi-bin/snapshot",
                         source="example.org")
    federation = ArchiveFederation(MementoEndpoints(local_store), [peer])
    remote_first = remote_store.archive_for(url).revisions()[0]
    fed = federation.cross_diff(url, "1.1", target=remote_first.date,
                                policy="exact")
    direct = html_diff(local_store.view(url, "1.1"),
                       remote_store.view(url, remote_first.number),
                       options=local_store.diff_options)
    assert fed.html == direct.html, "federated diff diverged from direct"
    assert fed.source == "example.org"
    merged = federation.merged_timemap(url)
    sink.row(f"  gate 2: federated diff byte-identical to direct "
             f"html_diff ({len(fed.html)} bytes); merged timeline has "
             f"{len(merged.mementos)} mementos across 2 archives")

    # == gate 3: pinned browsing never leaks the future ================
    browse_world = build_world(SEED, pages=64, linked=True)
    browse_store = SnapshotStore(browse_world.clock, browse_world.agent)
    browse_world.network.create_server("aide.example.com").register_cgi(
        "/cgi-bin/snapshot", SnapshotService(browse_store))
    seed_world(SnapshotService(browse_store), browse_world,
               seed=SEED, rounds=4)
    pin = browse_world.clock.now // 2
    session = TimeTravelSession(
        UserAgent(browse_world.network, browse_world.clock),
        "http://aide.example.com/cgi-bin/snapshot", pin=pin)
    session.browse(browse_world.urls[0])
    follows = 0
    while follows < FOLLOWS:
        if session.current is None or not session.current.served \
                or not session.current.links:
            # Dead end in the archived web: restart from a seeded page.
            session.browse(browse_world.urls[
                _draw(f"restart{follows}", len(browse_world.urls))])
            continue
        session.follow(_draw(f"f{follows}", 997))
        follows += 1
    served = [p for p in session.trail if p.served]
    newest = max(p.datetime for p in served)
    assert follows >= 50
    assert all(p.datetime <= pin for p in served), (
        "pinned session served a memento newer than the pin")
    sink.row(f"  gate 3: {follows} pinned link-follows, "
             f"{len(served)} pages served, newest {newest} <= pin {pin}")

    # == persist =======================================================
    payload = {
        "seed": SEED,
        "pages": PAGES,
        "rounds": ROUNDS,
        "trials": TRIALS,
        "gates": {
            "negotiation_matches": matches,
            "negotiation_refusals": refusals,
            "sharded_trials_identical": sharded_matches,
            "sharded_cache_hits": cache_stats["hits"],
            "federated_diff_bytes": len(fed.html),
            "federated_diff_identical": True,
            "pinned_follows": follows,
            "pinned_pages_served": len(served),
            "pinned_newest_served": newest,
            "pin": pin,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_memento.json"), "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
