"""S8 — ablation of HtmlDiff's symbolic constants (§5.1, §5.3).

The paper leaves two thresholds symbolic — sentence lengths must be
"sufficiently close" and the ``2W/L`` percentage "sufficiently large" —
and reports experimenting with "thresholds to specify when the changes
are too numerous to display meaningfully" (§5.3).  This bench sweeps
all three and reports how the match behaviour responds on a fixed
edited-page workload, justifying the 0.5 defaults.
"""

import random

from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.options import HtmlDiffOptions
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator

MATCH_THRESHOLDS = (0.1, 0.3, 0.5, 0.7, 0.9)
DENSITY_THRESHOLDS = (0.25, 0.5, 0.75, 1.0)
CASES = 12


def make_pairs():
    pairs = []
    for case in range(CASES):
        page = PageGenerator(seed=case).page(paragraphs=8, links=4)
        mix = MutationMix.typical(seed=case)
        mutated = page
        for _ in range(3):
            mutated = mix.apply(mutated)
        pairs.append((page, mutated))
    return pairs


def sweep():
    pairs = make_pairs()
    by_match = {}
    for threshold in MATCH_THRESHOLDS:
        options = HtmlDiffOptions(match_threshold=threshold,
                                  density_fallback="merge")
        fuzzy = replaced = 0
        for old, new in pairs:
            result = html_diff(old, new, options)
            for entry in result.diff.entries:
                if entry.is_fuzzy_common:
                    fuzzy += 1
                elif entry.cls.value in ("old", "new"):
                    replaced += 1
        by_match[threshold] = (fuzzy, replaced)

    by_density = {}
    heavy_old = PageGenerator(seed=99).page(paragraphs=8)
    heavy_new = PageGenerator(seed=100).page(paragraphs=8)
    for threshold in DENSITY_THRESHOLDS:
        options = HtmlDiffOptions(density_threshold=threshold)
        result = html_diff(heavy_old, heavy_new, options)
        by_density[threshold] = result.density_suppressed
    return by_match, by_density


def test_match_threshold_ablation(benchmark, sink):
    by_match, by_density = benchmark.pedantic(sweep, rounds=1, iterations=1)

    sink.row("S8a: match_threshold sweep (2W/L 'sufficiently large')")
    sink.row(f"{'threshold':>9s} {'fuzzy matches':>14s} "
             f"{'replaced (old+new)':>19s}")
    for threshold in MATCH_THRESHOLDS:
        fuzzy, replaced = by_match[threshold]
        sink.row(f"{threshold:9.1f} {fuzzy:14d} {replaced:19d}")
    sink.row()
    sink.row("S8b: density_threshold sweep on a near-total rewrite")
    for threshold in DENSITY_THRESHOLDS:
        verdict = "suppressed" if by_density[threshold] else "merged"
        sink.row(f"  density_threshold={threshold:4.2f}: {verdict}")

    # Monotonicity: a stricter match threshold never invents matches.
    fuzzies = [by_match[t][0] for t in MATCH_THRESHOLDS]
    assert all(a >= b for a, b in zip(fuzzies, fuzzies[1:]))
    replaceds = [by_match[t][1] for t in MATCH_THRESHOLDS]
    assert all(a <= b for a, b in zip(replaceds, replaceds[1:]))
    # The default 0.5 sits between the extremes.
    assert by_match[0.1][0] > by_match[0.9][0]
    # Low density ceilings suppress the rewrite; a ceiling of 1.0 never does.
    assert by_density[0.25] is True
    assert by_density[1.0] is False
