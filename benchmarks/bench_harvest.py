"""S9 — Harvest-style notification vs. client polling (§3.1).

"Even if servers had a mechanism to notify all interested parties when
a page has changed, immediate notification might not be worth the
overhead.  Instead, one could envision using something like the Harvest
replication and caching services to notify interested parties in a lazy
fashion...  Either way, there would not be a large number of clients
polling each interesting HTTP server."

The bench puts N users interested in one page population and compares,
over a simulated week:

* per-user daily polling (w3new-style) — origin requests scale with N;
* the Harvest design — the repository polls (or the provider pushes),
  regional caches fan out, origin load is flat in N;

and reports notification latency for poll vs provider-push discovery.
"""

from repro.aide.harvest import DistributedRepository, RegionalCache
from repro.baselines.w3new import W3New
from repro.core.w3newer.hotlist import Hotlist
from repro.simclock import DAY, HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.pagegen import PageGenerator

USERS = 50
PAGES = 10
SIM_DAYS = 7


def build_origin():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("origin.com")
    generator = PageGenerator(seed=8)
    urls = []
    for index in range(PAGES):
        server.set_page(f"/p{index}.html", generator.page())
        urls.append(f"http://origin.com/p{index}.html")
    return clock, network, server, urls


def run_polling():
    clock, network, server, urls = build_origin()
    hotlist = Hotlist.from_lines("\n".join(urls))
    pollers = [W3New(clock, UserAgent(network, clock), hotlist)
               for _ in range(USERS)]
    for day in range(1, SIM_DAYS + 1):
        clock.advance_to(day * DAY)
        for poller in pollers:
            poller.run()
    return server.request_count


def run_harvest(mode):
    clock, network, server, urls = build_origin()
    generator = PageGenerator(seed=80)
    repo = DistributedRepository(clock, UserAgent(network, clock))
    caches = [RegionalCache(f"cache{i}", repo, clock) for i in range(5)]
    for index, url in enumerate(urls):
        repo.track(url, mode=mode)
        for user in range(USERS):
            caches[user % len(caches)].register_interest(f"user{user}", url)
    latencies = []
    for day in range(1, SIM_DAYS + 1):
        # The page changes mid-morning...
        clock.advance_to(day * DAY + 10 * HOUR)
        changed_at = clock.now
        changed_path = f"/p{day % PAGES}.html"
        server.set_page(changed_path, generator.page())
        if mode == "provider-notify":
            repo.provider_changed(f"http://origin.com{changed_path}")
        # ...and the repository's nightly poll runs at midnight.
        clock.advance_to((day + 1) * DAY)
        if mode == "poll":
            repo.poll_round()
        # Latency as the *user* experiences it: delivery time minus the
        # true change time (which only this bench knows — a polling
        # repository discovers changes late by construction).
        for cache in caches:
            for user in range(USERS):
                for notice in cache.collect(f"user{user}"):
                    latencies.append(notice.delivered_at - changed_at)
    return server.request_count, latencies


def test_harvest_vs_polling(benchmark, sink):
    def run_all():
        return run_polling(), run_harvest("poll"), run_harvest("provider-notify")

    polling_requests, (poll_requests, poll_latencies), (
        push_requests, push_latencies
    ) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    sink.row(f"S9: {USERS} users x {PAGES} pages, one week")
    sink.row(f"{'architecture':28s} {'origin requests':>16s} "
             f"{'median latency':>15s}")
    sink.row(f"{'per-user daily polling':28s} {polling_requests:16d} "
             f"{'<= 1 day':>15s}")

    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2] if ordered else 0

    sink.row(f"{'harvest, repository polls':28s} {poll_requests:16d} "
             f"{median(poll_latencies) / HOUR:13.0f}h")
    sink.row(f"{'harvest, provider notifies':28s} {push_requests:16d} "
             f"{median(push_latencies) / HOUR:13.0f}h")

    # Origin load: harvest is ~USERS times cheaper than per-user polling.
    assert poll_requests * (USERS // 2) < polling_requests
    # Push discovery cuts latency to zero and polls the origin least.
    assert push_requests <= poll_requests
    assert median(push_latencies) == 0
    assert median(poll_latencies) > 0
    # Everyone eventually heard about every change (no drops configured).
    assert len(poll_latencies) == len(push_latencies) == USERS * SIM_DAYS
