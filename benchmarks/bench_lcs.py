"""S4 — the comparison engine's speed optimizations.

Section 5.1: "We apply Hirshberg's solution to the longest common
subsequence (LCS) problem (with several speed optimizations)".  This
ablation measures the two reproduced optimizations over a
document-size sweep:

* common-affix trimming before the quadratic core (successive page
  versions share large head/tail regions);
* the sentence-length pre-filter (step 1 of the two-step match), which
  skips the inner word-level LCS for obviously mismatched sentences.

Myers's O(ND) algorithm is included as the modern speed reference on
the equality-only (line diff) workload.
"""

import random
from dataclasses import replace

from repro.core.htmldiff.matcher import TokenMatcher, match_tokens
from repro.core.htmldiff.options import HtmlDiffOptions
from repro.core.htmldiff.tokenizer import tokenize_document
from repro.diffcore.huntmcilroy import hunt_mcilroy_pairs
from repro.diffcore.myers import myers_pairs
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator

PARAGRAPH_COUNTS = (10, 30, 60)


def make_version_pair(paragraphs, edits=4, seed=3):
    page = PageGenerator(seed=seed).page(paragraphs=paragraphs, links=6)
    mix = MutationMix.typical(seed=seed)
    mutated = page
    for _ in range(edits):
        mutated = mix.apply(mutated)
    return page, mutated


def match_with(options, old_tokens, new_tokens):
    matcher = TokenMatcher(options)
    match_tokens(old_tokens, new_tokens, matcher=matcher)
    return matcher


def test_length_prefilter_ablation(benchmark, sink):
    old, new = make_version_pair(40)
    old_tokens = tokenize_document(old)
    new_tokens = tokenize_document(new)

    # Run on the reference core with only the length filter toggled:
    # the newer fast-path layers (anchoring, interning, the bag-of-items
    # bound) evaluate so few cross pairs that the length filter would
    # have nothing left to reject (bench_fastpath covers those layers).
    reference = HtmlDiffOptions().reference()
    with_filter = match_with(reference, old_tokens, new_tokens)
    without_filter = match_with(
        replace(reference, use_length_prefilter=False),
        old_tokens, new_tokens,
    )

    sink.row("S4a: sentence-length pre-filter ablation (40-paragraph page)")
    sink.row(f"  tokens: {len(old_tokens)} old / {len(new_tokens)} new")
    sink.row(f"  inner sentence-LCS runs with pre-filter:    "
             f"{with_filter.inner_lcs_runs}")
    sink.row(f"  inner sentence-LCS runs without pre-filter: "
             f"{without_filter.inner_lcs_runs}")
    sink.row(f"  pairs rejected by length alone:             "
             f"{with_filter.prefilter_rejections}")
    saved = without_filter.inner_lcs_runs - with_filter.inner_lcs_runs
    sink.row(f"  inner LCS runs avoided:                     {saved}")

    assert with_filter.inner_lcs_runs < without_filter.inner_lcs_runs
    # The filter is a pure speed optimization here: same matching.
    pairs_with = match_tokens(old_tokens, new_tokens,
                              options=HtmlDiffOptions())
    pairs_without = match_tokens(
        old_tokens, new_tokens,
        options=HtmlDiffOptions(use_length_prefilter=False),
    )
    assert len(pairs_with) == len(pairs_without)

    benchmark(lambda: match_with(HtmlDiffOptions(), old_tokens, new_tokens))


def test_affix_trimming_effect(benchmark, sink):
    sink.row("S4b: token matching runtime over page size (typical edits)")
    sink.row(f"{'paragraphs':>10s} {'tokens':>7s} {'matches':>8s}")
    rows = []
    for paragraphs in PARAGRAPH_COUNTS:
        old, new = make_version_pair(paragraphs)
        old_tokens = tokenize_document(old)
        new_tokens = tokenize_document(new)
        pairs = match_tokens(old_tokens, new_tokens)
        rows.append((paragraphs, len(old_tokens), len(pairs)))
        sink.row(f"{paragraphs:10d} {len(old_tokens):7d} {len(pairs):8d}")
    # Most tokens survive a typical small edit — exactly the workload
    # affix trimming exists for.
    for paragraphs, tokens, matches in rows:
        assert matches > 0.7 * tokens

    old, new = make_version_pair(PARAGRAPH_COUNTS[-1])
    old_tokens = tokenize_document(old)
    new_tokens = tokenize_document(new)
    benchmark(lambda: match_tokens(old_tokens, new_tokens))


def test_line_diff_engines(benchmark, sink):
    """Hunt–McIlroy (the RCS/delta engine) vs Myers on line workloads."""
    old, new = make_version_pair(60, edits=6)
    old_lines = old.split("\n")
    new_lines = new.split("\n")

    hm = hunt_mcilroy_pairs(old_lines, new_lines)
    my = myers_pairs(old_lines, new_lines)
    sink.row("S4c: line-diff engines on a 60-paragraph page pair")
    sink.row(f"  lines: {len(old_lines)} -> {len(new_lines)}")
    sink.row(f"  Hunt-McIlroy matches: {len(hm)}")
    sink.row(f"  Myers matches:        {len(my)}")
    assert len(hm) == len(my)  # both find an optimal LCS

    benchmark(lambda: hunt_mcilroy_pairs(old_lines, new_lines))
