"""T1 — Table 1: the w3newer threshold configuration, in action.

The paper's Table 1 is a configuration artifact; the measurable claim
behind it is in the surrounding text: thresholds cut direct HEAD
traffic ("Things on Yahoo are checked only every seven days...",
"Dilbert is never checked").  This bench drives one simulated week of
daily w3newer runs under the *exact* Table 1 rules against the sites
the table names, and reports per-URL direct-check counts next to the
poll-every-run cost.
"""

from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import ThresholdConfig
from repro.simclock import DAY, HOUR, NEVER, SimClock, format_duration
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.web.sites import DilbertSite, build_att_intranet, build_yahoo


URLS = [
    ("http://www.yahoo.com/category0/", "7d"),
    ("http://www.research.att.com/", "0"),
    ("http://www.ncsa.uiuc.edu/SDG/Software/Mosaic/Docs/whats-new.html", "12h"),
    ("http://snapple.cs.washington.edu:600/mobile/", "1d"),
    ("http://www.unitedmedia.com/comics/dilbert/", "never"),
    ("http://elsewhere.org/random.html", "2d (default)"),
]

RUNS_PER_DAY = 2  # w3newer from cron, morning and evening
DAYS = 7


def build_world():
    clock = SimClock()
    network = Network(clock)
    build_yahoo(network)
    build_att_intranet(network)
    DilbertSite(network, clock)
    ncsa = network.create_server("www.ncsa.uiuc.edu")
    ncsa.set_page("/SDG/Software/Mosaic/Docs/whats-new.html", "<P>new!</P>")
    mobile = network.create_server("snapple.cs.washington.edu")
    mobile.set_page("/mobile/", "<P>mobile computing</P>")
    other = network.create_server("elsewhere.org")
    other.set_page("/random.html", "<P>a page</P>")
    hotlist = Hotlist.from_lines("\n".join(url for url, _ in URLS))
    tracker = W3Newer(
        clock,
        UserAgent(network, clock),
        hotlist,
        config=ThresholdConfig.default_config(),
    )
    return clock, network, tracker


def simulate():
    clock, network, tracker = build_world()
    for half_day in range(DAYS * RUNS_PER_DAY):
        clock.advance_to((half_day + 1) * (DAY // RUNS_PER_DAY))
        tracker.run()
        # The user reads everything after each report; without a visit,
        # a page already known-modified is never re-checked at all
        # ("omits checks of pages already known to be modified since
        # the user last saw the page") and thresholds never come up.
        for entry in tracker.hotlist:
            tracker.mark_page_viewed(entry.url)
    per_url = {}
    robots_fetches = 0
    for record in network.log:
        if record.path == "/robots.txt":
            robots_fetches += 1
            continue
        key = f"http://{record.host}{record.path.split('?')[0]}"
        per_url[key] = per_url.get(key, 0) + 1
    return network, tracker, per_url, robots_fetches


def test_table1_thresholds(benchmark, sink):
    network, tracker, per_url, robots_fetches = benchmark.pedantic(
        simulate, rounds=1, iterations=1
    )
    total_runs = DAYS * RUNS_PER_DAY
    sink.row("T1: Table 1 thresholds over one week, two runs/day")
    sink.row(f"{'URL':64s} {'threshold':12s} {'requests':>8s} {'poll-always':>11s}")
    config = ThresholdConfig.default_config()
    total = 0
    for url, label in URLS:
        count = sum(v for k, v in per_url.items() if k.startswith(url.rstrip('/')))
        total += count
        sink.row(f"{url:64s} {label:12s} {count:8d} {total_runs:11d}")
    sink.row()
    sink.row(f"page requests:            {total}")
    sink.row(f"robots.txt fetches:       {robots_fetches}")
    sink.row(f"poll-everything baseline: {total_runs * len(URLS)}")

    # Shape assertions mirroring the table's intent.
    dilbert = sum(
        v for k, v in per_url.items() if "unitedmedia" in k and "robots" not in k
    )
    assert dilbert == 0, "never means never"
    yahoo = sum(v for k, v in per_url.items()
                if "yahoo" in k and "robots" not in k)
    att = sum(v for k, v in per_url.items()
              if "att.com" in k and "robots" not in k)
    assert yahoo <= 2, "7d threshold: at most the first check in a week"
    assert att >= total_runs, "0 threshold: checked every run"
