"""S15 — the resilience layer under a seeded chaos plan.

Three scenarios over a 200-host simulated web:

* **differential guarantee** — a trivial ``FaultPlan`` plus the default
  ``RetryPolicy`` produces byte-identical reports and an identical
  request log to the bare ``UserAgent`` (gate: exact equality);
* **chaos convergence** — every host drops 20% of requests (seeded,
  deterministic) and a 20-host block is hard-down during the first run,
  forcing an abort; the checkpointed tracker must converge to 100%
  hotlist coverage within 3 runs while retry amplification stays
  bounded (gates: coverage 1.0, amplification ≤ 1.5x);
* **breaker economics** — a dead host polled daily: the circuit breaker
  caps the wire traffic wasted on it vs bare retries.

Results land in ``benchmarks/results/BENCH_resilience.json`` next to
the other BENCH_* files so CI can archive them.
"""

import json
import os

from repro.core.w3newer.errors import UrlState
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import FaultPlan, Network
from repro.web.resilience import ResilientAgent, RetryPolicy

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

HOSTS = 200
RUNS = 3
CHAOS_SEED = 42
DROP_RATE = 0.20
OUTAGE_HOSTS = range(100, 120)  # hard-down block during run 1

CONFIG = parse_threshold_config("Default 0\n")

UNRESOLVED = (UrlState.ERROR, UrlState.NOT_CHECKED, UrlState.NEVER_CHECK)


def build_world(plan=None, resilient=False, **agent_kwargs):
    clock = SimClock()
    network = Network(clock, fault_plan=plan)
    for h in range(HOSTS):
        server = network.create_server(f"host{h:03d}.com")
        server.set_page("/page.html", f"<P>page of host {h}</P>")
    agent = UserAgent(network, clock)
    if resilient:
        agent = ResilientAgent(agent, **agent_kwargs)
    hotlist = Hotlist.from_lines(
        "\n".join(f"http://host{h:03d}.com/page.html" for h in range(HOSTS))
    )
    tracker = W3Newer(clock, agent, hotlist, config=CONFIG,
                      abort_after_failures=5)
    return clock, network, tracker


def drive(clock, tracker, runs=RUNS):
    """The daily cron: run, then the user reads the report (so every
    URL is due for a real HTTP check again next run)."""
    for _ in range(runs):
        tracker.run()
        for entry in tracker.hotlist:
            tracker.mark_page_viewed(entry.url)
        clock.advance(DAY)
    return tracker.runs


# ----------------------------------------------------------------------
def scenario_differential(sink):
    def run_world(resilient):
        clock, network, tracker = build_world(FaultPlan(), resilient=resilient)
        drive(clock, tracker)
        return network, tracker

    plain_net, plain = run_world(False)
    wrapped_net, wrapped = run_world(True)
    reports_identical = all(
        mine.report_html == theirs.report_html
        for mine, theirs in zip(plain.runs, wrapped.runs)
    )
    traffic_identical = plain_net.log == wrapped_net.log
    stats = wrapped.agent.stats()
    sink.row(f"  differential: {RUNS} runs x {HOSTS} hosts, zero faults — "
             f"reports identical: {reports_identical}, "
             f"traffic identical: {traffic_identical} "
             f"({len(plain_net.log)} requests each)")
    assert reports_identical, "zero-fault reports diverged"
    assert traffic_identical, "zero-fault request logs diverged"
    assert stats["retries"] == 0 and stats["breaker_opens"] == 0
    return {
        "hosts": HOSTS,
        "runs": RUNS,
        "requests": len(plain_net.log),
        "reports_identical": reports_identical,
        "traffic_identical": traffic_identical,
    }


# ----------------------------------------------------------------------
def chaos_plan():
    plan = FaultPlan(seed=CHAOS_SEED)
    plan.intermittent("*", DROP_RATE, kind="timeout", tag="chaos")
    for h in OUTAGE_HOSTS:
        plan.outage(f"host{h:03d}.com", kind="timeout", end=DAY,
                    tag="outage")
    return plan


def scenario_chaos(sink):
    clock, network, tracker = build_world(
        chaos_plan(), resilient=True,
        policy=RetryPolicy(seed=CHAOS_SEED))
    runs = drive(clock, tracker)

    covered = set()
    converged_after = None
    for index, result in enumerate(runs, start=1):
        for outcome in result.outcomes:
            if outcome.state not in UNRESOLVED:
                covered.add(outcome.url)
        if converged_after is None and len(covered) == HOSTS:
            converged_after = index
    coverage = len(covered) / HOSTS

    # Amplification: chaos wire traffic vs the same schedule on a
    # fault-free network (the denominator the retry budget protects).
    clean_clock, clean_net, clean_tracker = build_world(FaultPlan())
    drive(clean_clock, clean_tracker)
    amplification = len(network.log) / len(clean_net.log)

    stats = tracker.agent.stats()
    aborted_runs = sum(1 for r in runs if r.aborted)
    resumed_runs = sum(1 for r in runs if r.resumed_from is not None)
    final = runs[-1]
    sink.row(f"  chaos: seed {CHAOS_SEED}, {DROP_RATE:.0%} drop on all "
             f"hosts, {len(list(OUTAGE_HOSTS))} hosts dark during run 1")
    sink.row(f"    coverage {coverage:.1%} (converged after run "
             f"{converged_after}), {aborted_runs} aborted / "
             f"{resumed_runs} resumed runs")
    sink.row(f"    wire: {len(network.log)} requests vs "
             f"{len(clean_net.log)} clean = {amplification:.2f}x "
             f"amplification; {stats['retries']} retries, "
             f"{stats['breaker_opens']} breaker opens, "
             f"{stats['fallbacks']} stale fallbacks")
    sink.row(f"    final run: {len(final.errors)} errors, "
             f"{len(final.stale)} stale of {len(final.outcomes)} outcomes")

    assert coverage == 1.0, f"coverage stuck at {coverage:.1%}"
    assert converged_after is not None and converged_after <= RUNS
    assert amplification <= 1.5, f"amplification {amplification:.2f}x"
    assert aborted_runs >= 1, "outage block never forced an abort"
    assert resumed_runs >= 1, "checkpoint never resumed"
    return {
        "seed": CHAOS_SEED,
        "hosts": HOSTS,
        "drop_rate": DROP_RATE,
        "outage_hosts": len(list(OUTAGE_HOSTS)),
        "coverage": coverage,
        "converged_after_run": converged_after,
        "aborted_runs": aborted_runs,
        "resumed_runs": resumed_runs,
        "chaos_requests": len(network.log),
        "clean_requests": len(clean_net.log),
        "amplification": round(amplification, 3),
        "retries": stats["retries"],
        "breaker_opens": stats["breaker_opens"],
        "stale_fallbacks": stats["fallbacks"],
        "final_run_errors": len(final.errors),
        "final_run_stale": len(final.stale),
    }


# ----------------------------------------------------------------------
def scenario_breaker_economics(sink):
    """One dead host, polled daily for two weeks: wire requests spent
    on it with bare retries vs with a circuit breaker in front."""
    def poll_dead_host(resilient):
        plan = FaultPlan()
        plan.outage("dead.com", kind="refused")
        clock = SimClock()
        network = Network(clock, fault_plan=plan)
        network.create_server("dead.com")
        agent = UserAgent(network, clock)
        if resilient:
            agent = ResilientAgent(agent, policy=RetryPolicy())
        for _ in range(14):
            for attempt_url in (f"http://dead.com/p{i}.html" for i in range(5)):
                try:
                    agent.get(attempt_url)
                except Exception:
                    pass
            clock.advance(DAY)
        return len(network.log)

    bare = poll_dead_host(False)
    with_breaker = poll_dead_host(True)
    saved = 1 - with_breaker / (bare * 3)  # bare agent would retry 3x
    sink.row(f"  breaker economics: dead host, 70 polls — bare agent "
             f"{bare} requests (x3 with naive retries), breaker "
             f"{with_breaker} requests ({saved:.0%} of naive-retry "
             f"traffic avoided)")
    assert with_breaker < bare * 3
    return {
        "polls": 70,
        "bare_requests": bare,
        "naive_retry_requests": bare * 3,
        "breaker_requests": with_breaker,
    }


# ----------------------------------------------------------------------
def test_resilience(sink):
    sink.row(f"S15: resilience layer — {HOSTS}-host chaos scenario")
    report = {
        "differential": scenario_differential(sink),
        "chaos": scenario_chaos(sink),
        "breaker_economics": scenario_breaker_economics(sink),
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_resilience.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    # The headline gates, restated on the persisted report.
    assert report["differential"]["reports_identical"]
    assert report["differential"]["traffic_identical"]
    assert report["chaos"]["coverage"] == 1.0
    assert report["chaos"]["converged_after_run"] <= RUNS
    assert report["chaos"]["amplification"] <= 1.5
