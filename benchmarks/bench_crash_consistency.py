"""Crash-consistency sweep: kill a snapshot operation at every declared
crash point and gate on recovery.

The robustness claim behind paper §4.2's consistency triangle (RCS
repository, cached copy, control files): no matter where a process
dies, recovery leaves zero cross-file invariant violations, and
re-running the interrupted operation converges to a repository
byte-identical to one that never crashed.

Method, per operation (remember, batch check-in, diff-view, and
remember under the deterministic scheduler):

1. **Probe**: run the operation cleanly with ``Failpoints.recording``
   on; the recorded trace enumerates every (point, hit) the operation
   passes — the sweep space is measured, not guessed.
2. **Sweep**: for each (point, hit), rebuild the world from scratch,
   arm ``CrashPlan.at(point, hit)``, run until the simulated death,
   then: fsck the wreckage (no data-losing problems allowed), recover
   with ``load_store``, re-run the operation, sync, and compare the
   compacted archives + control file byte-for-byte against the
   never-crashed reference.  A final ``verify_store(repair=True)``
   must come back clean.

Writes benchmarks/results/BENCH_crash.json; the union of the probed
traces must cover the entire CRASH_POINTS registry, so a new crash
point cannot silently escape the sweep.
"""

import json
import os
import warnings
from collections import Counter

from repro.core.snapshot.journal import scan_journal
from repro.core.snapshot.persistence import (
    JournalRecoveryWarning,
    append_store,
    load_store,
    verify_store,
)
from repro.core.snapshot.sched import (
    CRASH_POINTS,
    CrashPlan,
    Failpoints,
    SimScheduler,
    SimulatedCrash,
)
from repro.core.snapshot.store import SnapshotStore
from repro.core.snapshot.wal import WriteAheadLog
from repro.rcs.rcsfile import serialize_rcsfile
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

from conftest import RESULTS_DIR

URL = "http://site.com/page"
V1 = "<HTML><BODY><P>crash fodder, version one.</P>\n<P>More.</P></BODY></HTML>"
V2 = "<HTML><BODY><P>crash fodder, version two!</P>\n<P>More.</P></BODY></HTML>"
BATCH_USERS = ["a@x.com", "b@x.com", "c@x.com"]


class World:
    """One isolated simulated universe with an on-disk repository."""

    def __init__(self, repo, scheduled=False):
        self.repo = repo
        self.clock = SimClock()
        self.network = Network(self.clock)
        self.server = self.network.create_server("site.com")
        self.server.set_page("/page", V1)
        self.agent = UserAgent(self.network, self.clock)
        self.store = self._fresh_store()
        self.sched = None
        if scheduled:
            self.sched = SimScheduler()
            self.store.failpoints.attach(self.sched)
            self.store.locks.attach(self.sched)

    def _fresh_store(self):
        store = SnapshotStore(self.clock, self.agent)
        store.attach_failpoints(Failpoints())
        store.attach_wal(WriteAheadLog(store, self.repo))
        return store

    def recover(self):
        """What a restarted CGI process sees: disk is all that's left."""
        store = SnapshotStore(self.clock, self.agent)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", JournalRecoveryWarning)
            load_store(store, self.repo)
        store.attach_failpoints(Failpoints())
        store.attach_wal(WriteAheadLog(store, self.repo))
        if self.sched is not None:
            store.failpoints.attach(self.sched)
            store.locks.attach(self.sched)
        self.store = store
        return store


def normalize_result(result):
    """An operation result with the already-done-ness stripped: a
    re-run after a post-commit crash correctly reports ``changed=False``
    for work the first attempt made durable, so only the identifying
    outcome (which revision, for whom, when) must match."""
    if isinstance(result, list):
        return [normalize_result(item) for item in result]
    if hasattr(result, "revision"):
        return (result.url, result.revision, result.when)
    return result


def canonical(store):
    """The repository's logical content as bytes-comparable text."""
    return {
        "archives": {
            url: serialize_rcsfile(archive)
            for url, archive in sorted(store.archives.items())
        },
        "users": store.users.serialize(),
    }


# ----------------------------------------------------------------------
# The operations under test.  Each spec: (scheduled, prime, run).
# ----------------------------------------------------------------------

def _prime_nothing(world):
    pass


def _prime_first_snapshot(world):
    world.store.remember("fred@att.com", URL)
    world.clock.advance(DAY)
    world.server.set_page("/page", V2)


def _run_remember(world):
    return world.store.remember("fred@att.com", URL)


def _run_batch(world):
    return world.store.checkin_content_batch(BATCH_USERS, URL, V1)


def _run_diff_view(world):
    return world.store.diff("fred@att.com", URL).html


def _run_remember_scheduled(world):
    name = f"p{len(world.sched.processes) + 1}"
    proc = world.sched.spawn(
        name, lambda: world.store.remember("fred@att.com", URL)
    )
    world.sched.run()
    world.sched.join_threads()
    if proc.state in ("dead", "failed"):
        raise proc.error  # surface the simulated death to the sweep
    return proc.result


OPS = {
    "remember": (False, _prime_nothing, _run_remember),
    "checkin-batch": (False, _prime_nothing, _run_batch),
    "diff-view": (False, _prime_first_snapshot, _run_diff_view),
    "remember-sched": (True, _prime_nothing, _run_remember_scheduled),
}


def probe(name, tmp_root):
    """Clean run with trace recording: the measured sweep space."""
    scheduled, prime, run = OPS[name]
    world = World(os.path.join(tmp_root, f"probe-{name}"), scheduled)
    prime(world)
    world.store.failpoints.reset()
    world.store.failpoints.recording = True
    result = run(world)
    trace = list(world.store.failpoints.trace)
    hits = []
    seen = Counter()
    for point in trace:
        seen[point] += 1
        hits.append((point, seen[point]))
    return hits, canonical(world.store), normalize_result(result)


def crash_trial(name, point, hit, reference, reference_result, tmp_root):
    """One sweep cell: die at (point, hit), recover, re-run, compare."""
    scheduled, prime, run = OPS[name]
    repo = os.path.join(tmp_root, f"{name}-{point.replace('.', '_')}-{hit}")
    world = World(repo, scheduled)
    prime(world)
    world.store.failpoints.arm(CrashPlan.at(point, hit))
    crashed = False
    try:
        run(world)
    except SimulatedCrash:
        crashed = True
    assert crashed, f"{name}: plan at {point}#{hit} never fired"

    # Gate 1: the wreckage has no data-losing problems — everything a
    # half-done transaction left behind is explainable and recoverable.
    wreck = verify_store(repo)
    fsck_ok = wreck.ok

    # Gate 2: recovery + re-run converges byte-identically.
    store = world.recover()
    world.store.failpoints.arm(None)
    result = run(world)
    append_store(store, repo)
    converged = canonical(store) == reference
    result_matches = normalize_result(result) == reference_result

    # Gate 3: a repair pass leaves a clean, note-free repository.
    final = verify_store(repo, repair=True)

    return {
        "point": point,
        "hit": hit,
        "fsck_ok_after_crash": fsck_ok,
        "fsck_problems": list(wreck.problems),
        "converged": converged,
        "result_matches": result_matches,
        "final_ok": final.ok,
        "final_notes": len(final.notes),
    }


# ----------------------------------------------------------------------
def test_crash_consistency(sink, tmp_path):
    tmp_root = str(tmp_path)
    report = {"ops": {}, "points_covered": []}
    covered = set()
    total = failures = 0

    sink.row("Crash-consistency sweep: die at every (point, hit), "
             "recover, re-run, compare")
    for name in OPS:
        hits, reference, reference_result = probe(name, tmp_root)
        trials = []
        for point, hit in hits:
            trial = crash_trial(
                name, point, hit, reference, reference_result, tmp_root
            )
            trials.append(trial)
            covered.add(point)
            total += 1
            ok = (trial["fsck_ok_after_crash"] and trial["converged"]
                  and trial["result_matches"] and trial["final_ok"])
            if not ok:
                failures += 1
            marker = "ok" if ok else "FAIL"
            sink.row(f"  {name:15s} {point:22s} hit {hit}: {marker}")
        report["ops"][name] = {
            "crash_sites": len(hits),
            "trials": trials,
        }

    report["points_covered"] = sorted(covered)
    report["registry"] = list(CRASH_POINTS)
    report["total_trials"] = total
    report["failures"] = failures
    uncovered = set(CRASH_POINTS) - covered
    sink.row()
    sink.row(f"  {total} crash trials across {len(OPS)} operations; "
             f"{len(covered)}/{len(CRASH_POINTS)} registry points "
             f"exercised; {failures} failure(s)")
    if uncovered:
        sink.row(f"  UNCOVERED points: {sorted(uncovered)}")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_crash.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    # The headline gates.
    assert failures == 0
    assert not uncovered, f"registry points never exercised: {uncovered}"
    for name, data in report["ops"].items():
        for trial in data["trials"]:
            assert trial["fsck_ok_after_crash"], (name, trial)
            assert trial["converged"], (name, trial)
            assert trial["result_matches"], (name, trial)
            assert trial["final_ok"], (name, trial)


def test_zero_crash_overhead_is_invisible(sink, tmp_path):
    """With no plan armed, the transactional store's observable results
    equal the plain store's — the opt-in guarantee."""
    def drive(store, world):
        outputs = []
        outputs.append(store.remember("fred@att.com", URL))
        world.clock.advance(DAY)
        world.server.set_page("/page", V2)
        outputs.append(store.remember("tom@att.com", URL))
        outputs.append(store.diff("fred@att.com", URL).html)
        outputs.append(store.view(URL, "1.1"))
        return outputs, canonical(store)

    plain_world = World(str(tmp_path / "wal"))
    plain = SnapshotStore(plain_world.clock, plain_world.agent)
    plain_out, plain_state = drive(plain, plain_world)

    txn_world = World(str(tmp_path / "wal2"))
    txn_out, txn_state = drive(txn_world.store, txn_world)

    assert plain_out == txn_out
    assert plain_state == txn_state
    journaled = len(scan_journal(str(tmp_path / "wal2")).entries)
    sink.row(f"  zero-crash differential: plain vs transactional store "
             f"byte-identical across remember/diff/view "
             f"({journaled} journal entries written along the way)")
