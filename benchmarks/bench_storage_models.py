"""S7 — the Section 4.1 storage-architecture comparison.

"Client-side support... requires that every page of interest be saved
by every user, which is unattractive as the number of pages in the
average user's hotlist increases...  Our approach is to run a service
... Once a page is stored with the service, subsequent requests to
remember the state of the page result in an RCS 'check-in' operation
that saves only the differences."

The bench sweeps the user population over a shared page set with
overlapping interests and compares total bytes stored under three
architectures:

* client-side: every user keeps a private full copy of every version
  of every page they track;
* external service, full copies: shared store, one full copy per
  version;
* external service, RCS (AIDE): shared store, reverse deltas.
"""

import random

from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator

USER_COUNTS = (5, 20, 50)
PAGES = 30
PAGES_PER_USER = 12
SIM_DAYS = 14


def run_model(users):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("shared.org")
    generator = PageGenerator(seed=4)
    rng = random.Random(4)
    mixes = {}
    for index in range(PAGES):
        server.set_page(f"/p{index}.html", generator.page(paragraphs=8))
        mixes[index] = MutationMix.typical(seed=index)

    store = SnapshotStore(clock, UserAgent(network, clock))
    interests = {
        f"user{u}": rng.sample(range(PAGES), PAGES_PER_USER)
        for u in range(users)
    }
    client_side_bytes = 0

    for day in range(1, SIM_DAYS + 1):
        clock.advance_to(day * DAY)
        # A third of the pages change each day.
        for index in range(PAGES):
            if (index + day) % 3 == 0:
                page = server.get_page(f"/p{index}.html")
                server.set_page(f"/p{index}.html", mixes[index].apply(page.body))
        # Every user re-remembers their pages daily.
        for user, pages in interests.items():
            for index in pages:
                store.remember(user, f"http://shared.org/p{index}.html")
    # Client-side total: every user holds a full copy of every version
    # of every page they track.
    for user, pages in interests.items():
        for index in pages:
            url = f"http://shared.org/p{index}.html"
            archive = store.archive_for(url)
            for info in archive.revisions():
                client_side_bytes += len(archive.checkout(info.number))
    return {
        "client_side": client_side_bytes,
        "service_full": store.full_copy_bytes(),
        "service_rcs": store.total_bytes(),
    }


def test_storage_models(benchmark, sink):
    def sweep():
        return {users: run_model(users) for users in USER_COUNTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    sink.row("S7: bytes stored after two weeks "
             f"({PAGES} pages, {PAGES_PER_USER} per user)")
    sink.row(f"{'users':>6s} {'client-side':>12s} {'service+copies':>15s} "
             f"{'service+RCS':>12s} {'RCS saving':>11s}")
    for users in USER_COUNTS:
        r = results[users]
        sink.row(
            f"{users:6d} {r['client_side']:12,d} {r['service_full']:15,d} "
            f"{r['service_rcs']:12,d} "
            f"{r['client_side'] / r['service_rcs']:10.1f}x"
        )

    for users in USER_COUNTS:
        r = results[users]
        # The service stores each version once; RCS compresses further.
        assert r["service_rcs"] < r["service_full"] < r["client_side"]
    # Client-side cost grows with users; the shared service's does not.
    assert results[50]["client_side"] > 5 * results[5]["client_side"]
    assert results[50]["service_rcs"] <= results[5]["service_rcs"] * 1.2
