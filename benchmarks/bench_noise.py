"""S5 — noisy modifications: the junk-mail problem.

Section 3.1: "automatic detection of modifications based on information
such as modification date and checksum can lead to the generation of
'junk mail' as 'noisy' modifications trigger change notifications.  For
instance, pages that report the number of times they have been
accessed, or embed the current time, will look different every time
they are retrieved."

The bench tracks a mixed population — stable pages, genuinely changing
pages, counter pages, clock pages — for two simulated weeks and reports
each strategy's junk-notification rate:

* date-based checking (w3newer's primary path);
* checksum-based checking (URL-minder / the CGI fallback);
* the Table 1 remedy: a ``never`` threshold on known-noisy URLs.
"""

from repro.baselines.urlminder import UrlMinder
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, SimClock
from repro.web.cgi import ClockScript, CounterScript
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.mutate import edit_sentence
from repro.workloads.pagegen import PageGenerator

SIM_DAYS = 14
STABLE, REAL, NOISY = 5, 3, 4


def build_world(threshold_config):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("mixed.com")
    generator = PageGenerator(seed=5)
    urls = []
    for i in range(STABLE):
        server.set_page(f"/stable{i}.html", generator.page())
        urls.append(f"http://mixed.com/stable{i}.html")
    for i in range(REAL):
        server.set_page(f"/real{i}.html", generator.page())
        urls.append(f"http://mixed.com/real{i}.html")
    for i in range(NOISY // 2):
        server.register_cgi(f"/cgi-bin/counter{i}", CounterScript())
        urls.append(f"http://mixed.com/cgi-bin/counter{i}")
        server.register_cgi(f"/cgi-bin/clock{i}", ClockScript())
        urls.append(f"http://mixed.com/cgi-bin/clock{i}")
    hotlist = Hotlist.from_lines("\n".join(urls))
    tracker = W3Newer(
        clock, UserAgent(network, clock), hotlist,
        config=parse_threshold_config(threshold_config),
    )
    return clock, network, server, tracker


def run_tracking(threshold_config):
    clock, network, server, tracker = build_world(threshold_config)
    import random

    rng = random.Random(9)
    real_notifications = 0
    junk_notifications = 0
    for day in range(1, SIM_DAYS + 1):
        clock.advance_to(day * DAY)
        if day % 3 == 0:  # the real pages change every third day
            for i in range(REAL):
                page = server.get_page(f"/real{i}.html")
                server.set_page(f"/real{i}.html", edit_sentence(page.body, rng))
        run = tracker.run()
        for outcome in run.changed:
            if "/cgi-bin/" in outcome.url:
                junk_notifications += 1
            else:
                real_notifications += 1
            tracker.mark_page_viewed(outcome.url)
    return real_notifications, junk_notifications


def test_noise_junk_mail(benchmark, sink):
    def run_all():
        plain = run_tracking("Default 0\n")
        with_never = run_tracking(
            "Default 0\nhttp://mixed\\.com/cgi-bin/.* never\n"
        )
        return plain, with_never

    (plain_real, plain_junk), (never_real, never_junk) = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    sink.row("S5: change notifications over two weeks "
             f"({STABLE} stable / {REAL} real / {NOISY} noisy pages)")
    sink.row(f"{'strategy':34s} {'real':>5s} {'junk':>5s} {'junk share':>11s}")
    total_plain = plain_real + plain_junk
    sink.row(f"{'checksum, no thresholds':34s} {plain_real:5d} "
             f"{plain_junk:5d} {plain_junk / total_plain:10.0%}")
    total_never = never_real + never_junk
    sink.row(f"{'with Table-1 never rule':34s} {never_real:5d} "
             f"{never_junk:5d} "
             f"{never_junk / max(1, total_never):10.0%}")

    # The junk dominates without the remedy…
    assert plain_junk > plain_real
    # …and the Table 1 'never' rule eliminates it without losing
    # any real notifications.
    assert never_junk == 0
    assert never_real == plain_real
