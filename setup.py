"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on offline machines that lack the ``wheel``
package (pip then falls back to ``setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "AIDE: the AT&T Internet Difference Engine "
        "(Douglis & Ball, USENIX 1996) — full reproduction"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["aide=repro.cli:main"]},
)
