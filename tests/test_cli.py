"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.web.sites import usenix_home_v1, usenix_home_v2


@pytest.fixture
def files(tmp_path):
    old = tmp_path / "old.html"
    new = tmp_path / "new.html"
    old.write_text(usenix_home_v1())
    new.write_text(usenix_home_v2())
    return tmp_path, old, new


class TestHtmldiffCommand:
    def test_diff_to_file(self, files, capsys):
        tmp_path, old, new = files
        out = tmp_path / "merged.html"
        code = main(["htmldiff", str(old), str(new), "-o", str(out)])
        assert code == 1  # differences found
        merged = out.read_text()
        assert "<STRIKE>" in merged
        assert "AT&amp;T Internet Difference Engine" in merged
        assert "differences" in capsys.readouterr().err

    def test_identical_files_exit_zero(self, files, capsys):
        tmp_path, old, new = files
        code = main(["htmldiff", str(old), str(old), "-q"])
        assert code == 0
        assert capsys.readouterr().err == ""

    def test_stdout_default(self, files, capsys):
        tmp_path, old, new = files
        code = main(["htmldiff", "-q", str(old), str(new)])
        assert code == 1
        assert "<STRONG><I>" in capsys.readouterr().out

    def test_mode_selection(self, files, capsys):
        tmp_path, old, new = files
        code = main(["htmldiff", "-q", "--mode", "only-differences",
                     str(old), str(new)])
        assert code == 1
        out = capsys.readouterr().out
        assert "differences only" in out

    def test_threshold_flags(self, files, capsys):
        tmp_path, old, new = files
        code = main([
            "htmldiff", "-q", "--match-threshold", "0.9",
            "--density-threshold", "1.0", str(old), str(new),
        ])
        assert code == 1

    def test_missing_file(self, files, capsys):
        tmp_path, old, new = files
        code = main(["htmldiff", str(tmp_path / "nope.html"), str(new)])
        assert code == 2
        assert "aide:" in capsys.readouterr().err

    def test_bad_mode_usage_error(self, files, capsys):
        tmp_path, old, new = files
        assert main(["htmldiff", "--mode", "sideways", str(old), str(new)]) == 2


class TestTokenizeCommand:
    def test_token_stream(self, tmp_path, capsys):
        page = tmp_path / "p.html"
        page.write_text("<P>One sentence here. Another one.</P>")
        assert main(["tokenize", str(page)]) == 0
        out = capsys.readouterr().out
        assert out.count("SENTENCE") == 2
        assert out.count("BREAK") == 2  # <P> and </P>

    def test_width_truncation(self, tmp_path, capsys):
        page = tmp_path / "p.html"
        page.write_text("<P>" + "word " * 50 + "</P>")
        main(["tokenize", "--width", "20", str(page)])
        for line in capsys.readouterr().out.splitlines():
            assert len(line) <= len("SENTENCE ") + 20


class TestThresholdsCommand:
    def test_classify_urls(self, tmp_path, capsys):
        config = tmp_path / "thresholds.conf"
        config.write_text(
            "Default 2d\nhttp://www\\.yahoo\\.com/.* 7d\n"
            "http://comic\\.com/.* never\n"
        )
        code = main([
            "thresholds", str(config),
            "http://www.yahoo.com/x", "http://comic.com/daily",
            "http://other.org/",
        ])
        assert code == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("7d")
        assert lines[1].startswith("never")
        assert lines[2].startswith("2d")
        assert "(default)" in lines[2]

    def test_bad_config(self, tmp_path, capsys):
        config = tmp_path / "bad.conf"
        config.write_text("just-one-field\n")
        assert main(["thresholds", str(config), "http://x/"]) == 2


class TestDemoCommand:
    def test_demo_runs_and_shows_a_diff(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "w3newer reports" in out
        assert "<STRIKE>" in out
        assert "<STRONG><I>" in out
