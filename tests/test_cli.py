"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.web.sites import usenix_home_v1, usenix_home_v2


@pytest.fixture
def files(tmp_path):
    old = tmp_path / "old.html"
    new = tmp_path / "new.html"
    old.write_text(usenix_home_v1())
    new.write_text(usenix_home_v2())
    return tmp_path, old, new


class TestHtmldiffCommand:
    def test_diff_to_file(self, files, capsys):
        tmp_path, old, new = files
        out = tmp_path / "merged.html"
        code = main(["htmldiff", str(old), str(new), "-o", str(out)])
        assert code == 1  # differences found
        merged = out.read_text()
        assert "<STRIKE>" in merged
        assert "AT&amp;T Internet Difference Engine" in merged
        assert "differences" in capsys.readouterr().err

    def test_identical_files_exit_zero(self, files, capsys):
        tmp_path, old, new = files
        code = main(["htmldiff", str(old), str(old), "-q"])
        assert code == 0
        assert capsys.readouterr().err == ""

    def test_stdout_default(self, files, capsys):
        tmp_path, old, new = files
        code = main(["htmldiff", "-q", str(old), str(new)])
        assert code == 1
        assert "<STRONG><I>" in capsys.readouterr().out

    def test_mode_selection(self, files, capsys):
        tmp_path, old, new = files
        code = main(["htmldiff", "-q", "--mode", "only-differences",
                     str(old), str(new)])
        assert code == 1
        out = capsys.readouterr().out
        assert "differences only" in out

    def test_threshold_flags(self, files, capsys):
        tmp_path, old, new = files
        code = main([
            "htmldiff", "-q", "--match-threshold", "0.9",
            "--density-threshold", "1.0", str(old), str(new),
        ])
        assert code == 1

    def test_missing_file(self, files, capsys):
        tmp_path, old, new = files
        code = main(["htmldiff", str(tmp_path / "nope.html"), str(new)])
        assert code == 2
        assert "aide:" in capsys.readouterr().err

    def test_bad_mode_usage_error(self, files, capsys):
        tmp_path, old, new = files
        assert main(["htmldiff", "--mode", "sideways", str(old), str(new)]) == 2


class TestTokenizeCommand:
    def test_token_stream(self, tmp_path, capsys):
        page = tmp_path / "p.html"
        page.write_text("<P>One sentence here. Another one.</P>")
        assert main(["tokenize", str(page)]) == 0
        out = capsys.readouterr().out
        assert out.count("SENTENCE") == 2
        assert out.count("BREAK") == 2  # <P> and </P>

    def test_width_truncation(self, tmp_path, capsys):
        page = tmp_path / "p.html"
        page.write_text("<P>" + "word " * 50 + "</P>")
        main(["tokenize", "--width", "20", str(page)])
        for line in capsys.readouterr().out.splitlines():
            assert len(line) <= len("SENTENCE ") + 20


class TestThresholdsCommand:
    def test_classify_urls(self, tmp_path, capsys):
        config = tmp_path / "thresholds.conf"
        config.write_text(
            "Default 2d\nhttp://www\\.yahoo\\.com/.* 7d\n"
            "http://comic\\.com/.* never\n"
        )
        code = main([
            "thresholds", str(config),
            "http://www.yahoo.com/x", "http://comic.com/daily",
            "http://other.org/",
        ])
        assert code == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("7d")
        assert lines[1].startswith("never")
        assert lines[2].startswith("2d")
        assert "(default)" in lines[2]

    def test_bad_config(self, tmp_path, capsys):
        config = tmp_path / "bad.conf"
        config.write_text("just-one-field\n")
        assert main(["thresholds", str(config), "http://x/"]) == 2


class TestDemoCommand:
    def test_demo_runs_and_shows_a_diff(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "w3newer reports" in out
        assert "<STRIKE>" in out
        assert "<STRONG><I>" in out


class TestServeCommand:
    def test_serve_reports_and_saves_a_sharded_repository(
        self, tmp_path, capsys
    ):
        repo = tmp_path / "repo"
        code = main([
            "serve", "--shards", "2", "--users", "50", "--pages", "8",
            "--rounds", "2", "--save", str(repo),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["load"]["completed"] == 100
        assert payload["server"]["shards"] == 2
        assert (repo / "SHARDS").read_text().strip() == "2"
        # The saved repository passes the sharded fsck.
        assert main(["fsck", str(repo)]) == 0
        assert "2/2 shard(s) clean" in capsys.readouterr().out

    def test_serve_is_deterministic(self, capsys):
        args = ["serve", "--shards", "2", "--users", "40", "--pages", "8",
                "--rounds", "2", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


    def test_serve_with_replication_survives_staggered_kills(
        self, tmp_path, capsys
    ):
        repo = tmp_path / "repo"
        code = main([
            "serve", "--shards", "2", "--replication", "2", "--users", "50",
            "--pages", "8", "--rounds", "2", "--requests-per-user", "4",
            "--kill-each-once", "7800:150:300", "--scrub-interval", "200",
            "--mutation-rate", "0.05", "--save", str(repo),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # 100% eventual completion despite every shard dying once.
        assert payload["load"]["completed"] == 200
        replication = payload["server"]["replication"]
        assert replication["factor"] == 2
        assert replication["crashes"] == 2
        assert replication["recoveries"] == 2
        assert replication["live_replicas"] == 2
        # The manifest records the replication factor...
        assert (repo / "SHARDS").read_text() == "2\nreplication 2\n"
        # ...and the replicated repository still fscks clean.
        assert main(["fsck", str(repo)]) == 0

    def test_serve_rejects_a_bad_kill_spec(self, capsys):
        assert main(["serve", "--kill-shard", "nonsense"]) == 2
        assert "bad --kill-shard" in capsys.readouterr().err
        assert main(["serve", "--kill-each-once", "1:2:3:4"]) == 2
        assert "bad --kill-each-once" in capsys.readouterr().err

    def test_fsck_names_the_broken_shard(self, tmp_path, capsys):
        repo = tmp_path / "repo"
        assert main([
            "serve", "--shards", "2", "--users", "10", "--pages", "8",
            "--rounds", "1", "--save", str(repo),
        ]) == 0
        capsys.readouterr()
        doomed = next((repo / "shard-01").rglob("*,v"))
        doomed.unlink()
        assert main(["fsck", str(repo)]) == 1
        out = capsys.readouterr().out
        assert "INCONSISTENT" in out
        assert "[shard-01]" in out
        # The aggregated rollup names the failed shard on its own line.
        assert "failed shards: shard-01" in out

    def test_fsck_json_carries_the_machine_readable_summary(
        self, tmp_path, capsys
    ):
        repo = tmp_path / "repo"
        assert main([
            "serve", "--shards", "2", "--users", "10", "--pages", "8",
            "--rounds", "1", "--save", str(repo),
        ]) == 0
        capsys.readouterr()
        doomed = next((repo / "shard-00").rglob("*,v"))
        doomed.unlink()
        assert main(["fsck", str(repo), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        summary = payload["summary"]
        assert summary["ok"] is False
        assert summary["failed_shards"] == ["shard-00"]
        assert summary["clean_shards"] == 1
        assert summary["problem_count"] >= 1


class TestNewerCommand:
    ARGS = ["newer", "--urls", "300", "--hosts", "15", "--days", "2",
            "--budget", "80", "--workers", "4"]

    def test_newer_reports_the_crawl(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "adaptive"
        assert payload["world"]["urls"] == 300
        assert len(payload["days"]) == 2
        day = payload["days"][0]
        assert day["deferred"] > 0  # the budget bit
        assert day["makespan"] > 0
        assert payload["politeness"]["requests"] > 0
        assert payload["crawl"]["attached"] is True

    def test_newer_is_deterministic(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == first

    def test_newer_explain_includes_the_rationale(self, capsys):
        url = "http://crawl0.example.com/p0.html"
        assert main(self.ARGS + ["--explain", url]) == 0
        payload = json.loads(capsys.readouterr().out)
        explain = payload["explain"]
        assert explain["url"] == url
        assert "p_changed_now" in explain
        assert "last_decision" in explain

    def test_newer_static_policy(self, capsys):
        assert main(self.ARGS + ["--policy", "static"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "static"


class TestQuarantineCommand:
    @pytest.fixture
    def journal_path(self, tmp_path):
        from repro.core.quarantine import QuarantineJournal

        path = str(tmp_path / "quarantine.jsonl")
        journal = QuarantineJournal(path)
        journal.record("http://evil.example/deep.html", "nesting-depth",
                       "nesting deeper than 64 elements",
                       "<DIV>" * 100 + "x", at=10)
        journal.record("http://evil.example/nul.html", "binary-content",
                       "NUL byte in body", "a\x00b", at=11)
        return path

    def test_list(self, journal_path, capsys):
        assert main(["quarantine", "list", journal_path]) == 0
        out = capsys.readouterr().out
        assert "http://evil.example/deep.html" in out
        assert "nesting-depth" in out
        assert "2 entries" in out

    def test_list_empty(self, tmp_path, capsys):
        path = str(tmp_path / "none.jsonl")
        assert main(["quarantine", "list", path]) == 0
        assert "empty" in capsys.readouterr().out

    def test_retry_releases_and_reports_failures(self, journal_path, capsys):
        # Default limits release the deep page; the NUL page stays.
        code = main(["quarantine", "retry", journal_path])
        out = capsys.readouterr().out
        assert code == 1  # something is still bad
        assert "released  http://evil.example/deep.html" in out
        assert "still bad http://evil.example/nul.html" in out

    def test_retry_with_loosened_limits(self, journal_path, capsys):
        main(["quarantine", "retry", journal_path])
        code = main(["quarantine", "retry", journal_path,
                     "--url", "http://evil.example/nul.html"])
        assert code == 1  # binary stays binary no matter the caps

    def test_purge(self, journal_path, capsys):
        assert main(["quarantine", "purge", journal_path,
                     "--url", "http://evil.example/nul.html"]) == 0
        assert "purged 1" in capsys.readouterr().out
        assert main(["quarantine", "purge", journal_path]) == 0
        assert "purged 1" in capsys.readouterr().out


class TestMementoCommands:
    @pytest.fixture
    def tracked(self, tmp_path):
        from repro.rcs.archive import RcsArchive
        from repro.rcs.rcsfile import serialize_rcsfile

        page = tmp_path / "page.html"
        page.write_text("<HTML><BODY>v2</BODY></HTML>")
        archive = RcsArchive(name="page.html")
        archive.checkin("<HTML><BODY>v1</BODY></HTML>", date=100,
                        author="fred")
        archive.checkin("<HTML><BODY>v2</BODY></HTML>", date=200,
                        author="fred")
        (tmp_path / "page.html,v").write_text(serialize_rcsfile(archive))
        return str(page)

    def test_timemap_link_format(self, tracked, capsys):
        assert main(["timemap", tracked,
                     "--url", "http://site.com/page.html"]) == 0
        out = capsys.readouterr().out
        assert 'rel="original"' in out
        assert 'rel="first memento"' in out
        assert 'rel="last memento"' in out
        assert "rev=1.1" in out and "rev=1.2" in out

    def test_timemap_json(self, tracked, capsys):
        assert main(["timemap", tracked, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [m["revision"] for m in payload["mementos"]] == ["1.1", "1.2"]
        assert payload["mementos"][0]["datetime"] == 100

    def test_timemap_without_archive(self, tmp_path, capsys):
        lone = tmp_path / "untracked.html"
        lone.write_text("x")
        assert main(["timemap", str(lone)]) == 2

    def test_memento_negotiates_past(self, tracked, capsys):
        assert main(["memento", tracked, "--at", "150"]) == 0
        captured = capsys.readouterr()
        assert "v1" in captured.out
        assert "revision 1.1" in captured.err

    def test_memento_json_metadata(self, tracked, capsys):
        assert main(["memento", tracked, "--at", "150", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["revision"] == "1.1"
        assert payload["datetime"] == 100
        assert payload["policy"] == "past"
        assert payload["target"] == 150

    def test_memento_accepts_http_dates(self, tracked, capsys):
        assert main(["memento", tracked, "--json",
                     "--at", "Fri, 01 Sep 1995 00:02:30 GMT"]) == 0
        assert json.loads(capsys.readouterr().out)["revision"] == "1.1"

    def test_memento_policy_miss_exits_one(self, tracked, capsys):
        assert main(["memento", tracked, "--at", "50"]) == 1
        assert main(["memento", tracked, "--at", "150",
                     "--policy", "exact"]) == 1
        assert main(["memento", tracked, "--at", "50",
                     "--policy", "nearest"]) == 0

    def test_memento_unparseable_datetime(self, tracked, capsys):
        assert main(["memento", tracked, "--at", "whenever"]) == 2
        assert "unparseable" in capsys.readouterr().err

    def test_timetravel_never_serves_newer_than_pin(self, capsys):
        assert main(["timetravel", "--pages", "6", "--rounds", "2",
                     "--follows", "6", "--seed", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pages_visited"] >= 1
        assert payload["served"] >= 1
        assert payload["newest_served"] <= payload["pin"]
        for page in payload["trail"]:
            if page["served"]:
                assert page["memento_datetime"] <= payload["pin"]

    def test_timetravel_is_deterministic(self, capsys):
        args = ["timetravel", "--pages", "6", "--rounds", "2",
                "--follows", "5", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_timetravel_explicit_pin(self, capsys):
        assert main(["timetravel", "--pages", "4", "--rounds", "2",
                     "--follows", "3", "--at", "1"]) in (0, 1)
        payload = json.loads(capsys.readouterr().out)
        assert payload["pin"] == 1
