"""Tests for the comparison systems (Section 2)."""

import pytest

from repro.baselines.linediff import line_diff_html, render_as_page
from repro.baselines.smartmarks import SmartMarks, extract_bulletin
from repro.baselines.urlminder import UrlMinder
from repro.baselines.w3new import W3New
from repro.core.w3newer.errors import UrlState
from repro.core.w3newer.history import BrowserHistory
from repro.core.w3newer.hotlist import Hotlist
from repro.core.htmldiff.api import html_diff
from repro.simclock import DAY, WEEK, CronScheduler, SimClock
from repro.web.cgi import CounterScript
from repro.web.client import UserAgent
from repro.web.network import Network


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    for i in range(5):
        server.set_page(f"/p{i}.html", f"<P>page {i} body.</P>")
    agent = UserAgent(network, clock)
    return clock, network, server, agent


class TestW3New:
    def test_polls_every_url_every_run(self, world):
        clock, network, server, agent = world
        hotlist = Hotlist.from_lines(
            "\n".join(f"http://site.com/p{i}.html" for i in range(5))
        )
        baseline = W3New(clock, agent, hotlist)
        baseline.run()
        baseline.run()
        baseline.run()
        # 5 URLs x 3 runs — no caching, no thresholds.
        assert server.request_count == 15

    def test_detects_change_via_head(self, world):
        clock, network, server, agent = world
        history = BrowserHistory()
        history.visit("http://site.com/p0.html", 0)
        hotlist = Hotlist.from_lines("http://site.com/p0.html")
        baseline = W3New(clock, agent, hotlist, history=history)
        clock.advance(DAY)
        server.set_page("/p0.html", "<P>new body.</P>")
        outcomes = baseline.run()
        assert outcomes[0].state is UrlState.CHANGED

    def test_checksum_fallback_for_cgi(self, world):
        clock, network, server, agent = world
        server.register_cgi("/cgi-bin/counter", CounterScript())
        hotlist = Hotlist.from_lines("http://site.com/cgi-bin/counter")
        baseline = W3New(clock, agent, hotlist)
        baseline.run()
        history = baseline.history
        history.visit("http://site.com/cgi-bin/counter", clock.now)
        clock.advance(DAY)
        outcomes = baseline.run()
        assert outcomes[0].state is UrlState.CHANGED  # counter noise

    def test_errors_reported(self, world):
        clock, network, server, agent = world
        baseline = W3New(clock, agent, Hotlist.from_lines("http://gone.example/"))
        outcomes = baseline.run()
        assert outcomes[0].state is UrlState.ERROR


class TestUrlMinder:
    def test_polls_once_per_url(self, world):
        clock, network, server, agent = world
        minder = UrlMinder(clock, agent)
        for i in range(20):
            minder.register(f"user{i}@example.com", "http://site.com/p0.html")
        network.reset_log()
        minder.poll()
        assert len([r for r in network.log if r.path == "/p0.html"]) == 1

    def test_emails_all_subscribers_on_change(self, world):
        clock, network, server, agent = world
        minder = UrlMinder(clock, agent)
        minder.register("a@x.com", "http://site.com/p0.html")
        minder.register("b@x.com", "http://site.com/p0.html")
        minder.poll()  # baseline
        assert minder.outbox == []
        clock.advance(WEEK)
        server.set_page("/p0.html", "<P>changed.</P>")
        sent = minder.poll()
        assert sent == 2
        recipients = sorted(email.to for email in minder.outbox)
        assert recipients == ["a@x.com", "b@x.com"]

    def test_email_says_nothing_about_what_changed(self, world):
        # The deficiency motivating HtmlDiff, kept faithful.
        clock, network, server, agent = world
        minder = UrlMinder(clock, agent)
        minder.register("a@x.com", "http://site.com/p0.html")
        minder.poll()
        server.set_page("/p0.html", "<P>utterly different.</P>")
        clock.advance(WEEK)
        minder.poll()
        body = minder.outbox[0].body
        assert "detected a change" in body
        assert "utterly different" not in body

    def test_weekly_schedule(self, world):
        clock, network, server, agent = world
        minder = UrlMinder(clock, agent)
        minder.register("a@x.com", "http://site.com/p0.html")
        cron = CronScheduler(clock)
        minder.schedule(cron)
        cron.run_until(3 * WEEK)
        assert minder.polls == 3


class TestSmartMarks:
    def test_bulletin_extracted(self):
        html = '<HEAD><META NAME="bulletin" CONTENT="10 new links added"></HEAD>'
        assert extract_bulletin(html) == "10 new links added"

    def test_no_bulletin(self):
        assert extract_bulletin("<P>plain page</P>") is None

    def test_poll_flags_changes_with_bulletin(self, world):
        clock, network, server, agent = world
        history = BrowserHistory()
        history.visit("http://site.com/p0.html", 0)
        hotlist = Hotlist.from_lines("http://site.com/p0.html Page zero")
        marks = SmartMarks(clock, agent, hotlist, history=history)
        clock.advance(DAY)
        server.set_page(
            "/p0.html",
            '<HEAD><META NAME="bulletin" CONTENT="Section 3 rewritten">'
            "</HEAD><BODY><P>v2</P></BODY>",
        )
        rows = marks.poll()
        assert rows[0].changed
        assert rows[0].bulletin == "Section 3 rewritten"
        html = marks.render(rows)
        assert "[changed]" in html
        assert "Section 3 rewritten" in html

    def test_bulletin_does_not_say_where(self, world):
        # The opacity problem: the bulletin is free text, not a pointer.
        clock, network, server, agent = world
        history = BrowserHistory()
        history.visit("http://site.com/p0.html", 0)
        marks = SmartMarks(clock, agent,
                           Hotlist.from_lines("http://site.com/p0.html"),
                           history=history)
        clock.advance(DAY)
        server.set_page(
            "/p0.html",
            '<HEAD><META NAME="bulletin" CONTENT="10 new links added"></HEAD>'
            "<BODY><UL><LI>which ones though?</UL></BODY>",
        )
        rows = marks.poll()
        html = marks.render(rows)
        assert "10 new links added" in html
        assert "which ones though" not in html  # no pointer to the spot


class TestLineDiffBaseline:
    def test_no_change(self):
        report = line_diff_html("<P>same</P>", "<P>same</P>")
        assert not report.flags_change

    def test_real_change_detected(self):
        report = line_diff_html("<P>old</P>", "<P>new</P>")
        assert report.flags_change

    def test_false_positive_on_reflow(self):
        # Reflowed whitespace: content identical — line diff flags it,
        # HtmlDiff does not.  The S3 discriminator.
        old = "<P>alpha beta\ngamma delta.</P>"
        new = "<P>alpha beta gamma\ndelta.</P>"
        line_report = line_diff_html(old, new)
        html_report = html_diff(old, new)
        assert line_report.flags_change
        assert html_report.identical

    def test_restructure_misreported(self):
        # Paragraph -> list: line diff sees a rewrite of the region;
        # HtmlDiff sees identical sentences with formatting changes.
        old = "<P>One two three. Four five six.</P>"
        new = "<UL>\n<LI>One two three.\n<LI>Four five six.\n</UL>"
        line_report = line_diff_html(old, new)
        assert line_report.changed_fraction == 1.0
        html_report = html_diff(old, new)
        assert "<STRIKE>" not in html_report.html  # no content deleted

    def test_rendered_page_escapes_markup(self):
        report = line_diff_html("<P>a</P>", "<P>b</P>")
        page = render_as_page(report)
        assert "&lt;P&gt;" in page
