"""Tests for HTTP-date parsing (the format_timestamp inverse)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simclock import DAY, HOUR, MINUTE, format_timestamp, parse_timestamp
from repro.web.http import Headers, Response


class TestParseTimestamp:
    def test_epoch(self):
        assert parse_timestamp("Fri, 01 Sep 1995 00:00:00 GMT") == 0

    def test_time_of_day(self):
        ts = parse_timestamp("Fri, 01 Sep 1995 12:34:56 GMT")
        assert ts == 12 * HOUR + 34 * MINUTE + 56

    def test_across_year_boundary(self):
        assert parse_timestamp("Mon, 01 Jan 1996 00:00:00 GMT") == 122 * DAY

    def test_leap_day(self):
        assert parse_timestamp("Thu, 29 Feb 1996 00:00:00 GMT") == 181 * DAY

    def test_weekday_name_is_ignored(self):
        # Some servers got the weekday wrong; the date fields govern.
        assert parse_timestamp("Mon, 01 Sep 1995 00:00:00 GMT") == 0

    def test_garbage_returns_none(self):
        for text in ("", "yesterday", "01/09/1995", "Fri, 99 Xxx 1995 "
                     "00:00:00 GMT", None):
            assert parse_timestamp(text) is None

    def test_pre_epoch_returns_none(self):
        assert parse_timestamp("Thu, 31 Aug 1995 23:59:59 GMT") is None

    def test_invalid_fields_rejected(self):
        assert parse_timestamp("Fri, 01 Sep 1995 25:00:00 GMT") is None
        assert parse_timestamp("Fri, 32 Sep 1995 10:00:00 GMT") is None

    @given(st.integers(0, 5 * 365 * DAY))
    @settings(max_examples=300)
    def test_roundtrip(self, ts):
        assert parse_timestamp(format_timestamp(ts)) == ts


class TestResponseFallback:
    def test_sim_header_preferred(self):
        headers = Headers({
            "X-Sim-Last-Modified": "123",
            "Last-Modified": "Fri, 01 Sep 1995 00:01:00 GMT",
        })
        assert Response(200, headers=headers).last_modified == 123

    def test_rfc1123_fallback(self):
        headers = Headers({"Last-Modified": "Sat, 02 Sep 1995 00:00:00 GMT"})
        assert Response(200, headers=headers).last_modified == DAY

    def test_unparseable_date_is_none(self):
        headers = Headers({"Last-Modified": "around lunchtime"})
        assert Response(200, headers=headers).last_modified is None

    def test_absent_is_none(self):
        assert Response(200).last_modified is None
