"""Tests for RetryPolicy, CircuitBreaker, and ResilientAgent."""

import pytest

from repro.simclock import SimClock
from repro.web.client import RobotsUnavailable, UserAgent
from repro.web.http import ConnectionRefused, DnsError, TimeoutError_
from repro.web.network import FaultPlan, Network
from repro.web.resilience import (
    CircuitBreaker,
    CircuitOpen,
    ResilientAgent,
    RetriesExhausted,
    RetryPolicy,
)


def build_world(plan=None, **agent_kwargs):
    clock = SimClock()
    network = Network(clock, fault_plan=plan)
    server = network.create_server("site.com")
    server.set_page("/index.html", "<P>hello</P>")
    agent = ResilientAgent(UserAgent(network, clock), **agent_kwargs)
    return clock, network, server, agent


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=2, multiplier=2, max_delay=10,
                             jitter=0)
        delays = [policy.backoff("site.com", n) for n in range(1, 6)]
        assert delays == [2, 4, 8, 10, 10]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=2, jitter=3, seed=5)
        first = [policy.backoff("site.com", n) for n in range(1, 8)]
        again = [policy.backoff("site.com", n) for n in range(1, 8)]
        assert first == again
        base = RetryPolicy(base_delay=2, jitter=0)
        for n, delay in enumerate(first, start=1):
            assert 0 <= delay - base.backoff("site.com", n) <= 3

    def test_jitter_varies_by_host(self):
        policy = RetryPolicy(base_delay=0, multiplier=1, jitter=100)
        hosts = [f"h{i}.com" for i in range(12)]
        assert len({policy.backoff(h, 1) for h in hosts}) > 1

    def test_retryable_classes(self):
        policy = RetryPolicy()
        assert policy.retryable(TimeoutError_("t"))
        assert policy.retryable(ConnectionRefused("r"))
        assert not policy.retryable(DnsError("d"))
        assert RetryPolicy(retry_dns=True).retryable(DnsError("d"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_half_open_probe_success_closes(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, reset_timeout=60)
        breaker.record_failure()
        clock.advance(60)
        assert breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=1, reset_timeout=60)
        breaker.record_failure()
        clock.advance(60)
        assert breaker.allow()
        assert breaker.record_failure() is True
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opens == 2

    def test_success_resets_failure_count(self):
        clock = SimClock()
        breaker = CircuitBreaker(clock, failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False


class TestResilientAgent:
    def test_transparent_on_healthy_network(self):
        clock, network, server, agent = build_world()
        result = agent.get("http://site.com/index.html")
        assert result.response.ok
        assert len(network.log) == 1
        stats = agent.stats()
        assert stats["retries"] == 0
        assert stats["breaker_opens"] == 0

    def test_retries_through_flaky_window_and_waits(self):
        # Host deterministically down until t=5; first retry's backoff
        # pushes the clock past recovery, so attempt 2 succeeds.
        plan = FaultPlan()
        plan.flaky_until("site.com", recover_at=5, probability=1.0)
        clock, network, server, agent = build_world(
            plan, policy=RetryPolicy(base_delay=10, jitter=0))
        result = agent.get("http://site.com/index.html")
        assert result.response.ok
        assert agent.retries == 1
        assert clock.now >= 5
        assert len(network.log) == 2

    def test_exhaustion_raises_with_cause(self):
        plan = FaultPlan()
        plan.outage("site.com", kind="refused")
        clock, network, server, agent = build_world(
            plan, policy=RetryPolicy(max_attempts=3, jitter=0),
            breaker_threshold=10)
        with pytest.raises(RetriesExhausted) as info:
            agent.get("http://site.com/index.html")
        assert info.value.attempts == 3
        assert isinstance(info.value.cause, ConnectionRefused)
        assert len(network.log) == 3

    def test_dns_error_not_retried_by_default(self):
        clock, network, server, agent = build_world()
        with pytest.raises(DnsError):
            agent.get("http://nosuch.com/page.html")
        assert agent.retries == 0
        assert len(network.log) == 1

    def test_breaker_short_circuits_without_wire_traffic(self):
        plan = FaultPlan()
        plan.outage("site.com", kind="refused")
        clock, network, server, agent = build_world(
            plan, policy=RetryPolicy(max_attempts=1),
            breaker_threshold=2, breaker_reset=300)
        for _ in range(2):
            with pytest.raises(RetriesExhausted):
                agent.get("http://site.com/index.html")
        wire_before = len(network.log)
        with pytest.raises(CircuitOpen):
            agent.get("http://site.com/index.html")
        assert len(network.log) == wire_before
        assert agent.short_circuits == 1
        assert agent.open_hosts() == ["site.com"]

    def test_breaker_probe_recovers(self):
        plan = FaultPlan()
        plan.flaky_until("site.com", recover_at=100, probability=1.0)
        clock, network, server, agent = build_world(
            plan, policy=RetryPolicy(max_attempts=1),
            breaker_threshold=1, breaker_reset=200)
        with pytest.raises(RetriesExhausted):
            agent.get("http://site.com/index.html")
        clock.advance(200)  # past both the fault window and the reset
        assert agent.get("http://site.com/index.html").response.ok
        assert agent.breaker_for("site.com").state == CircuitBreaker.CLOSED
        assert agent.open_hosts() == []

    def test_503_retried_honoring_retry_after(self):
        plan = FaultPlan()
        plan.overloaded("site.com", retry_after=30, end=25)
        clock, network, server, agent = build_world(
            plan, policy=RetryPolicy(base_delay=1, jitter=0))
        result = agent.get("http://site.com/index.html")
        assert result.response.ok
        assert agent.retries == 1
        assert clock.now >= 30  # waited the advertised Retry-After

    def test_503_returned_when_attempts_run_out(self):
        plan = FaultPlan()
        plan.overloaded("site.com")
        clock, network, server, agent = build_world(
            plan, policy=RetryPolicy(max_attempts=2, jitter=0),
            breaker_threshold=10)
        result = agent.get("http://site.com/index.html")
        assert result.response.status == 503

    def test_budget_bounds_amplification(self):
        plan = FaultPlan()
        plan.outage("site.com", kind="refused")
        clock, network, server, agent = build_world(
            plan, policy=RetryPolicy(max_attempts=3, jitter=0, budget=3),
            breaker_threshold=100)
        with pytest.raises(RetriesExhausted):
            agent.get("http://site.com/index.html")  # 3 attempts, 2 retries
        with pytest.raises(RetriesExhausted):
            agent.get("http://site.com/index.html")  # budget allows 1 more
        assert agent.stats()["budget_remaining"] == 0
        wire_before = len(network.log)
        with pytest.raises(RetriesExhausted):
            agent.get("http://site.com/index.html")
        assert len(network.log) == wire_before + 1  # no retries left

    def test_fetch_robots_rides_the_retry_loop(self):
        plan = FaultPlan()
        plan.flaky_until("site.com", recover_at=5, probability=1.0)
        clock, network, server, agent = build_world(
            plan, policy=RetryPolicy(base_delay=10, jitter=0))
        robots = agent.fetch_robots("site.com")
        assert robots.allows("w3newer", "/index.html")
        assert agent.retries == 1

    def test_fetch_robots_surfaces_server_errors(self):
        from repro.web.http import make_response

        clock, network, server, agent = build_world()
        server.register_cgi(
            "/robots.txt", lambda request, now: make_response(500, "<P>boom</P>")
        )
        with pytest.raises(RobotsUnavailable):
            agent.fetch_robots("site.com")

    def test_stats_shape(self):
        clock, network, server, agent = build_world()
        agent.record_fallback()
        stats = agent.stats()
        assert set(stats) == {"retries", "breaker_opens", "short_circuits",
                              "fallbacks", "budget_remaining", "open_hosts"}
        assert stats["fallbacks"] == 1
