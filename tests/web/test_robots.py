"""Tests for robots.txt parsing and the exclusion rules."""

from repro.web.robots import parse_robots_txt


class TestParsing:
    def test_simple(self):
        robots = parse_robots_txt("User-agent: *\nDisallow: /tmp/\n")
        assert not robots.allows("anybot", "/tmp/x")
        assert robots.allows("anybot", "/index.html")

    def test_empty_file_allows_everything(self):
        robots = parse_robots_txt("")
        assert robots.is_empty
        assert robots.allows("w3newer", "/")

    def test_comments_stripped(self):
        robots = parse_robots_txt(
            "# keep robots out of cgi\nUser-agent: *\nDisallow: /cgi-bin/ # all\n"
        )
        assert not robots.allows("bot", "/cgi-bin/counter")

    def test_empty_disallow_means_allow_all(self):
        robots = parse_robots_txt("User-agent: *\nDisallow:\n")
        assert robots.allows("bot", "/anything")

    def test_specific_agent_beats_wildcard(self):
        text = (
            "User-agent: *\nDisallow: /\n\n"
            "User-agent: w3newer\nDisallow: /private/\n"
        )
        robots = parse_robots_txt(text)
        assert robots.allows("w3newer/1.0", "/public/")
        assert not robots.allows("w3newer/1.0", "/private/x")
        assert not robots.allows("webcrawler", "/public/")

    def test_multiple_agents_share_record(self):
        text = "User-agent: a\nUser-agent: b\nDisallow: /x/\n"
        robots = parse_robots_txt(text)
        assert not robots.allows("a", "/x/1")
        assert not robots.allows("b", "/x/1")
        assert robots.allows("c", "/x/1")

    def test_disallow_everything(self):
        robots = parse_robots_txt("User-agent: *\nDisallow: /\n")
        assert not robots.allows("bot", "/")
        assert not robots.allows("bot", "/any/path")

    def test_prefix_matching(self):
        robots = parse_robots_txt("User-agent: *\nDisallow: /help\n")
        assert not robots.allows("bot", "/help.html")
        assert not robots.allows("bot", "/help/index.html")
        assert not robots.allows("bot", "/helpers")  # prefix, not path-segment
        assert robots.allows("bot", "/about/help")  # only leading prefixes count

    def test_garbage_lines_ignored(self):
        robots = parse_robots_txt("this is not a directive\nUser-agent: *\nDisallow: /a/\n")
        assert not robots.allows("bot", "/a/x")

    def test_disallow_before_any_agent_ignored(self):
        robots = parse_robots_txt("Disallow: /x/\n")
        assert robots.allows("bot", "/x/1")

    def test_blank_line_separates_records(self):
        text = (
            "User-agent: alpha\nDisallow: /a/\n\n"
            "User-agent: *\nDisallow: /b/\n"
        )
        robots = parse_robots_txt(text)
        assert not robots.allows("alpha", "/a/x")
        assert robots.allows("alpha", "/b/x")  # alpha's own record wins
        assert not robots.allows("other", "/b/x")
