"""Tests for virtual servers, the network, and fault injection."""

import pytest

from repro.simclock import DAY, HOUR, SimClock
from repro.web.cgi import ClockScript, CounterScript
from repro.web.http import (
    ConnectionRefused,
    DnsError,
    Headers,
    NetworkUnreachable,
    Request,
    TimeoutError_,
)
from repro.web.network import Network
from repro.web.url import parse_url


@pytest.fixture
def net():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("www.example.com")
    server.set_page("/", "<P>home</P>")
    return clock, network, server


def _req(method, url, **kw):
    return Request(method=method, url=parse_url(url), **kw)


class TestStaticServing:
    def test_get(self, net):
        clock, network, server = net
        resp = network.request(_req("GET", "http://www.example.com/"))
        assert resp.status == 200
        assert resp.body == "<P>home</P>"

    def test_head_has_no_body_but_length(self, net):
        clock, network, server = net
        resp = network.request(_req("HEAD", "http://www.example.com/"))
        assert resp.status == 200
        assert resp.body == ""
        assert resp.headers.get("Content-Length") == str(len("<P>home</P>"))

    def test_404(self, net):
        clock, network, server = net
        resp = network.request(_req("GET", "http://www.example.com/missing"))
        assert resp.status == 404

    def test_last_modified_tracks_clock(self, net):
        clock, network, server = net
        clock.advance(DAY)
        server.set_page("/x", "body")
        resp = network.request(_req("GET", "http://www.example.com/x"))
        assert resp.last_modified == DAY

    def test_update_without_touch_keeps_stamp(self, net):
        clock, network, server = net
        server.set_page("/x", "v1")
        clock.advance(DAY)
        server.set_page("/x", "v2", touch=False)
        resp = network.request(_req("GET", "http://www.example.com/x"))
        assert resp.last_modified == 0
        assert resp.body == "v2"

    def test_page_without_last_modified(self, net):
        clock, network, server = net
        server.set_page("/nolm", "body", send_last_modified=False)
        resp = network.request(_req("GET", "http://www.example.com/nolm"))
        assert resp.last_modified is None

    def test_version_counter(self, net):
        clock, network, server = net
        server.set_page("/v", "one")
        server.set_page("/v", "two")
        assert server.get_page("/v").version == 2


class TestConditionalGet:
    def test_304_when_unmodified(self, net):
        clock, network, server = net
        clock.advance(HOUR)
        server.set_page("/x", "body")
        headers = Headers({"X-Sim-If-Modified-Since": str(2 * HOUR)})
        resp = network.request(
            _req("GET", "http://www.example.com/x", headers=headers)
        )
        assert resp.status == 304

    def test_200_when_modified(self, net):
        clock, network, server = net
        clock.advance(3 * HOUR)
        server.set_page("/x", "newer")
        headers = Headers({"X-Sim-If-Modified-Since": str(HOUR)})
        resp = network.request(
            _req("GET", "http://www.example.com/x", headers=headers)
        )
        assert resp.status == 200
        assert resp.body == "newer"


class TestRemovalAndRedirect:
    def test_gone(self, net):
        clock, network, server = net
        server.set_page("/old", "x")
        server.remove_page("/old", status=410)
        assert network.request(_req("GET", "http://www.example.com/old")).status == 410

    def test_redirect_emits_location(self, net):
        clock, network, server = net
        server.add_redirect("/moved", "http://www.example.com/new", permanent=True)
        resp = network.request(_req("GET", "http://www.example.com/moved"))
        assert resp.status == 301
        assert resp.headers.get("Location") == "http://www.example.com/new"

    def test_bad_removal_status_rejected(self, net):
        clock, network, server = net
        with pytest.raises(ValueError):
            server.remove_page("/x", status=500)


class TestCgi:
    def test_counter_increments(self, net):
        clock, network, server = net
        server.register_cgi("/cgi-bin/counter", CounterScript())
        first = network.request(_req("GET", "http://www.example.com/cgi-bin/counter"))
        second = network.request(_req("GET", "http://www.example.com/cgi-bin/counter"))
        assert "number <B>1</B>" in first.body
        assert "number <B>2</B>" in second.body

    def test_cgi_has_no_last_modified(self, net):
        clock, network, server = net
        server.register_cgi("/cgi-bin/counter", CounterScript())
        resp = network.request(_req("GET", "http://www.example.com/cgi-bin/counter"))
        assert resp.last_modified is None

    def test_clock_page_embeds_time(self, net):
        clock, network, server = net
        server.register_cgi("/cgi-bin/time", ClockScript())
        a = network.request(_req("GET", "http://www.example.com/cgi-bin/time")).body
        clock.advance(HOUR)
        b = network.request(_req("GET", "http://www.example.com/cgi-bin/time")).body
        assert a != b

    def test_post_to_static_is_405(self, net):
        clock, network, server = net
        resp = network.request(_req("POST", "http://www.example.com/", body="x=1"))
        assert resp.status == 405


class TestFaults:
    def test_unknown_host_is_dns_error(self, net):
        clock, network, server = net
        with pytest.raises(DnsError):
            network.request(_req("GET", "http://nowhere.invalid/"))

    def test_killed_dns(self, net):
        clock, network, server = net
        network.kill_dns("www.example.com")
        with pytest.raises(DnsError):
            network.request(_req("GET", "http://www.example.com/"))
        network.restore_dns("www.example.com")
        assert network.request(_req("GET", "http://www.example.com/")).status == 200

    def test_refused(self, net):
        clock, network, server = net
        network.refuse_connections("www.example.com")
        with pytest.raises(ConnectionRefused):
            network.request(_req("GET", "http://www.example.com/"))

    def test_unreachable_network(self, net):
        clock, network, server = net
        network.unreachable = True
        with pytest.raises(NetworkUnreachable):
            network.request(_req("GET", "http://www.example.com/"))

    def test_slow_server_times_out(self, net):
        clock, network, server = net
        server.response_delay = 120
        with pytest.raises(TimeoutError_):
            network.request(_req("GET", "http://www.example.com/", timeout=60))

    def test_fast_enough_server_answers(self, net):
        clock, network, server = net
        server.response_delay = 30
        resp = network.request(_req("GET", "http://www.example.com/", timeout=60))
        assert resp.status == 200


class TestAccounting:
    def test_request_log_and_counters(self, net):
        clock, network, server = net
        network.request(_req("GET", "http://www.example.com/"))
        network.request(_req("HEAD", "http://www.example.com/"))
        try:
            network.request(_req("GET", "http://dead.host/"))
        except DnsError:
            pass
        assert len(network.log) == 3
        assert network.log[-1].error == "dns"
        assert server.request_count == 2
        assert server.head_count == 1
        counts = network.request_counts_by_host()
        assert counts["www.example.com"] == 2

    def test_timeout_still_counts_against_server(self, net):
        clock, network, server = net
        server.response_delay = 999
        with pytest.raises(TimeoutError_):
            network.request(_req("GET", "http://www.example.com/", timeout=1))
        assert server.request_count == 1
