"""Tests for the proxy cache and user agent."""

import pytest

from repro.simclock import HOUR, SimClock
from repro.web.client import TooManyRedirects, UserAgent
from repro.web.http import TimeoutError_
from repro.web.network import Network
from repro.web.proxy import ProxyCache
from repro.web.url import parse_url


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("origin.com")
    server.set_page("/page", "version-1")
    proxy = ProxyCache(network, clock, ttl=HOUR)
    agent = UserAgent(network, clock, proxy=proxy)
    return clock, network, server, proxy, agent


class TestProxyCaching:
    def test_first_fetch_is_miss(self, world):
        clock, network, server, proxy, agent = world
        agent.get("http://origin.com/page")
        assert proxy.misses == 1
        assert server.get_count == 1

    def test_fresh_hit_avoids_origin(self, world):
        clock, network, server, proxy, agent = world
        agent.get("http://origin.com/page")
        clock.advance(HOUR // 2)
        result = agent.get("http://origin.com/page")
        assert result.response.body == "version-1"
        assert proxy.hits == 1
        assert server.get_count == 1  # origin untouched

    def test_stale_revalidation_304(self, world):
        clock, network, server, proxy, agent = world
        agent.get("http://origin.com/page")
        clock.advance(2 * HOUR)
        result = agent.get("http://origin.com/page")
        assert result.response.body == "version-1"
        assert proxy.revalidations == 1
        # Origin answered 304, not a full 200 re-send.
        assert network.log[-1].status == 304

    def test_stale_revalidation_fetches_changed_page(self, world):
        clock, network, server, proxy, agent = world
        agent.get("http://origin.com/page")
        clock.advance(2 * HOUR)
        server.set_page("/page", "version-2")
        result = agent.get("http://origin.com/page")
        assert result.response.body == "version-2"

    def test_cached_last_modified_inspection(self, world):
        clock, network, server, proxy, agent = world
        agent.get("http://origin.com/page")
        info = proxy.cached_last_modified(parse_url("http://origin.com/page"))
        assert info == (0, 0)  # modified at epoch, cached at epoch
        assert proxy.cached_last_modified(parse_url("http://origin.com/other")) is None

    def test_serves_fresh_copy_after_origin_update(self, world):
        # Classic HTTP/1.0 inconsistency: within TTL the proxy serves
        # the stale copy even though the origin changed.
        clock, network, server, proxy, agent = world
        agent.get("http://origin.com/page")
        server.set_page("/page", "version-2")
        result = agent.get("http://origin.com/page")
        assert result.response.body == "version-1"

    def test_overloaded_proxy_times_out(self, world):
        clock, network, server, proxy, agent = world
        proxy.overloaded = True
        with pytest.raises(TimeoutError_):
            agent.get("http://origin.com/page")

    def test_post_bypasses_cache(self, world):
        clock, network, server, proxy, agent = world
        from repro.web.cgi import FormEchoScript

        server.register_cgi("/cgi-bin/echo", FormEchoScript())
        agent.post("http://origin.com/cgi-bin/echo", body="a=1")
        agent.post("http://origin.com/cgi-bin/echo", body="a=1")
        assert server.post_count == 2

    def test_non_200_not_cached(self, world):
        clock, network, server, proxy, agent = world
        agent.get("http://origin.com/missing")
        agent.get("http://origin.com/missing")
        assert proxy.misses == 2


class TestUserAgent:
    def test_direct_without_proxy(self, world):
        clock, network, server, proxy, agent = world
        direct = UserAgent(network, clock)
        assert direct.get("http://origin.com/page").response.body == "version-1"

    def test_follows_redirect(self, world):
        clock, network, server, proxy, agent = world
        server.add_redirect("/old", "http://origin.com/page")
        result = agent.get("http://origin.com/old")
        assert result.response.body == "version-1"
        assert result.moved
        assert result.redirects == ["http://origin.com/old"]
        assert str(result.url) == "http://origin.com/page"

    def test_relative_redirect(self, world):
        clock, network, server, proxy, agent = world
        server.add_redirect("/old", "/page")
        result = agent.get("http://origin.com/old")
        assert result.response.body == "version-1"

    def test_redirect_loop_detected(self, world):
        clock, network, server, proxy, agent = world
        server.add_redirect("/a", "/b")
        server.add_redirect("/b", "/a")
        with pytest.raises(TooManyRedirects):
            agent.get("http://origin.com/a")

    def test_fetch_robots_missing_file_allows_all(self, world):
        clock, network, server, proxy, agent = world
        robots = agent.fetch_robots("origin.com")
        assert robots.allows("w3newer", "/anything")

    def test_fetch_robots_parses_rules(self, world):
        clock, network, server, proxy, agent = world
        server.set_robots_txt("User-agent: *\nDisallow: /private/\n")
        robots = agent.fetch_robots("origin.com")
        assert not robots.allows("w3newer", "/private/page.html")
        assert robots.allows("w3newer", "/public/page.html")

    def test_user_agent_header_sent(self, world):
        clock, network, server, proxy, agent = world
        captured = {}

        def spy(request, now):
            captured["ua"] = request.headers.get("User-Agent")
            from repro.web.http import make_response

            return make_response(200, "ok")

        server.register_cgi("/cgi-bin/spy", spy)
        agent.get("http://origin.com/cgi-bin/spy")
        assert captured["ua"] == "w3newer/1.0"


class TestRedirectChain:
    def test_too_many_redirects_records_chain(self):
        clock = SimClock()
        network = Network(clock)
        server = network.create_server("loop.com")
        server.add_redirect("/a", "/b")
        server.add_redirect("/b", "/a")
        agent = UserAgent(network, clock)
        with pytest.raises(TooManyRedirects) as excinfo:
            agent.get("http://loop.com/a")
        exc = excinfo.value
        assert exc.url == "http://loop.com/a"
        assert len(exc.redirects) > 2
        assert exc.redirects[0] == "http://loop.com/a"
        # The chain is embedded in the message, so the Figure-1 report
        # (which renders outcome.error verbatim) shows the loop.
        assert "chain:" in str(exc)
        assert "http://loop.com/b" in str(exc)
