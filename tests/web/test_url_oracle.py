"""Property tests of URL joining against the stdlib as an oracle.

``urllib.parse.urljoin`` implements RFC 3986 resolution, which agrees
with our RFC 1808-era implementation on all the inputs AIDE meets
(rooted paths, siblings, dot segments, fragments, queries, network-path
references).  Where the RFCs genuinely diverge the strategy below
avoids generating the case — the divergences are documented in
``repro.web.url``.
"""

from urllib.parse import urljoin

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.web.url import join_url, parse_url

bases = st.sampled_from([
    "http://www.usenix.org/events/index.html",
    "http://h.com/",
    "http://h.com/a/b/c.html",
    "http://h.com:600/dir/page.html",
])

references = st.one_of(
    st.sampled_from([
        "x.html", "sub/x.html", "/rooted.html", "../up.html", "./here.html",
        "../../twice.html", "#frag", "?q=1", "//other.org/y", "",
        "http://abs.org/z", "a/b/../c.html", ".", "..", "dir/",
    ]),
    # Random simple relative paths.
    st.lists(
        st.sampled_from(["a", "b", "..", "."]), min_size=1, max_size=4
    ).map(lambda parts: "/".join(parts)),
)


class TestJoinAgainstStdlib:
    @given(bases, references)
    @settings(max_examples=300)
    def test_matches_urljoin(self, base, ref):
        ours = str(join_url(parse_url(base), ref))
        stdlib = urljoin(base, ref)
        # Normalize the fragmentless-empty difference: urljoin("x", "")
        # returns x verbatim; both should then agree anyway.
        assert ours == stdlib, f"join({base!r}, {ref!r})"

    @given(bases)
    @settings(max_examples=50)
    def test_empty_reference_is_identity_ish(self, base):
        joined = join_url(parse_url(base), "")
        assert str(joined) == urljoin(base, "")
