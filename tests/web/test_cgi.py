"""Tests for CGI query-string handling and the stock scripts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simclock import SimClock
from repro.web.cgi import (
    ClockScript,
    CounterScript,
    FormEchoScript,
    StaticCgiScript,
    encode_query_string,
    parse_query_string,
)
from repro.web.http import Request


class TestParseQueryString:
    def test_simple(self):
        assert parse_query_string("a=1&b=two") == {"a": "1", "b": "two"}

    def test_plus_is_space(self):
        assert parse_query_string("q=mobile+computing") == {
            "q": "mobile computing"
        }

    def test_percent_escapes(self):
        assert parse_query_string("email=x%40y.com") == {"email": "x@y.com"}

    def test_valueless_key(self):
        assert parse_query_string("flag&a=1") == {"flag": "", "a": "1"}

    def test_none_and_empty(self):
        assert parse_query_string(None) == {}
        assert parse_query_string("") == {}

    def test_duplicate_keys_last_wins(self):
        assert parse_query_string("a=1&a=2") == {"a": "2"}

    def test_malformed_percent_left_alone(self):
        assert parse_query_string("a=100%") == {"a": "100%"}
        assert parse_query_string("a=%zz") == {"a": "%zz"}

    def test_overlong_utf8_not_folded(self):
        # %C0%80 is the classic overlong encoding of NUL; a lenient
        # decoder that folds it to "\x00" (or to U+FFFD, colliding with
        # every other bad sequence) opens a smuggling channel.  The
        # invalid bytes must survive as their literal escapes.
        assert parse_query_string("a=%C0%80") == {"a": "%C0%80"}
        assert parse_query_string("a=%C0%AF") == {"a": "%C0%AF"}

    def test_distinct_malformed_sequences_stay_distinct(self):
        decoded = {
            parse_query_string(f"a={esc}")["a"]
            for esc in ("%C0%80", "%C0%AF", "%FF", "%FE%FF", "%ED%A0%80")
        }
        assert len(decoded) == 5

    def test_invalid_bytes_beside_valid_utf8(self):
        # A valid multi-byte rune next to a stray continuation byte:
        # the rune decodes, the stray byte stays a literal escape.
        assert parse_query_string("a=caf%C3%A9%80") == {"a": "café%80"}

    def test_url_values_pass_through(self):
        params = parse_query_string(
            "action=diff&url=http%3A//site.com/page%3Fq%3D1"
        )
        assert params["url"] == "http://site.com/page?q=1"


class TestEncodeQueryString:
    def test_roundtrip_simple(self):
        params = {"a": "1", "q": "two words", "email": "x@y.com"}
        assert parse_query_string(encode_query_string(params)) == params

    @given(
        st.dictionaries(
            st.text(alphabet="abcXYZ09", min_size=1, max_size=8),
            st.text(max_size=20),
            max_size=5,
        )
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, params):
        assert parse_query_string(encode_query_string(params)) == params


class TestStockScripts:
    def request(self, url="http://h/cgi-bin/x", method="GET", body=""):
        return Request(method, url, body=body)

    def test_counter_monotone(self):
        script = CounterScript()
        bodies = [script(self.request(), 0).body for _ in range(3)]
        assert len(set(bodies)) == 3

    def test_clock_tracks_time(self):
        script = ClockScript()
        assert script(self.request(), 0).body != script(self.request(), 60).body
        assert script(self.request(), 60).body == script(self.request(), 60).body

    def test_static_is_stable(self):
        script = StaticCgiScript("<P>fixed</P>")
        assert script(self.request(), 0).body == script(self.request(), 999).body

    def test_form_echo_get_and_post_agree(self):
        script = FormEchoScript()
        via_get = script(self.request("http://h/cgi?a=1&b=2"), 0).body
        via_post = script(self.request(method="POST", body="a=1&b=2"), 0).body
        assert via_get == via_post

    def test_form_echo_generation_changes_output(self):
        script = FormEchoScript()
        before = script(self.request("http://h/cgi?a=1"), 0).body
        script.generation += 1
        after = script(self.request("http://h/cgi?a=1"), 0).body
        assert before != after
