"""Tests for HTTP message primitives."""

import pytest

from repro.web.http import Headers, Request, Response, make_response
from repro.web.url import parse_url


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Type": "text/html"})
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_last_set_wins(self):
        headers = Headers()
        headers.set("X-Thing", "one")
        headers.set("x-thing", "two")
        assert headers.get("X-Thing") == "two"
        assert len(headers) == 1

    def test_default(self):
        assert Headers().get("Missing", "fallback") == "fallback"
        assert Headers().get("Missing") is None

    def test_contains_and_remove(self):
        headers = Headers({"A": "1"})
        assert "a" in headers
        headers.remove("A")
        assert "a" not in headers
        headers.remove("A")  # idempotent

    def test_copy_is_independent(self):
        original = Headers({"A": "1"})
        clone = original.copy()
        clone.set("A", "2")
        assert original.get("A") == "1"

    def test_iteration_preserves_original_names(self):
        headers = Headers()
        headers.set("Content-Type", "text/html")
        names = [name for name, _ in headers]
        assert names == ["Content-Type"]

    def test_values_coerced_to_str(self):
        headers = Headers()
        headers.set("Content-Length", 42)
        assert headers.get("Content-Length") == "42"


class TestRequest:
    def test_url_string_coerced(self):
        request = Request("GET", "http://h.com/x")
        assert request.url.host == "h.com"

    def test_method_uppercased(self):
        assert Request("get", parse_url("http://h/")).method == "GET"

    def test_unsupported_method_rejected(self):
        with pytest.raises(ValueError):
            Request("DELETE", parse_url("http://h/"))

    def test_conditional_detection(self):
        request = Request("GET", "http://h/",
                          headers=Headers({"If-Modified-Since": "x"}))
        assert request.is_conditional
        assert not Request("GET", "http://h/").is_conditional


class TestResponse:
    def test_ok_range(self):
        assert Response(200).ok
        assert Response(204).ok
        assert not Response(304).ok
        assert not Response(404).ok

    def test_reason_strings(self):
        assert Response(404).reason == "Not Found"
        assert Response(599).reason == "Unknown"

    def test_content_type_default(self):
        assert Response(200).content_type == "text/html"


class TestMakeResponse:
    def test_basic_shape(self):
        response = make_response(200, "body", last_modified=3600)
        assert response.status == 200
        assert response.body == "body"
        assert response.headers.get("Content-Length") == "4"
        assert response.headers.get("X-Sim-Last-Modified") == "3600"
        assert "GMT" in response.headers.get("Last-Modified")
        assert response.last_modified == 3600

    def test_no_last_modified(self):
        response = make_response(200, "x")
        assert response.last_modified is None
        assert "Last-Modified" not in response.headers

    def test_location_header(self):
        response = make_response(301, location="http://new/")
        assert response.headers.get("Location") == "http://new/"

    def test_content_type_override(self):
        response = make_response(200, "{}", content_type="application/json")
        assert response.content_type == "application/json"


class TestHttpDates:
    def test_format_is_rfc1123(self):
        from repro.web.http import format_http_date

        assert format_http_date(0) == "Fri, 01 Sep 1995 00:00:00 GMT"
        assert format_http_date(100) == "Fri, 01 Sep 1995 00:01:40 GMT"

    def test_parse_rfc1123_round_trip(self):
        from repro.web.http import format_http_date, parse_http_date

        for ts in (0, 100, 86400, 12345678):
            assert parse_http_date(format_http_date(ts)) == ts

    def test_parse_rfc850(self):
        from repro.web.http import parse_http_date

        # Two-digit year windows into the 1900s for 70-99...
        assert parse_http_date("Friday, 01-Sep-95 00:01:40 GMT") == 100
        # ...and the 2000s below 70.
        assert parse_http_date("Sunday, 01-Sep-02 00:00:00 GMT") is not None
        # Four-digit years are accepted too.
        assert parse_http_date("Friday, 01-Sep-1995 00:01:40 GMT") == 100

    def test_parse_asctime(self):
        from repro.web.http import parse_http_date

        assert parse_http_date("Fri Sep  1 00:01:40 1995") == 100
        assert parse_http_date("Fri Sep 15 12:00:00 1995") is not None

    def test_parse_garbage_and_pre_epoch(self):
        from repro.web.http import parse_http_date

        assert parse_http_date(None) is None
        assert parse_http_date("") is None
        assert parse_http_date("yesterday-ish") is None
        assert parse_http_date("Mon, 01 Jan 1990 00:00:00 GMT") is None

    def test_response_last_modified_falls_back_to_parsing(self):
        from repro.web.http import format_http_date

        response = Response(status=200)
        response.headers.set("Last-Modified", format_http_date(4242))
        assert response.last_modified == 4242

    def test_status_reasons_for_negotiation(self):
        from repro.web.http import STATUS_REASONS

        assert STATUS_REASONS[302] == "Moved Temporarily"
        assert STATUS_REASONS[406] == "Not Acceptable"
