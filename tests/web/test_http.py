"""Tests for HTTP message primitives."""

import pytest

from repro.web.http import Headers, Request, Response, make_response
from repro.web.url import parse_url


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Type": "text/html"})
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_last_set_wins(self):
        headers = Headers()
        headers.set("X-Thing", "one")
        headers.set("x-thing", "two")
        assert headers.get("X-Thing") == "two"
        assert len(headers) == 1

    def test_default(self):
        assert Headers().get("Missing", "fallback") == "fallback"
        assert Headers().get("Missing") is None

    def test_contains_and_remove(self):
        headers = Headers({"A": "1"})
        assert "a" in headers
        headers.remove("A")
        assert "a" not in headers
        headers.remove("A")  # idempotent

    def test_copy_is_independent(self):
        original = Headers({"A": "1"})
        clone = original.copy()
        clone.set("A", "2")
        assert original.get("A") == "1"

    def test_iteration_preserves_original_names(self):
        headers = Headers()
        headers.set("Content-Type", "text/html")
        names = [name for name, _ in headers]
        assert names == ["Content-Type"]

    def test_values_coerced_to_str(self):
        headers = Headers()
        headers.set("Content-Length", 42)
        assert headers.get("Content-Length") == "42"


class TestRequest:
    def test_url_string_coerced(self):
        request = Request("GET", "http://h.com/x")
        assert request.url.host == "h.com"

    def test_method_uppercased(self):
        assert Request("get", parse_url("http://h/")).method == "GET"

    def test_unsupported_method_rejected(self):
        with pytest.raises(ValueError):
            Request("DELETE", parse_url("http://h/"))

    def test_conditional_detection(self):
        request = Request("GET", "http://h/",
                          headers=Headers({"If-Modified-Since": "x"}))
        assert request.is_conditional
        assert not Request("GET", "http://h/").is_conditional


class TestResponse:
    def test_ok_range(self):
        assert Response(200).ok
        assert Response(204).ok
        assert not Response(304).ok
        assert not Response(404).ok

    def test_reason_strings(self):
        assert Response(404).reason == "Not Found"
        assert Response(599).reason == "Unknown"

    def test_content_type_default(self):
        assert Response(200).content_type == "text/html"


class TestMakeResponse:
    def test_basic_shape(self):
        response = make_response(200, "body", last_modified=3600)
        assert response.status == 200
        assert response.body == "body"
        assert response.headers.get("Content-Length") == "4"
        assert response.headers.get("X-Sim-Last-Modified") == "3600"
        assert "GMT" in response.headers.get("Last-Modified")
        assert response.last_modified == 3600

    def test_no_last_modified(self):
        response = make_response(200, "x")
        assert response.last_modified is None
        assert "Last-Modified" not in response.headers

    def test_location_header(self):
        response = make_response(301, location="http://new/")
        assert response.headers.get("Location") == "http://new/"

    def test_content_type_override(self):
        response = make_response(200, "{}", content_type="application/json")
        assert response.content_type == "application/json"
