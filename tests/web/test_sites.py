"""Tests for the synthetic site builders."""

from repro.core.htmldiff.api import html_diff
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.web.sites import (
    DilbertSite,
    build_att_intranet,
    build_virtual_library,
    build_whats_new,
    build_yahoo,
    usenix_home_v1,
    usenix_home_v2,
)


def make_world():
    clock = SimClock()
    network = Network(clock)
    return clock, network, UserAgent(network, clock)


class TestYahoo:
    def test_categories_served(self):
        clock, network, agent = make_world()
        build_yahoo(network, categories=5)
        root = agent.get("http://www.yahoo.com/").response
        assert root.ok
        assert root.body.count("<LI>") == 5
        category = agent.get("http://www.yahoo.com/category3/").response
        assert category.ok
        assert "<UL>" in category.body

    def test_deterministic(self):
        clock1, network1, _ = make_world()
        clock2, network2, _ = make_world()
        a = build_yahoo(network1, seed=9).get_page("/category0/").body
        b = build_yahoo(network2, seed=9).get_page("/category0/").body
        assert a == b


class TestAttIntranet:
    def test_pages_served(self):
        clock, network, agent = make_world()
        build_att_intranet(network, pages=3)
        assert agent.get("http://www.research.att.com/").response.ok
        assert agent.get(
            "http://www.research.att.com/projects/project2.html"
        ).response.ok


class TestVirtualLibrary:
    def test_links_returned_and_embedded(self):
        clock, network, agent = make_world()
        server = network.create_server("vlib.org")
        urls = build_virtual_library(server, "/mobile.html", "mobile", 12)
        assert len(urls) == 12
        body = agent.get("http://vlib.org/mobile.html").response.body
        for url in urls:
            assert url in body


class TestWhatsNew:
    def test_wholesale_replacement(self):
        clock, network, agent = make_world()
        server = network.create_server("ncsa.edu")
        build_whats_new(server, "/whats-new.html", clock)
        first = agent.get("http://ncsa.edu/whats-new.html").response.body
        clock.advance(DAY)
        build_whats_new(server, "/whats-new.html", clock)
        second = agent.get("http://ncsa.edu/whats-new.html").response.body
        assert first != second
        # Every entry is replaced (the list structure survives, so the
        # density reflects sentences only — still a heavy rewrite).
        result = html_diff(first, second)
        assert result.change_density > 0.3
        assert result.html.count("<STRIKE>") >= 8  # all old entries out


class TestDilbert:
    def test_changes_every_day(self):
        clock, network, agent = make_world()
        site = DilbertSite(network, clock)
        url = "http://www.unitedmedia.com/comics/dilbert/"
        first = agent.get(url).response.body
        clock.advance(DAY)
        site.publish_today()
        second = agent.get(url).response.body
        assert first != second
        assert "dilbert0.gif" in first
        assert "dilbert1.gif" in second


class TestUsenixVersions:
    def test_versions_differ_plausibly(self):
        v1, v2 = usenix_home_v1(), usenix_home_v2()
        assert v1 != v2
        assert "LISA IX" in v1 and "LISA IX" not in v2
        assert "usenix96" not in v1 and "usenix96" in v2
        # Shared boilerplate survives in both.
        for common in ("USENIX Association", ";login:", "Berkeley"):
            assert common in v1 and common in v2
