"""Tests for the resource-bounded ingest envelope."""

import pytest

from repro.web.guards import (
    GUARD_SLUGS,
    RLE_ENCODING,
    AttributeBomb,
    BinaryContent,
    BodyTooLarge,
    CharsetUndecodable,
    ContentGuard,
    ContentGuardError,
    EntityBomb,
    ExpansionBomb,
    GuardLimits,
    HeaderBomb,
    HtmlBudget,
    MarkupDepthExceeded,
    TokenBomb,
    rle_compress,
    rle_decompress,
)
from repro.web.http import Headers


def make_headers(**extra):
    headers = Headers()
    headers.set("Content-Type", "text/html")
    for name, value in extra.items():
        headers.set(name.replace("_", "-"), value)
    return headers


class TestTaxonomy:
    def test_every_error_carries_its_slug(self):
        classes = [
            BodyTooLarge, ExpansionBomb, HeaderBomb, CharsetUndecodable,
            BinaryContent, MarkupDepthExceeded, TokenBomb, AttributeBomb,
            EntityBomb,
        ]
        assert sorted(c.guard for c in classes) == sorted(GUARD_SLUGS)
        for cls in classes:
            err = cls("http://h/x", "some detail")
            assert isinstance(err, ContentGuardError)
            assert err.url == "http://h/x"
            assert err.guard in str(err) or "some detail" in str(err)

    def test_slugs_are_distinct(self):
        assert len(set(GUARD_SLUGS)) == len(GUARD_SLUGS)


class TestRle:
    def test_round_trip(self):
        text = "\n".join(["alpha"] * 40 + ["beta", "gamma"] * 3)
        encoded = rle_compress(text)
        assert len(encoded) < len(text)
        assert rle_decompress(encoded, GuardLimits(), "http://h/x") == text

    def test_round_trip_literal_lines_that_look_like_runs(self):
        text = "5*boom\nplain\n12*wide"
        encoded = rle_compress(text)
        assert rle_decompress(encoded, GuardLimits(), "http://h/x") == text

    def test_expansion_bomb_aborts_incrementally(self):
        # Decoded size stays under the body cap but dwarfs the ratio.
        limits = GuardLimits(max_body_bytes=1 << 20, max_expansion_ratio=8)
        encoded = "20000*" + "x" * 30 + "\n"
        with pytest.raises(ExpansionBomb):
            rle_decompress(encoded, limits, "http://h/x")

    def test_body_cap_takes_precedence(self):
        limits = GuardLimits(max_body_bytes=1024, max_expansion_ratio=8)
        encoded = "20000*" + "x" * 30 + "\n"
        with pytest.raises(BodyTooLarge):
            rle_decompress(encoded, limits, "http://h/x")


class TestHeaderEnvelope:
    def test_too_many_headers(self):
        guard = ContentGuard(GuardLimits(max_headers=4))
        headers = make_headers(**{f"X_h{i}": "v" for i in range(8)})
        with pytest.raises(HeaderBomb):
            guard.check_headers("http://h/x", headers)

    def test_oversized_header_block(self):
        guard = ContentGuard(GuardLimits(max_header_bytes=64))
        headers = make_headers(X_big="y" * 200)
        with pytest.raises(HeaderBomb):
            guard.check_headers("http://h/x", headers)

    def test_sane_headers_pass(self):
        guard = ContentGuard(GuardLimits())
        guard.check_headers("http://h/x", make_headers(X_ok="fine"))


class TestTextAdmission:
    def test_benign_body_returned_unchanged(self):
        guard = ContentGuard(GuardLimits())
        body = "<HTML><BODY><P>hello &amp; welcome</P></BODY></HTML>"
        assert guard.admit_body("http://h/x", body) == body
        assert guard.admitted == 1

    def test_body_too_large(self):
        guard = ContentGuard(GuardLimits(max_body_bytes=32))
        with pytest.raises(BodyTooLarge):
            guard.admit_body("http://h/x", "y" * 64)

    def test_unknown_charset_with_non_ascii_trips(self):
        guard = ContentGuard(GuardLimits())
        with pytest.raises(CharsetUndecodable):
            guard.admit_body("http://h/x", "<P>café</P>",
                             "text/html; charset=x-martian")

    def test_unknown_charset_pure_ascii_passes(self):
        guard = ContentGuard(GuardLimits())
        body = "<P>plain ascii</P>"
        assert guard.admit_body(
            "http://h/x", body, "text/html; charset=x-martian"
        ) == body

    def test_latin1_and_utf8_accepted(self):
        guard = ContentGuard(GuardLimits())
        for charset in ("utf-8", "iso-8859-1", "latin-1", "us-ascii"):
            guard.admit_body("http://h/x", "<P>ok</P>",
                             f"text/html; charset={charset}")

    def test_nul_byte_is_binary(self):
        guard = ContentGuard(GuardLimits())
        with pytest.raises(BinaryContent):
            guard.admit_body("http://h/x", "<P>x\x00y</P>")

    def test_control_character_flood_is_binary(self):
        guard = ContentGuard(GuardLimits())
        with pytest.raises(BinaryContent):
            guard.admit_body("http://h/x", "\x01\x02\x03\x04" * 40 + "text")

    def test_tabs_and_newlines_are_not_binary(self):
        guard = ContentGuard(GuardLimits())
        body = "line\tone\r\nline two\n" * 20
        assert guard.admit_body("http://h/x", body) == body

    def test_entity_bomb(self):
        guard = ContentGuard(GuardLimits(max_entity_refs=16))
        with pytest.raises(EntityBomb):
            guard.admit_body("http://h/x", "&amp;" * 32)

    def test_nesting_depth(self):
        guard = ContentGuard(GuardLimits(max_nesting_depth=8))
        with pytest.raises(MarkupDepthExceeded):
            guard.admit_body("http://h/x", "<DIV>" * 20 + "deep")

    def test_token_bomb(self):
        guard = ContentGuard(GuardLimits(max_tokens=64))
        with pytest.raises(TokenBomb):
            guard.admit_body("http://h/x", "<B>x</B>" * 64)

    def test_attr_bomb(self):
        guard = ContentGuard(GuardLimits(max_attrs_per_tag=4))
        attrs = " ".join(f'a{i}="{i}"' for i in range(10))
        with pytest.raises(AttributeBomb):
            guard.admit_body("http://h/x", f"<SPAN {attrs}>x</SPAN>")

    def test_non_html_skips_markup_scan(self):
        guard = ContentGuard(GuardLimits(max_nesting_depth=2))
        body = "<DIV>" * 50  # would trip as text/html
        assert guard.admit_body("http://h/x", body, "text/plain") == body


class TestAdmitEnvelope:
    class Response:
        def __init__(self, body, headers, content_type="text/html"):
            self.body = body
            self.headers = headers
            self.content_type = content_type

    def test_rle_transfer_decoded(self):
        guard = ContentGuard(GuardLimits())
        text = "\n".join(["the same line"] * 30)
        response = self.Response(
            rle_compress(text),
            make_headers(Content_Encoding=RLE_ENCODING),
        )
        assert guard.admit("http://h/x", response) == text

    def test_unknown_encoding_refused(self):
        guard = ContentGuard(GuardLimits())
        response = self.Response(
            "payload", make_headers(Content_Encoding="x-mystery")
        )
        with pytest.raises(CharsetUndecodable):
            guard.admit("http://h/x", response)

    def test_trips_counted_per_slug(self):
        guard = ContentGuard(GuardLimits(max_body_bytes=8))
        for _ in range(3):
            with pytest.raises(BodyTooLarge):
                guard.admit_body("http://h/x", "toolongbody!")
        stats = guard.stats()
        assert stats["tripped"] == 3
        assert stats["trips"]["body-too-large"] == 3


class TestHtmlBudget:
    def test_fork_isolates_counters(self):
        budget = HtmlBudget(max_tokens=10)
        for _ in range(6):
            budget.charge_token()
        child = budget.fork()
        for _ in range(6):
            child.charge_token()  # fresh meter: 6 < 10, no trip
        with pytest.raises(TokenBomb):
            for _ in range(10):
                budget.charge_token()

    def test_zero_caps_mean_unlimited(self):
        budget = HtmlBudget()
        for _ in range(100_000):
            budget.charge_token()
        budget.check_depth(10_000)
        budget.check_attrs(10_000)
        assert not budget.over_work(10**6, 10**6)

    def test_over_work(self):
        budget = HtmlBudget(max_work=100)
        assert budget.over_work(20, 20)
        assert not budget.over_work(5, 5)
