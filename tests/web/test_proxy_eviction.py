"""Tests for proxy cache capacity limits and LRU eviction."""

import pytest

from repro.simclock import HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.web.proxy import ProxyCache
from repro.web.url import parse_url


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("big.com")
    for i in range(10):
        server.set_page(f"/p{i}", "X" * 100)  # 100 bytes each
    proxy = ProxyCache(network, clock, ttl=HOUR, capacity_bytes=350)
    agent = UserAgent(network, clock, proxy=proxy)
    return clock, network, server, proxy, agent


class TestCapacity:
    def test_stays_under_budget(self, world):
        clock, network, server, proxy, agent = world
        for i in range(10):
            agent.get(f"http://big.com/p{i}")
        assert proxy.cached_bytes <= 350
        assert proxy.evictions > 0

    def test_lru_order_evicted_first(self, world):
        clock, network, server, proxy, agent = world
        agent.get("http://big.com/p0")
        agent.get("http://big.com/p1")
        agent.get("http://big.com/p2")
        # Touch p0 so p1 becomes the least recently used.
        agent.get("http://big.com/p0")
        agent.get("http://big.com/p3")  # forces one eviction
        assert proxy.contains(parse_url("http://big.com/p0"))
        assert not proxy.contains(parse_url("http://big.com/p1"))

    def test_eviction_costs_a_refetch(self, world):
        clock, network, server, proxy, agent = world
        for i in range(10):
            agent.get(f"http://big.com/p{i}")
        before = server.get_count
        agent.get("http://big.com/p0")  # long since evicted
        assert server.get_count == before + 1

    def test_unbounded_by_default(self):
        clock = SimClock()
        network = Network(clock)
        server = network.create_server("big.com")
        for i in range(10):
            server.set_page(f"/p{i}", "X" * 100)
        proxy = ProxyCache(network, clock, ttl=HOUR)
        agent = UserAgent(network, clock, proxy=proxy)
        for i in range(10):
            agent.get(f"http://big.com/p{i}")
        assert proxy.cached_bytes == 1000
        assert proxy.evictions == 0

    def test_oversized_entry_still_served(self, world):
        clock, network, server, proxy, agent = world
        server.set_page("/huge", "Y" * 1000)  # alone exceeds the budget
        response = agent.get("http://big.com/huge").response
        assert response.body == "Y" * 1000
        # The huge entry survives as the sole (protected) occupant until
        # something else displaces it.
        assert proxy.contains(parse_url("http://big.com/huge"))

    def test_hit_refreshes_lru_position(self, world):
        clock, network, server, proxy, agent = world
        agent.get("http://big.com/p0")
        agent.get("http://big.com/p1")
        agent.get("http://big.com/p2")
        agent.get("http://big.com/p1")  # hit refreshes p1
        agent.get("http://big.com/p3")
        agent.get("http://big.com/p4")
        assert proxy.contains(parse_url("http://big.com/p1"))
