"""Tests for URL parsing, joining, normalization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.web.url import Url, join_url, parse_url


class TestParse:
    def test_full_url(self):
        url = parse_url("http://snapple.cs.washington.edu:600/mobile/")
        assert url.scheme == "http"
        assert url.host == "snapple.cs.washington.edu"
        assert url.port == 600
        assert url.path == "/mobile/"

    def test_query_and_fragment(self):
        url = parse_url("http://h.com/cgi-bin/rlog?file=x.html#top")
        assert url.path == "/cgi-bin/rlog"
        assert url.query == "file=x.html"
        assert url.fragment == "top"

    def test_file_url(self):
        url = parse_url("file:///home/user/notes.html")
        assert url.scheme == "file"
        assert url.host == ""
        assert url.path == "/home/user/notes.html"

    def test_host_case_folded(self):
        assert parse_url("HTTP://WWW.YAHOO.COM/").host == "www.yahoo.com"

    def test_no_scheme(self):
        url = parse_url("/relative/path.html")
        assert url.scheme == ""
        assert url.path == "/relative/path.html"

    def test_roundtrip_str(self):
        for text in (
            "http://www.att.com/",
            "http://h.com:8080/a/b?q=1",
            "http://h.com/x#frag",
        ):
            assert str(parse_url(text)) == text


class TestNormalize:
    def test_default_port_dropped(self):
        assert parse_url("http://h.com:80/x").normalized() == parse_url(
            "http://h.com/x"
        ).normalized()

    def test_empty_path_becomes_slash(self):
        assert parse_url("http://h.com").normalized().path == "/"

    def test_fragment_dropped(self):
        assert parse_url("http://h.com/x#top").normalized().fragment is None

    def test_nondefault_port_kept(self):
        assert parse_url("http://h.com:600/").normalized().port == 600


class TestJoin:
    BASE = parse_url("http://www.usenix.org/events/index.html")

    def test_absolute_reference_wins(self):
        out = join_url(self.BASE, "http://other.org/x")
        assert out.host == "other.org"

    def test_relative_sibling(self):
        out = join_url(self.BASE, "lisa95.html")
        assert out.path == "/events/lisa95.html"
        assert out.host == "www.usenix.org"

    def test_rooted_path(self):
        assert join_url(self.BASE, "/images/logo.gif").path == "/images/logo.gif"

    def test_dotdot(self):
        assert join_url(self.BASE, "../about.html").path == "/about.html"

    def test_dot(self):
        assert join_url(self.BASE, "./here.html").path == "/events/here.html"

    def test_fragment_only(self):
        out = join_url(self.BASE, "#section2")
        assert out.path == self.BASE.path
        assert out.fragment == "section2"

    def test_query_only(self):
        out = join_url(self.BASE, "?q=1")
        assert out.query == "q=1"

    def test_network_path_reference(self):
        out = join_url(self.BASE, "//mirror.org/events/")
        assert out.scheme == "http"
        assert out.host == "mirror.org"

    def test_trailing_slash_preserved(self):
        assert join_url(self.BASE, "sub/").path == "/events/sub/"

    def test_dotdot_past_root_clamps(self):
        out = join_url(self.BASE, "../../../x.html")
        assert out.path == "/x.html"

    @given(st.sampled_from(["a.html", "../x", "/y", "#f", "?q=2", "b/c.html"]))
    @settings(max_examples=50)
    def test_join_keeps_scheme_and_host_for_relatives(self, ref):
        out = join_url(self.BASE, ref)
        assert out.scheme == "http"
        assert out.host == "www.usenix.org"
