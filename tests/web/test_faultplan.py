"""Tests for the scriptable, seed-deterministic FaultPlan."""

import pytest

from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.http import ConnectionRefused, DnsError, TimeoutError_
from repro.web.network import FaultPlan, FaultRule, Network


def build_world(plan=None):
    clock = SimClock()
    network = Network(clock, fault_plan=plan)
    server = network.create_server("site.com")
    server.set_page("/index.html", "<P>hello</P>")
    agent = UserAgent(network, clock)
    return clock, network, agent


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule(kind="gremlins")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultRule(kind="timeout", probability=1.5)

    def test_window_is_half_open(self):
        rule = FaultRule(kind="timeout", start=10, end=20)
        assert not rule.active_at(9)
        assert rule.active_at(10)
        assert rule.active_at(19)
        assert not rule.active_at(20)

    def test_unbounded_window(self):
        rule = FaultRule(kind="timeout")
        assert rule.active_at(0)
        assert rule.active_at(10 ** 9)


class TestFaultPlan:
    def test_empty_plan_is_trivial_and_inert(self):
        plan = FaultPlan()
        assert plan.is_trivial()
        clock, network, agent = build_world(plan)
        assert agent.get("http://site.com/index.html").response.ok

    def test_outage_window(self):
        plan = FaultPlan()
        plan.outage("site.com", kind="refused", start=100, end=200)
        clock, network, agent = build_world(plan)
        assert agent.get("http://site.com/index.html").response.ok
        clock.advance(150)
        with pytest.raises(ConnectionRefused):
            agent.get("http://site.com/index.html")
        clock.advance(100)  # now 250: past the window
        assert agent.get("http://site.com/index.html").response.ok

    def test_dns_fault(self):
        plan = FaultPlan()
        plan.outage("site.com", kind="dns")
        clock, network, agent = build_world(plan)
        with pytest.raises(DnsError):
            agent.get("http://site.com/index.html")

    def test_intermittent_failures_are_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(seed=seed)
            plan.intermittent("site.com", 0.5, kind="timeout")
            clock, network, agent = build_world(plan)
            outcomes = []
            for _ in range(40):
                try:
                    agent.get("http://site.com/index.html")
                    outcomes.append("ok")
                except TimeoutError_:
                    outcomes.append("timeout")
            return outcomes

        first = run(seed=7)
        again = run(seed=7)
        other = run(seed=8)
        assert first == again
        assert first != other
        assert "ok" in first and "timeout" in first

    def test_flaky_until_recovers(self):
        plan = FaultPlan()
        plan.flaky_until("site.com", recover_at=50, probability=1.0)
        clock, network, agent = build_world(plan)
        with pytest.raises(TimeoutError_):
            agent.get("http://site.com/index.html")
        clock.advance(50)
        assert agent.get("http://site.com/index.html").response.ok

    def test_slowdown_spike_times_out_impatient_clients(self):
        plan = FaultPlan()
        plan.slowdown("site.com", delay=120, start=10, end=20)
        clock, network, agent = build_world(plan)
        assert agent.get("http://site.com/index.html").response.ok
        clock.advance(10)
        with pytest.raises(TimeoutError_):
            agent.get("http://site.com/index.html", timeout=30)
        clock.advance(10)
        assert agent.get("http://site.com/index.html").response.ok

    def test_overloaded_host_advertises_retry_after(self):
        plan = FaultPlan()
        plan.overloaded("site.com", retry_after=30)
        clock, network, agent = build_world(plan)
        result = agent.get("http://site.com/index.html")
        assert result.response.status == 503
        assert result.response.headers.get("Retry-After") == "30"
        # 503s are responses, not transport failures: they are logged.
        assert network.log[-1].status == 503

    def test_wildcard_rules_apply_to_every_host(self):
        plan = FaultPlan()
        plan.outage("*", kind="refused")
        clock, network, agent = build_world(plan)
        network.create_server("other.com").set_page("/x.html", "<P>x</P>")
        for url in ("http://site.com/index.html", "http://other.com/x.html"):
            with pytest.raises(ConnectionRefused):
                agent.get(url)

    def test_host_rules_win_over_wildcard(self):
        plan = FaultPlan()
        plan.outage("site.com", kind="dns")
        plan.outage("*", kind="refused")
        clock, network, agent = build_world(plan)
        with pytest.raises(DnsError):
            agent.get("http://site.com/index.html")

    def test_clear_by_tag(self):
        plan = FaultPlan()
        plan.outage("site.com", tag="drill")
        plan.slowdown("site.com", delay=5, tag="keep")
        assert plan.clear("site.com", tag="drill") == 1
        assert not plan.is_trivial()
        assert plan.clear() == 1
        assert plan.is_trivial()


class TestLegacyToggles:
    """The paper-era all-or-nothing switches, now trivial plans."""

    def test_kill_and_restore_dns(self):
        clock, network, agent = build_world()
        network.kill_dns("site.com")
        with pytest.raises(DnsError):
            agent.get("http://site.com/index.html")
        network.restore_dns("site.com")
        assert agent.get("http://site.com/index.html").response.ok

    def test_refuse_and_accept(self):
        clock, network, agent = build_world()
        network.refuse_connections("site.com")
        with pytest.raises(ConnectionRefused):
            agent.get("http://site.com/index.html")
        network.accept_connections("site.com")
        assert agent.get("http://site.com/index.html").response.ok

    def test_toggles_do_not_clobber_scripted_rules(self):
        clock, network, agent = build_world()
        network.plan.outage("site.com", kind="refused", tag="scripted")
        network.refuse_connections("site.com")
        network.accept_connections("site.com")
        with pytest.raises(ConnectionRefused):
            agent.get("http://site.com/index.html")
