"""Tests for burst-overload of the proxy (§3.1/§4.2's aggravation)."""

import pytest

from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.http import TimeoutError_
from repro.web.network import Network
from repro.web.proxy import ProxyCache


def build_world(limit, hosts=1):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    for i in range(20):
        server.set_page(f"/p{i}.html", f"<P>page {i}</P>")
    # Optional extra hosts, one page each, so a proxy meltdown shows up
    # as failures spanning *distinct* servers (what the systemic
    # detector requires before aborting a run).
    for h in range(1, hosts):
        other = network.create_server(f"site{h}.com")
        other.set_page("/page.html", f"<P>host {h}</P>")
    proxy = ProxyCache(network, clock, ttl=HOUR)
    proxy.requests_per_instant_limit = limit
    agent = UserAgent(network, clock, proxy=proxy)
    return clock, network, server, proxy, agent


class TestBurstOverload:
    def test_burst_beyond_limit_times_out(self):
        clock, network, server, proxy, agent = build_world(limit=5)
        for i in range(5):
            agent.get(f"http://site.com/p{i}.html")
        with pytest.raises(TimeoutError_):
            agent.get("http://site.com/p5.html")

    def test_limit_resets_next_instant(self):
        clock, network, server, proxy, agent = build_world(limit=5)
        for i in range(5):
            agent.get(f"http://site.com/p{i}.html")
        clock.advance(1)
        assert agent.get("http://site.com/p5.html").response.ok

    def test_unlimited_by_default(self):
        clock, network, server, proxy, agent = build_world(limit=0)
        for i in range(20):
            assert agent.get(f"http://site.com/p{i}.html").response.ok

    def test_w3newer_burst_aggravates_weak_proxy_and_aborts(self):
        # The paper's exact scenario: the background tracker fires a
        # burst of requests through an overloadable proxy; the proxy
        # starts timing out; w3newer detects the systemic failure and
        # aborts rather than hammering on.  The hotlist spans many
        # hosts behind the one proxy: timeouts across distinct servers
        # are what convinces the detector the trouble is local.
        clock, network, server, proxy, agent = build_world(limit=4, hosts=20)
        hotlist = Hotlist.from_lines(
            "http://site.com/p0.html\n"
            + "\n".join(f"http://site{h}.com/page.html" for h in range(1, 20))
        )
        tracker = W3Newer(
            clock, agent, hotlist,
            config=parse_threshold_config("Default 0\n"),
            proxy=proxy,
            abort_after_failures=3,
        )
        clock.advance(DAY)
        result = tracker.run()
        assert result.aborted
        assert len(result.outcomes) < 20

    def test_single_host_failures_do_not_abort(self):
        # Same burst, but every URL lives on one server: a streak of
        # failures from a single host means *that host* is in trouble,
        # not the network, so the run pushes on and reports per-URL
        # errors instead of aborting.
        clock, network, server, proxy, agent = build_world(limit=4)
        hotlist = Hotlist.from_lines(
            "\n".join(f"http://site.com/p{i}.html" for i in range(20))
        )
        tracker = W3Newer(
            clock, agent, hotlist,
            config=parse_threshold_config("Default 0\n"),
            proxy=proxy,
            abort_after_failures=3,
        )
        clock.advance(DAY)
        result = tracker.run()
        assert not result.aborted
        assert len(result.outcomes) == 20
        assert result.errors

    def test_patient_tracker_survives(self):
        # Spreading the same checks over time stays under the burst
        # limit — the remedy the failure mode implies.
        clock, network, server, proxy, agent = build_world(limit=4)
        hotlist = Hotlist.from_lines(
            "\n".join(f"http://site.com/p{i}.html" for i in range(20))
        )
        tracker = W3Newer(
            clock, agent, hotlist,
            config=parse_threshold_config("Default 0\n"),
            proxy=proxy,
            abort_after_failures=3,
        )
        clock.advance(DAY)
        # Check manually, two URLs per simulated second.
        from repro.core.w3newer.checker import UrlChecker
        from repro.core.w3newer.errors import SystemicFailureDetector

        checker = UrlChecker(
            clock=clock, agent=agent, config=tracker.config,
            history=tracker.history, cache=tracker.cache, proxy=proxy,
            failure_detector=SystemicFailureDetector(abort_after=3),
        )
        errors = 0
        for index, entry in enumerate(hotlist):
            if index and index % 2 == 0:
                clock.advance(1)
            outcome = checker.check(entry.url)
            if outcome.error:
                errors += 1
        assert errors == 0
