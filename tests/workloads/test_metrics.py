"""Tests for the experiment metrics log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.metrics import MetricLog


class TestRecordSelect:
    def test_record_and_select(self):
        log = MetricLog()
        log.record(0, "requests", 3, tracker="w3newer")
        log.record(10, "requests", 5, tracker="w3new")
        log.record(20, "changes", 1, tracker="w3newer")
        assert len(log) == 3
        assert len(log.select("requests")) == 2
        assert len(log.select("requests", tracker="w3newer")) == 1

    def test_time_window(self):
        log = MetricLog()
        for t in (0, 10, 20, 30):
            log.record(t, "m", 1)
        assert len(log.select("m", since=10, until=20)) == 2

    def test_tag_lookup(self):
        log = MetricLog()
        obs = log.record(0, "m", 1, host="a.com", user="fred")
        assert obs.tag("host") == "a.com"
        assert obs.tag("missing") is None


class TestAggregation:
    def test_total_and_mean(self):
        log = MetricLog()
        for value in (2, 4, 6):
            log.record(0, "m", value)
        assert log.total("m") == 12
        assert log.mean("m") == 4
        assert log.maximum("m") == 6

    def test_mean_of_nothing_raises(self):
        with pytest.raises(ValueError):
            MetricLog().mean("nothing")

    def test_series_buckets_with_gaps(self):
        log = MetricLog()
        log.record(0, "m", 1)
        log.record(5, "m", 2)
        log.record(25, "m", 4)
        series = log.series("m", bucket=10)
        assert series == [(0, 3.0), (10, 0.0), (20, 4.0)]

    def test_series_empty(self):
        assert MetricLog().series("m", bucket=10) == []

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            MetricLog().series("m", bucket=0)


class TestCsv:
    def test_roundtrip(self):
        log = MetricLog()
        log.record(0, "requests", 3, tracker="w3newer", host="a.com")
        log.record(60, "bytes", 1234.5)
        again = MetricLog.from_csv(log.to_csv())
        assert len(again) == 2
        assert again.total("requests", tracker="w3newer") == 3
        assert again.values("bytes") == [1234.5]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 10**6),
                st.sampled_from(["requests", "changes", "bytes"]),
                st.floats(-1e6, 1e6, allow_nan=False),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, rows):
        log = MetricLog()
        for time, metric, value in rows:
            log.record(time, metric, value)
        again = MetricLog.from_csv(log.to_csv())
        assert len(again) == len(log)
        for metric in ("requests", "changes", "bytes"):
            assert again.total(metric) == pytest.approx(log.total(metric))
