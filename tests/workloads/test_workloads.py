"""Tests for page generation, mutation operators, and scenarios."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.htmldiff.api import html_diff
from repro.html.lexer import tokenize_html
from repro.simclock import DAY, WEEK, SimClock
from repro.workloads.mutate import (
    MUTATORS,
    MutationMix,
    add_link,
    append_paragraph,
    cosmetic_whitespace,
    delete_paragraph,
    edit_sentence,
    restructure,
    rewrite,
)
from repro.workloads.pagegen import PageGenerator
from repro.workloads.scenario import build_hotlist, build_web


class TestPageGenerator:
    def test_deterministic(self):
        assert PageGenerator(7).page() == PageGenerator(7).page()
        assert PageGenerator(7).page() != PageGenerator(8).page()

    def test_multiline_structure(self):
        page = PageGenerator(1).page()
        assert page.count("\n") > 5
        assert page.startswith("<HTML>")
        assert page.endswith("</BODY></HTML>")

    def test_requested_structure(self):
        page = PageGenerator(2).page(paragraphs=3, links=4, with_pre=True)
        assert page.count("<P>") == 3
        assert page.count("<LI>") == 4
        assert "<PRE>" in page

    def test_lexes_cleanly(self):
        page = PageGenerator(3).page()
        nodes = tokenize_html(page)
        assert nodes  # and nothing raised


class TestMutators:
    PAGE = PageGenerator(11).page(paragraphs=5, links=3)

    def rng(self):
        return random.Random(99)

    def test_append_paragraph_adds_content(self):
        out = append_paragraph(self.PAGE, self.rng())
        assert out.count("<P>") == self.PAGE.count("<P>") + 1

    def test_edit_sentence_changes_one_word(self):
        out = edit_sentence(self.PAGE, self.rng())
        assert out != self.PAGE
        # Same number of lines, exactly one line differs.
        old_lines, new_lines = self.PAGE.split("\n"), out.split("\n")
        assert len(old_lines) == len(new_lines)
        assert sum(1 for a, b in zip(old_lines, new_lines) if a != b) == 1

    def test_delete_paragraph(self):
        out = delete_paragraph(self.PAGE, self.rng())
        assert out.count("<P>") == self.PAGE.count("<P>") - 1

    def test_add_link(self):
        out = add_link(self.PAGE, self.rng())
        assert out.count("<LI>") == self.PAGE.count("<LI>") + 1

    def test_add_link_creates_list_if_missing(self):
        bare = PageGenerator(12).page(paragraphs=2, links=0)
        assert "<UL>" not in bare
        out = add_link(bare, self.rng())
        assert "<UL>" in out

    def test_restructure_preserves_sentences(self):
        out = restructure(self.PAGE, self.rng())
        result = html_diff(self.PAGE, out)
        # Content survived; only formatting (break markups) changed.
        assert "<STRIKE>" not in result.html

    def test_rewrite_replaces_everything(self):
        out = rewrite(self.PAGE, self.rng())
        result = html_diff(
            self.PAGE, out,
        )
        assert result.change_density > 0.5 or result.density_suppressed

    def test_cosmetic_whitespace_is_invisible_to_htmldiff(self):
        out = cosmetic_whitespace(self.PAGE, self.rng())
        assert out != self.PAGE
        assert html_diff(self.PAGE, out).identical

    @given(st.sampled_from(sorted(MUTATORS)), st.integers(0, 1000))
    @settings(max_examples=120, deadline=None)
    def test_all_mutators_produce_lexable_html(self, name, seed):
        out = MUTATORS[name](self.PAGE, random.Random(seed))
        tokenize_html(out)  # must not raise

    def test_mutation_mix_deterministic(self):
        a = MutationMix.typical(seed=5)
        b = MutationMix.typical(seed=5)
        assert a.apply(self.PAGE) == b.apply(self.PAGE)

    def test_unknown_mutator_rejected(self):
        with pytest.raises(ValueError):
            MutationMix({"explode": 1.0})


class TestScenario:
    def test_build_web_shape(self):
        web = build_web(sites=3, pages_per_site=4, seed=1)
        assert len(web.urls) == 12
        assert set(web.change_class.values()) <= {
            "daily-churn", "busy", "weekly", "monthly", "static",
        }

    def test_pages_actually_served(self):
        from repro.web.client import UserAgent

        web = build_web(sites=2, pages_per_site=2, seed=2)
        agent = UserAgent(web.network, web.clock)
        for url in web.urls:
            assert agent.get(url).response.ok

    def test_evolution_changes_pages(self):
        from repro.web.client import UserAgent

        web = build_web(sites=3, pages_per_site=5, seed=3)
        agent = UserAgent(web.network, web.clock)
        daily = web.urls_in_class("daily-churn")
        if not daily:  # seed-dependent; widen to any changing class
            daily = [u for u in web.urls if web.change_class[u] != "static"]
        before = {url: agent.get(url).response.body for url in daily}
        # Slowest class: monthly (4w period) + up-to-one-period jitter
        # means a first change may land as late as week 8.
        web.cron.run_until(10 * WEEK)
        changed = sum(
            1 for url in daily if agent.get(url).response.body != before[url]
        )
        assert changed == len(daily)

    def test_static_pages_never_change(self):
        from repro.web.client import UserAgent

        web = build_web(sites=3, pages_per_site=5, seed=4)
        agent = UserAgent(web.network, web.clock)
        static = web.urls_in_class("static")
        before = {url: agent.get(url).response.body for url in static}
        web.cron.run_until(6 * WEEK)
        for url in static:
            assert agent.get(url).response.body == before[url]

    def test_hotlist_sampling(self):
        web = build_web(sites=4, pages_per_site=5, seed=5)
        hotlist = build_hotlist(web, size=10, seed=6)
        assert len(hotlist) == 10
        assert len(set(hotlist.urls())) == 10
        for url in hotlist.urls():
            assert url in web.urls

    def test_hotlist_deterministic(self):
        web = build_web(sites=4, pages_per_site=5, seed=5)
        a = build_hotlist(web, size=8, seed=9).urls()
        web2 = build_web(sites=4, pages_per_site=5, seed=5)
        b = build_hotlist(web2, size=8, seed=9).urls()
        assert a == b
