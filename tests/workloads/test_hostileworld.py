"""Fuzz smoke test: a small seeded slice of the hostile corpus runs in
tier 1 on every push; the full 500+-document sweep with its gates lives
in ``benchmarks/bench_hostile.py``."""

from repro.core.htmldiff.api import html_diff
from repro.web.guards import (
    GUARD_SLUGS,
    ContentGuard,
    ContentGuardError,
    GuardLimits,
)
from repro.workloads import HOSTILE_MUTATORS, hostile_corpus
from repro.workloads.hostileworld import populate_hostile_server

SEED = 1996
SMOKE_DOCS = 60  # 6 per operator: enough for full guard coverage


class TestCorpusDeterminism:
    def test_same_seed_same_corpus(self):
        first = hostile_corpus(20, seed=SEED)
        second = hostile_corpus(20, seed=SEED)
        assert [(d.name, d.body, d.headers) for d in first] == \
            [(d.name, d.body, d.headers) for d in second]

    def test_different_seeds_differ(self):
        assert [d.body for d in hostile_corpus(20, seed=1)] != \
            [d.body for d in hostile_corpus(20, seed=2)]

    def test_round_robin_covers_every_operator(self):
        docs = hostile_corpus(len(HOSTILE_MUTATORS), seed=SEED)
        assert {d.mutator for d in docs} == set(HOSTILE_MUTATORS)


class TestFuzzSmoke:
    def test_no_crashes_and_full_guard_coverage(self):
        limits = GuardLimits.strict()
        guard = ContentGuard(limits)
        for doc in hostile_corpus(SMOKE_DOCS, seed=SEED):
            url = f"http://hostile.example/{doc.name}.html"
            try:
                if doc.headers:
                    # Headers ride the real envelope in the benchmark;
                    # here admit_body covers the body-side guards and
                    # check_headers covers the header side directly.
                    from repro.web.http import Headers

                    headers = Headers()
                    for name, value in doc.headers.items():
                        headers.set(name, value)
                    headers.set("Content-Type", doc.content_type)
                    guard.check_headers(url, headers)
                    if "Content-Encoding" in doc.headers:
                        from repro.web.guards import rle_decompress

                        body = rle_decompress(doc.body, limits, url)
                    else:
                        body = doc.body
                else:
                    body = doc.body
                guard.admit_body(url, body, doc.content_type)
            except ContentGuardError:
                continue  # a verdict, not a crash
        body_side = set(GUARD_SLUGS) - {"header-bomb", "expansion-bomb"}
        tripped = set(guard.trips)
        assert body_side <= tripped | {"expansion-bomb"}, \
            sorted(body_side - tripped)
        # The envelope-side guards trip through their own entry points.
        assert guard.trips.get("header-bomb", 0) > 0

    def test_expansion_bomb_trips_ratio_not_size(self):
        from repro.web.guards import ExpansionBomb, rle_decompress

        limits = GuardLimits.strict()
        docs = [d for d in hostile_corpus(SMOKE_DOCS, seed=SEED)
                if d.mutator == "zip_bomb_body"]
        assert docs
        for doc in docs:
            try:
                rle_decompress(doc.body, limits, "http://h/x")
                raise AssertionError("zip bomb decoded without tripping")
            except ExpansionBomb:
                pass

    def test_admitted_docs_diff_safely(self):
        limits = GuardLimits.strict()
        guard = ContentGuard(limits)
        reference = "<HTML><BODY><P>reference page</P></BODY></HTML>"
        for doc in hostile_corpus(SMOKE_DOCS, seed=SEED):
            if doc.headers:
                continue
            try:
                body = guard.admit_body(
                    "http://h/x", doc.body, doc.content_type
                )
            except ContentGuardError:
                continue
            result = html_diff(reference, body,
                               budget=limits.html_budget("http://h/x"))
            assert result.html  # produced something, bounded


class TestHostileServer:
    def test_populate_serves_the_corpus(self):
        from repro.simclock import SimClock
        from repro.web.network import Network
        from repro.web.server import HttpServer

        clock = SimClock()
        network = Network(clock)
        server = network.add_server(HttpServer("hostile.example", clock))
        docs = hostile_corpus(10, seed=SEED)
        urls = populate_hostile_server(server, docs)
        assert len(urls) == 10
        from repro.web.client import UserAgent

        agent = UserAgent(network, clock)
        result = agent.get(urls[0])
        assert result.response.body == docs[0].body
        # No Last-Modified by default: checkers take the GET path.
        assert result.response.last_modified is None
