"""Tests for markup rectification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html.lexer import Tag, tokenize_html
from repro.html.model import is_empty_tag
from repro.html.repair import RepairStats, repair_nodes
from repro.html.serializer import serialize_nodes


def assert_balanced(nodes):
    """Every non-empty start tag has a matching, properly nested end tag."""
    stack = []
    for node in nodes:
        if not isinstance(node, Tag):
            continue
        if not node.closing:
            if not is_empty_tag(node.name):
                stack.append(node.name)
        else:
            assert stack, f"unmatched end tag {node.name}"
            assert stack[-1] == node.name, f"mis-nested {node.name} over {stack[-1]}"
            stack.pop()
    assert stack == [], f"unclosed at EOF: {stack}"


class TestRepair:
    def test_already_balanced_untouched(self):
        nodes = tokenize_html("<b>bold</b> plain")
        repaired = repair_nodes(nodes)
        assert serialize_nodes(repaired) == "<b>bold</b> plain"

    def test_unclosed_at_eof(self):
        stats = RepairStats()
        repaired = repair_nodes(tokenize_html("<b>dangling"), stats)
        assert_balanced(repaired)
        assert stats.unclosed_at_eof == 1
        assert serialize_nodes(repaired).endswith("</B>")

    def test_li_auto_close(self):
        # The dominant 1995 idiom: <LI> items never closed.
        stats = RepairStats()
        repaired = repair_nodes(
            tokenize_html("<ul><li>one<li>two<li>three</ul>"), stats
        )
        assert_balanced(repaired)
        assert stats.implicit_closes == 2  # two LIs closed by following LIs
        assert stats.out_of_order_closes == 1  # last LI closed by </ul>

    def test_p_auto_close(self):
        repaired = repair_nodes(tokenize_html("<p>one<p>two"))
        assert_balanced(repaired)

    def test_stray_end_tag_dropped(self):
        stats = RepairStats()
        repaired = repair_nodes(tokenize_html("text</b>more"), stats)
        assert stats.stray_end_tags_dropped == 1
        assert serialize_nodes(repaired) == "textmore"

    def test_end_tag_for_empty_element_dropped(self):
        stats = RepairStats()
        repaired = repair_nodes(tokenize_html("<br></br>"), stats)
        assert stats.stray_end_tags_dropped == 1
        assert_balanced(repaired)

    def test_out_of_order_closes(self):
        stats = RepairStats()
        repaired = repair_nodes(tokenize_html("<b><i>both</b></i>"), stats)
        assert_balanced(repaired)
        # </b> forces an </I>; the trailing </i> is then stray.
        assert stats.out_of_order_closes == 1
        assert stats.stray_end_tags_dropped == 1

    def test_dt_dd_alternation(self):
        repaired = repair_nodes(
            tokenize_html("<dl><dt>term<dd>def<dt>term2<dd>def2</dl>")
        )
        assert_balanced(repaired)

    def test_empty_tags_need_no_close(self):
        stats = RepairStats()
        repaired = repair_nodes(tokenize_html("a<br>b<hr>c<img src=x>d"), stats)
        assert stats.total == 0
        assert_balanced(repaired)

    def test_text_and_comments_pass_through(self):
        src = "plain <!-- c --> text"
        assert serialize_nodes(repair_nodes(tokenize_html(src))) == src

    @given(
        st.lists(
            st.sampled_from(
                ["<p>", "</p>", "<ul>", "</ul>", "<li>", "</li>", "<b>",
                 "</b>", "<i>", "</i>", "<br>", "text ", "<h1>", "</h1>"]
            ),
            max_size=30,
        )
    )
    @settings(max_examples=200)
    def test_always_balanced(self, pieces):
        repaired = repair_nodes(tokenize_html("".join(pieces)))
        assert_balanced(repaired)

    @given(st.text(max_size=120))
    @settings(max_examples=150)
    def test_arbitrary_input_balanced(self, source):
        assert_balanced(repair_nodes(tokenize_html(source)))


class TestAdversarialInputs:
    """Hostile-shaped markup: repair must stay total and idempotent."""

    def repair_text(self, source):
        return serialize_nodes(repair_nodes(tokenize_html(source)))

    def test_unclosed_script_at_eof(self):
        out = self.repair_text("<P>before<SCRIPT>var x = '<b>not a tag")
        repaired = tokenize_html(out)
        assert_balanced(repair_nodes(repaired))

    def test_unclosed_comment_at_eof(self):
        out = self.repair_text("<P>text<!-- the comment never ends")
        assert "text" in out

    def test_comment_swallowing_markup_at_eof(self):
        source = "<UL><LI>one<!--<LI>two</UL>"
        assert_balanced(repair_nodes(tokenize_html(source)))

    def test_misnesting_beyond_depth_100(self):
        source = "".join(f"<T{i}>" for i in range(150)) + "core" + \
            "".join(f"</T{i}>" for i in range(150))  # closes in open order
        repaired = repair_nodes(tokenize_html(source))
        assert_balanced(repaired)

    def test_deep_unclosed_nesting(self):
        repaired = repair_nodes(tokenize_html("<DIV>" * 200 + "bottom"))
        assert_balanced(repaired)

    def test_repair_is_idempotent(self):
        sources = [
            "<P>before<SCRIPT>var x = '<b>oops",
            "<UL><LI>one<LI>two<B>bold</UL>trailing</B>",
            "<DIV>" * 50 + "deep",
            "<I><B>crossed</I></B>",
            "<!-- unterminated",
            "plain text only",
        ]
        for source in sources:
            once = self.repair_text(source)
            twice = self.repair_text(once)
            assert twice == once, f"repair not idempotent for {source!r}"

    def test_budget_trips_instead_of_burning_cpu(self):
        import pytest

        from repro.web.guards import HtmlBudget, MarkupDepthExceeded

        budget = HtmlBudget(max_depth=32)
        with pytest.raises(MarkupDepthExceeded):
            list(repair_nodes(
                tokenize_html("<DIV>" * 100, budget=budget), budget=budget
            ))
