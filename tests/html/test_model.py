"""Tests for the tag-classification model."""

from repro.html.lexer import tokenize_html
from repro.html.model import (
    AUTO_CLOSE,
    CONTENT_DEFINING_TAGS,
    EMPTY_TAGS,
    SENTENCE_BREAKING_TAGS,
    is_content_defining,
    is_empty_tag,
    is_sentence_breaking,
)


def tag(source):
    return tokenize_html(source)[0]


class TestSentenceBreaking:
    def test_paper_examples(self):
        # "sentence-breaking markups (such as <P>, <HR>, <LI>, or <H1>)"
        for source in ("<P>", "<HR>", "<LI>", "<H1>"):
            assert is_sentence_breaking(tag(source))

    def test_inline_markup_not_breaking(self):
        # "non-sentence-breaking markups (such as <B> or <A>)"
        for source in ("<B>", '<A HREF="x">', "<I>", "<EM>", "<TT>"):
            assert not is_sentence_breaking(tag(source))

    def test_closing_tags_break_too(self):
        assert is_sentence_breaking(tag("</P>"))
        assert is_sentence_breaking(tag("</UL>"))


class TestContentDefining:
    def test_paper_examples(self):
        # "'content-defining' markups such as <IMG> or <A>"
        assert is_content_defining(tag('<IMG SRC="x.gif">'))
        assert is_content_defining(tag('<A HREF="y">'))

    def test_presentational_not_content(self):
        # "Markups such as <B> or <I> are not counted."
        assert not is_content_defining(tag("<B>"))
        assert not is_content_defining(tag("<I>"))

    def test_closing_tags_not_counted(self):
        assert not is_content_defining(tag("</A>"))


class TestEmptyTags:
    def test_known_empty(self):
        for name in ("BR", "HR", "IMG", "META", "BASE"):
            assert is_empty_tag(name)
            assert is_empty_tag(name.lower())

    def test_container_tags_not_empty(self):
        for name in ("P", "A", "UL", "B"):
            assert not is_empty_tag(name)


class TestSetConsistency:
    def test_empty_tags_never_auto_close(self):
        # An empty tag has no open element to close implicitly.
        for name in AUTO_CLOSE:
            assert name not in EMPTY_TAGS

    def test_auto_close_targets_are_breaking(self):
        # Only structural elements participate in implicit closing.
        for name, closes in AUTO_CLOSE.items():
            assert name in SENTENCE_BREAKING_TAGS
            for target in closes:
                assert target in SENTENCE_BREAKING_TAGS

    def test_content_defining_are_inline(self):
        # Content-defining markups live INSIDE sentences, except AREA
        # (image-map regions are block-structured in practice).
        for name in CONTENT_DEFINING_TAGS - {"AREA"}:
            assert name not in SENTENCE_BREAKING_TAGS
