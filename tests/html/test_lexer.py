"""Tests for the HTML lexer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html.lexer import Comment, Declaration, Tag, Text, tokenize_html
from repro.html.serializer import serialize_nodes


class TestBasicLexing:
    def test_plain_text(self):
        nodes = tokenize_html("hello world")
        assert nodes == [Text("hello world")]

    def test_simple_tag(self):
        nodes = tokenize_html("<p>hi</p>")
        assert isinstance(nodes[0], Tag)
        assert nodes[0].name == "P"
        assert not nodes[0].closing
        assert nodes[1] == Text("hi")
        assert nodes[2].name == "P"
        assert nodes[2].closing

    def test_tag_name_case_folded(self):
        assert tokenize_html("<Img>")[0].name == "IMG"

    def test_raw_source_preserved(self):
        src = '<A HREF="http://x.com/">link</a>'
        nodes = tokenize_html(src)
        assert nodes[0].raw == '<A HREF="http://x.com/">'
        assert nodes[2].raw == "</a>"

    def test_comment(self):
        nodes = tokenize_html("a<!-- note -->b")
        assert nodes == [Text("a"), Comment(" note ", raw="<!-- note -->"), Text("b")]

    def test_declaration(self):
        nodes = tokenize_html('<!DOCTYPE HTML PUBLIC "-//IETF//DTD HTML 2.0//EN">')
        assert isinstance(nodes[0], Declaration)

    def test_empty_document(self):
        assert tokenize_html("") == []


class TestAttributes:
    def test_double_quoted(self):
        tag = tokenize_html('<a href="http://www.usenix.org/">')[0]
        assert tag.attr("href") == "http://www.usenix.org/"

    def test_single_quoted(self):
        tag = tokenize_html("<a href='x'>")[0]
        assert tag.attr("HREF") == "x"

    def test_unquoted(self):
        tag = tokenize_html("<img src=pic.gif align=left>")[0]
        assert tag.attr("src") == "pic.gif"
        assert tag.attr("align") == "left"

    def test_valueless(self):
        tag = tokenize_html("<dl compact>")[0]
        assert tag.has_attr("compact")
        assert tag.attr("compact") is None

    def test_messy_whitespace(self):
        tag = tokenize_html('<a  href =  "x"   name=y >')[0]
        assert tag.attr("href") == "x"
        assert tag.attr("name") == "y"

    def test_missing_attr(self):
        tag = tokenize_html("<p>")[0]
        assert tag.attr("align") is None
        assert not tag.has_attr("align")

    def test_unterminated_quote(self):
        tag = tokenize_html('<a href="oops>')  # the > is inside the quote
        # The tag never terminates, so it lexes as literal text.
        assert isinstance(tag[0], Text) or isinstance(tag[0], Tag)


class TestNormalization:
    def test_case_and_order_insensitive(self):
        a = tokenize_html('<IMG src="X.GIF" alt=logo>')[0]
        b = tokenize_html("<img ALT=LOGO SRC='x.gif'>")[0]
        assert a.normalized == b.normalized

    def test_different_attrs_differ(self):
        a = tokenize_html('<a href="one">')[0]
        b = tokenize_html('<a href="two">')[0]
        assert a.normalized != b.normalized

    def test_closing_marker_in_normal_form(self):
        assert tokenize_html("</p>")[0].normalized == "</P>"


class TestRobustness:
    def test_unterminated_tag_is_text(self):
        nodes = tokenize_html("before <a href=")
        assert nodes[0] == Text("before ")
        assert isinstance(nodes[1], Text)

    def test_bare_lt_is_text(self):
        nodes = tokenize_html("3 < 4 and 5 > 2")
        assert any(isinstance(n, Text) for n in nodes)

    def test_empty_angle_brackets(self):
        nodes = tokenize_html("a<>b")
        assert serialize_nodes(nodes) == "a<>b"

    def test_unterminated_comment(self):
        nodes = tokenize_html("x<!-- never closed")
        assert isinstance(nodes[-1], Comment)

    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_never_raises_and_roundtrips(self, source):
        nodes = tokenize_html(source)
        assert serialize_nodes(nodes) == source


class TestSerialization:
    def test_roundtrip_realistic_page(self):
        src = (
            '<HTML><HEAD><TITLE>USENIX</TITLE></HEAD>\n'
            '<BODY><H1 ALIGN="center">Welcome</H1>\n'
            '<!-- maintained by hand -->\n'
            '<P>The <B>1996</B> conference &amp; exhibition.</P>\n'
            '<UL><LI><A HREF="/events/">Events</A>\n'
            '<LI><IMG SRC=new.gif> What\'s new</UL>\n'
            "</BODY></HTML>"
        )
        assert serialize_nodes(tokenize_html(src)) == src
