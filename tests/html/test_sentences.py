"""Tests for sentence segmentation."""

from repro.html.sentences import split_preformatted, split_sentences, split_words


class TestSplitWords:
    def test_simple(self):
        assert split_words("one two three") == ["one", "two", "three"]

    def test_collapses_whitespace(self):
        assert split_words("  a \n\t b  ") == ["a", "b"]

    def test_entities_decoded(self):
        assert split_words("AT&amp;T Bell") == ["AT&T", "Bell"]

    def test_empty(self):
        assert split_words("   ") == []


class TestSplitSentences:
    def test_single_sentence(self):
        assert split_sentences("Hello world") == [["Hello", "world"]]

    def test_period_splits(self):
        assert split_sentences("One two. Three four.") == [
            ["One", "two."],
            ["Three", "four."],
        ]

    def test_question_and_exclamation(self):
        out = split_sentences("Really? Yes! Good.")
        assert len(out) == 3

    def test_quote_after_period(self):
        out = split_sentences('He said "stop." Then left.')
        assert len(out) == 2

    def test_no_split_without_trailing_space(self):
        # "3.14" or "www.att.com" must not be torn apart.
        assert split_sentences("pi is 3.14 exactly") == [["pi", "is", "3.14", "exactly"]]
        assert split_sentences("visit www.att.com today") == [
            ["visit", "www.att.com", "today"]
        ]

    def test_blank_input(self):
        assert split_sentences("  \n ") == []


class TestSplitPreformatted:
    def test_lines_become_sentences(self):
        out = split_preformatted("def f():\n    return 1\n")
        assert out == [["def f():"], ["    return 1"]]

    def test_indentation_preserved(self):
        a = split_preformatted("  x")
        b = split_preformatted("    x")
        assert a != b

    def test_blank_lines_skipped(self):
        assert split_preformatted("a\n\n\nb") == [["a"], ["b"]]
