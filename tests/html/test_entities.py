"""Tests for entity decoding/encoding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html.entities import decode_entities, encode_entities


class TestDecode:
    def test_named(self):
        assert decode_entities("Tom &amp; Jerry") == "Tom & Jerry"
        assert decode_entities("&lt;tag&gt;") == "<tag>"
        assert decode_entities("&quot;hi&quot;") == '"hi"'

    def test_numeric_decimal(self):
        assert decode_entities("&#65;") == "A"

    def test_numeric_hex(self):
        assert decode_entities("&#x41;") == "A"

    def test_missing_semicolon_tolerated(self):
        # 1995 HTML frequently omitted the semicolon.
        assert decode_entities("AT&amp T") == "AT& T"

    def test_unknown_entity_left_verbatim(self):
        assert decode_entities("&bogus;") == "&bogus;"

    def test_overflow_numeric_left_verbatim(self):
        assert decode_entities("&#99999999999;") == "&#99999999999;"

    def test_latin1_accents(self):
        assert decode_entities("caf&eacute;") == "café"

    def test_case_insensitive_names(self):
        assert decode_entities("&AMP;") == "&"


class TestEncode:
    def test_structural_characters(self):
        assert encode_entities("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_quote_mode(self):
        assert encode_entities('say "hi"', quote=True) == "say &quot;hi&quot;"
        assert encode_entities('say "hi"') == 'say "hi"'

    @given(st.text(alphabet="abc<>&\"'", max_size=50))
    @settings(max_examples=100)
    def test_roundtrip(self, text):
        assert decode_entities(encode_entities(text, quote=True)) == text
