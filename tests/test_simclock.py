"""Tests for the simulated clock, durations, and cron scheduler."""

import pytest

from repro.simclock import (
    DAY,
    HOUR,
    MINUTE,
    NEVER,
    WEEK,
    CronScheduler,
    SimClock,
    format_duration,
    format_timestamp,
    parse_duration,
)


class TestParseDuration:
    def test_table1_spellings(self):
        # The exact spellings appearing in the paper's Table 1.
        assert parse_duration("2d") == 2 * DAY
        assert parse_duration("0") == 0
        assert parse_duration("7d") == 7 * DAY
        assert parse_duration("12h") == 12 * HOUR
        assert parse_duration("1d") == DAY
        assert parse_duration("never") == NEVER

    def test_combined_units(self):
        assert parse_duration("1d12h") == DAY + 12 * HOUR
        assert parse_duration("1w") == WEEK
        assert parse_duration("2h30m") == 2 * HOUR + 30 * MINUTE
        assert parse_duration("45s") == 45

    def test_case_and_whitespace_insensitive(self):
        assert parse_duration(" 2D ") == 2 * DAY
        assert parse_duration("NEVER") == NEVER

    def test_bare_integer_is_seconds(self):
        assert parse_duration("90") == 90

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_duration("soon")
        with pytest.raises(ValueError):
            parse_duration("")
        with pytest.raises(ValueError):
            parse_duration("d2")

    def test_roundtrip(self):
        for text in ("2d", "12h", "1d2h3m4s", "7d", "0", "never"):
            assert format_duration(parse_duration(text)) == text

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            format_duration(-5)


class TestTimestampFormatting:
    def test_epoch(self):
        assert format_timestamp(0) == "Fri, 01 Sep 1995 00:00:00 GMT"

    def test_time_of_day(self):
        ts = 3 * HOUR + 25 * MINUTE + 7
        assert format_timestamp(ts) == "Fri, 01 Sep 1995 03:25:07 GMT"

    def test_month_rollover(self):
        # September has 30 days: day offset 30 lands on 1 Oct.
        assert "01 Oct 1995" in format_timestamp(30 * DAY)

    def test_year_rollover(self):
        # Sep(30) + Oct(31) + Nov(30) + Dec(31) = 122 days to 1 Jan 1996.
        assert "01 Jan 1996" in format_timestamp(122 * DAY)

    def test_1996_leap_day(self):
        # 1996 is a leap year: 122 days to Jan 1 + 31 + 28 = 181 -> 29 Feb.
        assert "29 Feb 1996" in format_timestamp(181 * DAY)

    def test_weekday_cycles(self):
        assert format_timestamp(DAY).startswith("Sat")
        assert format_timestamp(7 * DAY).startswith("Fri")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_timestamp(-1)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_advance_to_is_monotonic(self):
        clock = SimClock(100)
        clock.advance_to(50)  # no-op, never backwards
        assert clock.now == 100
        clock.advance_to(200)
        assert clock.now == 200

    def test_cannot_run_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_cannot_start_negative(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_httpdate_tracks_now(self):
        clock = SimClock()
        clock.advance(DAY)
        assert clock.httpdate().startswith("Sat, 02 Sep 1995")


class TestCronScheduler:
    def test_periodic_firing(self):
        clock = SimClock()
        cron = CronScheduler(clock)
        fires = []
        cron.schedule(HOUR, fires.append, name="hourly")
        count = cron.run_until(4 * HOUR)
        assert count == 4
        assert fires == [HOUR, 2 * HOUR, 3 * HOUR, 4 * HOUR]

    def test_clock_lands_on_deadline(self):
        clock = SimClock()
        cron = CronScheduler(clock)
        cron.schedule(HOUR, lambda now: None)
        cron.run_until(90 * MINUTE)
        assert clock.now == 90 * MINUTE

    def test_multiple_jobs_interleave(self):
        clock = SimClock()
        cron = CronScheduler(clock)
        log = []
        cron.schedule(2 * HOUR, lambda now: log.append(("a", now)))
        cron.schedule(3 * HOUR, lambda now: log.append(("b", now)))
        cron.run_until(6 * HOUR)
        # At the 6-hour tie, "b" fires first: it was re-queued at 3h,
        # before "a" was re-queued at 4h (FIFO among equal deadlines).
        assert log == [
            ("a", 2 * HOUR),
            ("b", 3 * HOUR),
            ("a", 4 * HOUR),
            ("b", 6 * HOUR),
            ("a", 6 * HOUR),
        ]

    def test_first_fire_override(self):
        clock = SimClock()
        cron = CronScheduler(clock)
        fires = []
        cron.schedule(DAY, fires.append, first_fire=0)
        cron.run_until(DAY)
        assert fires == [0, DAY]

    def test_cancel(self):
        clock = SimClock()
        cron = CronScheduler(clock)
        fires = []
        job = cron.schedule(HOUR, fires.append)
        cron.run_until(HOUR)
        cron.cancel(job)
        cron.run_until(5 * HOUR)
        assert fires == [HOUR]

    def test_zero_period_rejected(self):
        cron = CronScheduler(SimClock())
        with pytest.raises(ValueError):
            cron.schedule(0, lambda now: None)

    def test_pending_lists_enabled_jobs(self):
        cron = CronScheduler(SimClock())
        job_a = cron.schedule(HOUR, lambda now: None, name="a")
        job_b = cron.schedule(HOUR, lambda now: None, name="b")
        cron.cancel(job_a)
        names = sorted(j.name for j in cron.pending())
        assert names == ["b"]
        assert job_b.enabled
