"""Tests for merged-page rendering (Figure 2's format)."""

import re

from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.options import HtmlDiffOptions, PresentationMode
from repro.html.lexer import Tag, tokenize_html
from repro.html.model import is_empty_tag


def anchors_named(html):
    return re.findall(r'<A NAME="(aidediff\d+)">', html)


def hrefs(html):
    return re.findall(r'<A HREF="#(aidediff\d+)">', html)


class TestMergedPage:
    OLD = "<P>Keep one. Remove this sentence. Keep two.</P>"
    NEW = "<P>Keep one. Added sentence here. Keep two.</P>"

    def test_old_text_struck(self):
        result = html_diff(self.OLD, self.NEW)
        assert "<STRIKE>Remove this sentence.</STRIKE>" in result.html

    def test_new_text_emphasized(self):
        result = html_diff(self.OLD, self.NEW)
        assert "<STRONG><I>Added sentence here.</I></STRONG>" in result.html

    def test_common_text_plain(self):
        result = html_diff(self.OLD, self.NEW)
        assert "Keep one." in result.html
        assert "<STRIKE>Keep one." not in result.html

    def test_banner_present_with_count(self):
        result = html_diff(self.OLD, self.NEW)
        assert "AT&amp;T Internet Difference Engine" in result.html
        assert "[First difference]" in result.html

    def test_identical_documents(self):
        result = html_diff(self.OLD, self.OLD)
        assert result.identical
        assert result.difference_count == 0
        assert "identical" in result.html

    def test_arrow_chain_is_linked(self):
        old = "<P>One here.</P><P>Two here.</P><P>Three here.</P>"
        new = "<P>One changed entirely different.</P><P>Two here.</P><P>Three also changed a lot.</P>"
        result = html_diff(old, new)
        names = anchors_named(result.html)
        links = hrefs(result.html)
        # Banner is anchor 0; each difference i links to i+1; the last
        # links back to 0.
        assert "aidediff0" in names
        assert "aidediff1" in names
        for i in range(1, len(names) - 1):
            assert f"aidediff{i}" in names
        # Every link target exists.
        for target in links:
            assert target in names

    def test_old_markups_eliminated(self):
        # A deleted region containing a link: the link markup must not
        # survive into the merged page, but its text does (struck).
        old = '<P>Intro.</P><P>See <A HREF="http://gone/">the dead link</A> now.</P>'
        new = "<P>Intro.</P>"
        result = html_diff(old, new)
        assert "http://gone/" not in result.html
        assert "the dead link" in result.html

    def test_new_markups_survive(self):
        old = "<P>Intro.</P>"
        new = '<P>Intro.</P><P>See <A HREF="http://fresh/">the new link</A> now.</P>'
        result = html_diff(old, new)
        assert 'HREF="http://fresh/"' in result.html

    def test_changed_href_arrow_without_restyle(self):
        # Paper: "an arrow will point to the text of the anchor, but the
        # text itself will be in its original font."
        old = '<P>Go to <A HREF="http://old/">the page</A> please.</P>'
        new = '<P>Go to <A HREF="http://new/">the page</A> please.</P>'
        result = html_diff(old, new)
        assert result.difference_count == 1
        assert "<STRIKE>" not in result.html  # no word changed
        assert "<STRONG><I>" not in result.html
        assert 'HREF="http://new/"' in result.html
        assert "http://old/" not in result.html

    def test_word_level_refinement_in_fuzzy_match(self):
        old = "<P>The quick brown fox jumps over the dog.</P>"
        new = "<P>The quick red fox jumps over the dog.</P>"
        result = html_diff(old, new)
        assert "<STRIKE>brown</STRIKE>" in result.html
        assert "<STRONG><I>red</I></STRONG>" in result.html
        assert "<STRIKE>quick" not in result.html

    def test_refinement_can_be_disabled(self):
        options = HtmlDiffOptions(refine_matched_sentences=False)
        old = "<P>The quick brown fox jumps over the dog.</P>"
        new = "<P>The quick red fox jumps over the dog.</P>"
        result = html_diff(old, new, options)
        assert "<STRIKE>" not in result.html
        assert "red fox" in result.html  # new side rendered plain


class TestDensityFallback:
    def test_pervasive_change_suppresses_merge(self):
        old = "<P>" + " ".join(f"alpha{i} beta{i}." for i in range(20)) + "</P>"
        new = "<P>" + " ".join(f"gamma{i} delta{i}." for i in range(20)) + "</P>"
        result = html_diff(old, new)
        assert result.density_suppressed
        assert "too pervasive" in result.html
        assert "<STRIKE>" not in result.html

    def test_merge_fallback_mode(self):
        options = HtmlDiffOptions(density_fallback="merge")
        old = "<P>" + " ".join(f"alpha{i} beta{i}." for i in range(20)) + "</P>"
        new = "<P>" + " ".join(f"gamma{i} delta{i}." for i in range(20)) + "</P>"
        result = html_diff(old, new, options)
        assert not result.density_suppressed
        assert "<STRIKE>" in result.html

    def test_small_change_not_suppressed(self):
        old = "<P>" + " ".join(f"word{i} stays." for i in range(20)) + "</P>"
        new = old.replace("word3 stays.", "word3 changed.")
        result = html_diff(old, new)
        assert not result.density_suppressed


class TestOtherModes:
    # The changed sentences share no words, so they classify as a
    # disjoint OLD + NEW pair rather than a fuzzy match.
    OLD = "<P>Common text here.</P><P>Deleted material about gophers.</P>"
    NEW = "<P>Common text here.</P><P>Fresh paragraph concerning llamas.</P>"

    def test_only_differences_drops_common(self):
        options = HtmlDiffOptions(mode=PresentationMode.ONLY_DIFFERENCES)
        result = html_diff(self.OLD, self.NEW, options)
        assert "Common text here." not in result.html
        assert "Deleted material about gophers." in result.html
        assert "Fresh paragraph concerning llamas." in result.html

    def test_new_only_has_no_old_material(self):
        options = HtmlDiffOptions(mode=PresentationMode.NEW_ONLY)
        result = html_diff(self.OLD, self.NEW, options)
        assert "gophers" not in result.html
        assert "Fresh paragraph concerning llamas." in result.html
        assert "<STRIKE>" not in result.html

    def test_reversed_swaps_roles(self):
        options = HtmlDiffOptions(mode=PresentationMode.MERGED_REVERSED)
        result = html_diff(self.OLD, self.NEW, options)
        # Reversed: the NEW text is the one struck out.
        assert "<STRIKE>Fresh paragraph concerning llamas.</STRIKE>" in result.html

    def test_fuzzy_pair_refined_across_modes(self):
        # One word differs: the pair fuzzy-matches and both modes show
        # word-level refinement instead of whole-sentence replacement.
        old = "<P>Common text here.</P><P>Shared sentence with gophers.</P>"
        new = "<P>Common text here.</P><P>Shared sentence with llamas.</P>"
        result = html_diff(old, new)
        assert "<STRIKE>gophers.</STRIKE>" in result.html
        assert "<STRONG><I>llamas.</I></STRONG>" in result.html


class TestMergedPageWellFormedness:
    def test_balanced_output_on_restructuring_edit(self):
        # Paragraph becomes a list — the merge must stay balanced.
        old = "<P>First thing here. Second thing here.</P>"
        new = "<UL><LI>First thing here. <LI>Second thing here.</UL>"
        result = html_diff(old, new)
        stack = []
        for node in tokenize_html(result.html):
            if not isinstance(node, Tag):
                continue
            if not node.closing:
                if not is_empty_tag(node.name):
                    stack.append(node.name)
            else:
                assert stack and stack[-1] == node.name, result.html
                stack.pop()
        assert stack == []
