"""Tests for the HtmlDiff tokenizer."""

from repro.core.htmldiff.tokenizer import tokenize_document
from repro.core.htmldiff.tokens import BreakToken, InlineMarkup, SentenceToken, Word


def kinds(tokens):
    return ["B" if isinstance(t, BreakToken) else "S" for t in tokens]


class TestTokenization:
    def test_simple_paragraph(self):
        tokens = tokenize_document("<P>Hello world.</P>")
        assert kinds(tokens) == ["B", "S", "B"]
        assert tokens[1].words == ("Hello", "world.")

    def test_sentences_split_within_text(self):
        tokens = tokenize_document("One two. Three four.")
        sentences = [t for t in tokens if isinstance(t, SentenceToken)]
        assert len(sentences) == 2
        assert sentences[0].words == ("One", "two.")
        assert sentences[1].words == ("Three", "four.")

    def test_inline_markup_stays_in_sentence(self):
        tokens = tokenize_document("some <B>bold</B> words")
        sentences = [t for t in tokens if isinstance(t, SentenceToken)]
        assert len(sentences) == 1
        items = sentences[0].items
        assert isinstance(items[0], Word)
        assert isinstance(items[1], InlineMarkup)
        assert items[1].normalized == "<B>"

    def test_break_tags_flush_sentence(self):
        tokens = tokenize_document("before<HR>after")
        assert kinds(tokens) == ["S", "B", "S"]

    def test_anchor_is_inline_and_content_defining(self):
        tokens = tokenize_document('see <A HREF="x">the link</A> now')
        sentence = next(t for t in tokens if isinstance(t, SentenceToken))
        anchors = [
            i for i in sentence.items
            if isinstance(i, InlineMarkup) and i.normalized.startswith("<A ")
        ]
        assert anchors and anchors[0].content_defining

    def test_entities_decoded_in_words(self):
        tokens = tokenize_document("<P>AT&amp;T rocks</P>")
        sentence = next(t for t in tokens if isinstance(t, SentenceToken))
        assert sentence.words[0] == "AT&T"

    def test_comments_invisible(self):
        with_comment = tokenize_document("<P>text<!-- hidden --></P>")
        without = tokenize_document("<P>text</P>")
        assert [t.key for t in with_comment] == [t.key for t in without]

    def test_repair_applied(self):
        # Unclosed <B> gets a synthetic close, which lands in the
        # sentence as an inline markup.
        tokens = tokenize_document("<B>dangling")
        sentence = next(t for t in tokens if isinstance(t, SentenceToken))
        normals = [
            i.normalized for i in sentence.items if isinstance(i, InlineMarkup)
        ]
        assert "</B>" in normals

    def test_empty_document(self):
        assert tokenize_document("") == []

    def test_whitespace_only(self):
        assert tokenize_document("   \n\t  ") == []


class TestSentenceLength:
    def test_words_count(self):
        tokens = tokenize_document("one two three")
        assert tokens[0].length == 3

    def test_presentational_markup_not_counted(self):
        # Paper: "Markups such as <B> or <I> are not counted."
        tokens = tokenize_document("one <B>two</B> three")
        sentence = next(t for t in tokens if isinstance(t, SentenceToken))
        assert sentence.length == 3

    def test_content_defining_markup_counted(self):
        tokens = tokenize_document('word <IMG SRC="x.gif"> word2')
        sentence = next(t for t in tokens if isinstance(t, SentenceToken))
        assert sentence.length == 3  # 2 words + IMG

    def test_anchor_counted(self):
        tokens = tokenize_document('<A HREF="x">click</A>')
        sentence = next(t for t in tokens if isinstance(t, SentenceToken))
        # <A ...>, the word, </A>: opening anchor is content-defining,
        # the closing anchor is too (both carry the A name).
        assert sentence.length >= 2


class TestPreformatted:
    def test_each_line_is_a_sentence(self):
        tokens = tokenize_document("<PRE>line one\nline two</PRE>")
        sentences = [t for t in tokens if isinstance(t, SentenceToken)]
        assert len(sentences) == 2
        assert sentences[0].preformatted
        assert sentences[0].items[0].text == "line one"

    def test_indentation_is_content(self):
        a = tokenize_document("<PRE>  x</PRE>")
        b = tokenize_document("<PRE>    x</PRE>")
        sa = next(t for t in a if isinstance(t, SentenceToken))
        sb = next(t for t in b if isinstance(t, SentenceToken))
        assert sa.key != sb.key

    def test_normal_flow_resumes_after_pre(self):
        tokens = tokenize_document("<PRE>code</PRE>normal   words here")
        last = tokens[-1]
        assert isinstance(last, SentenceToken)
        assert not last.preformatted
        assert last.words == ("normal", "words", "here")

    def test_blank_pre_lines_ignored(self):
        tokens = tokenize_document("<PRE>a\n\n\nb</PRE>")
        sentences = [t for t in tokens if isinstance(t, SentenceToken)]
        assert len(sentences) == 2


class TestParagraphToListExample:
    """The paper's worked example: a paragraph of four sentences turned
    into a <UL> of four items shows no *content* change — the sentences
    all still match — only formatting (break tokens) changes."""

    PARA = (
        "<P>First sentence here. Second sentence here. "
        "Third sentence here. Fourth sentence here.</P>"
    )
    LIST = (
        "<UL><LI>First sentence here. <LI>Second sentence here. "
        "<LI>Third sentence here. <LI>Fourth sentence here.</UL>"
    )

    def test_same_sentences_either_way(self):
        para_sentences = [
            t.key for t in tokenize_document(self.PARA)
            if isinstance(t, SentenceToken)
        ]
        list_sentences = [
            t.key for t in tokenize_document(self.LIST)
            if isinstance(t, SentenceToken)
        ]
        assert para_sentences == list_sentences

    def test_breaks_differ(self):
        para_breaks = [
            t.normalized for t in tokenize_document(self.PARA)
            if isinstance(t, BreakToken)
        ]
        list_breaks = [
            t.normalized for t in tokenize_document(self.LIST)
            if isinstance(t, BreakToken)
        ]
        assert para_breaks != list_breaks
