"""Differential tests: the fast path must change nothing but speed.

The three optimization layers (exact fast lane + interning, bag-of-items
upper-bound pruning, anchor decomposition) are all required to be
output-neutral: ``html_diff`` with ``HtmlDiffOptions()`` must render
byte-identical pages to ``HtmlDiffOptions().reference()`` across the
synthetic revision workloads.  Canonicalization (matches of repeated
tokens slide to their earliest occurrences) is what makes this exact
rather than merely equal-weight.
"""

import random

import pytest

from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.matcher import TokenMatcher, match_tokens
from repro.core.htmldiff.options import HtmlDiffOptions
from repro.core.htmldiff.tokenizer import tokenize_document
from repro.workloads.mutate import MUTATORS, MutationMix
from repro.workloads.pagegen import PageGenerator

FAST = HtmlDiffOptions()
REFERENCE = FAST.reference()


def total_weight(pairs):
    return sum(w for _i, _j, w in pairs)


class TestOptionsPlumbing:
    def test_reference_turns_all_layers_off(self):
        assert REFERENCE.use_anchors is False
        assert REFERENCE.use_upper_bound_prefilter is False
        assert REFERENCE.use_exact_fast_lane is False
        # Unrelated knobs are untouched.
        assert REFERENCE.match_threshold == FAST.match_threshold

    def test_defaults_are_fast(self):
        assert FAST.use_anchors and FAST.use_upper_bound_prefilter
        assert FAST.use_exact_fast_lane

    def test_cache_key_distinguishes_paths(self):
        assert FAST.cache_key() != REFERENCE.cache_key()
        assert FAST.cache_key() == HtmlDiffOptions().cache_key()

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            HtmlDiffOptions(matcher_cache_size=-1).validate()


class TestByteIdentity:
    @pytest.mark.parametrize("op_name", sorted(MUTATORS))
    def test_every_operator(self, op_name):
        op = MUTATORS[op_name]
        for seed in range(5):
            rng = random.Random(seed)
            old = PageGenerator(seed=seed).page(paragraphs=8, links=6)
            new = op(old, rng)
            fast = html_diff(old, new, options=FAST)
            ref = html_diff(old, new, options=REFERENCE)
            assert fast.html == ref.html, f"{op_name} seed {seed}"

    def test_typical_mix_chains(self):
        for seed in range(8):
            mix = MutationMix.typical(seed=seed)
            page = PageGenerator(seed=seed).page(paragraphs=10, links=8)
            for _step in range(3):
                new = mix.apply(page)
                fast = html_diff(page, new, options=FAST)
                ref = html_diff(page, new, options=REFERENCE)
                assert fast.html == ref.html
                page = new

    def test_single_layer_ablations(self):
        """Each layer alone is also output-neutral, not just the trio."""
        old = PageGenerator(seed=3).page(paragraphs=8, links=6)
        mix = MutationMix.typical(seed=3)
        new = mix.apply(mix.apply(old))
        ref = html_diff(old, new, options=REFERENCE)
        for layer in ("use_anchors", "use_upper_bound_prefilter",
                      "use_exact_fast_lane"):
            options = REFERENCE.__class__(**{
                **{f: getattr(REFERENCE, f)
                   for f in REFERENCE.__dataclass_fields__},
                layer: True,
            })
            assert html_diff(old, new, options=options).html == ref.html, layer


class TestMatchWeightEquality:
    def test_match_tokens_same_weight_across_workload(self):
        """The ISSUE-level property: anchored matching carries exactly
        the reference optimum's weight on randomized revisions."""
        for seed in range(6):
            mix = MutationMix.typical(seed=seed)
            old_html = PageGenerator(seed=seed).page(paragraphs=9, links=7)
            new_html = mix.apply(old_html)
            old = tokenize_document(old_html)
            new = tokenize_document(new_html)
            fast_pairs = match_tokens(old, new, options=FAST)
            ref_pairs = match_tokens(old, new, options=REFERENCE)
            assert total_weight(fast_pairs) == pytest.approx(
                total_weight(ref_pairs)
            )
            assert fast_pairs == ref_pairs  # canonical forms agree


class TestMatcherStats:
    def test_stats_exposed_through_api(self):
        old = PageGenerator(seed=1).page(paragraphs=6, links=5)
        new = MUTATORS["edit_sentence"](old, random.Random(1))
        result = html_diff(old, new)
        stats = result.matcher_stats
        for key in ("cache_size", "cache_limit", "cache_evictions",
                    "prefilter_rejections", "upper_bound_rejections",
                    "inner_lcs_runs", "exact_lane_hits"):
            assert key in stats
        assert stats["cache_limit"] == HtmlDiffOptions().matcher_cache_size

    def test_upper_bound_rejections_counted(self):
        old = "<P>alpha beta gamma delta.</P>"
        new = "<P>epsilon zeta eta theta.</P>"
        matcher = TokenMatcher(HtmlDiffOptions(use_length_prefilter=False))
        html_diff(old, new, matcher=matcher)
        assert matcher.upper_bound_rejections >= 1
        assert matcher.inner_lcs_runs == 0  # the bound made the LCS moot

    def test_exact_lane_counts_identical_sentences(self):
        # Without interning the exact lane lives in the sentence-weight
        # computation; equal-key pairs must resolve there.
        doc = "<P>same sentence here.</P><P>and a second one.</P>"
        matcher = TokenMatcher(REFERENCE)
        result = html_diff(doc, doc, options=REFERENCE, matcher=matcher)
        assert result.identical
        assert matcher.exact_lane_hits >= 1
        assert matcher.inner_lcs_runs == 0

    def test_upper_bound_never_changes_weights(self):
        """The bound only skips LCS runs that could not have mattered."""
        for seed in range(4):
            old = PageGenerator(seed=seed).page(paragraphs=5, links=4)
            new = MutationMix.typical(seed=seed).apply(old)
            with_bound = TokenMatcher(HtmlDiffOptions())
            without = TokenMatcher(HtmlDiffOptions(
                use_upper_bound_prefilter=False))
            a, b = tokenize_document(old), tokenize_document(new)
            assert with_bound.match(a, b) == without.match(a, b)


class TestCacheBounding:
    def test_cache_stays_within_bound(self):
        options = HtmlDiffOptions(matcher_cache_size=8)
        matcher = TokenMatcher(options)
        gen = PageGenerator(seed=5)
        old = gen.page(paragraphs=10, links=6)
        new = MutationMix.typical(seed=5).apply(old)
        html_diff(old, new, options=options, matcher=matcher)
        assert len(matcher._cache) <= 8
        assert len(matcher._bags) <= 8

    def test_eviction_counter_increments(self):
        options = HtmlDiffOptions(matcher_cache_size=2,
                                  use_length_prefilter=False,
                                  use_upper_bound_prefilter=False)
        matcher = TokenMatcher(options)
        docs = [f"<P>word{i} common tail here.</P>" for i in range(4)]
        for i in range(len(docs) - 1):
            html_diff(docs[i], docs[i + 1], options=options, matcher=matcher)
        assert matcher.cache_evictions > 0
        assert matcher.stats()["cache_evictions"] == matcher.cache_evictions

    def test_zero_means_unbounded(self):
        options = HtmlDiffOptions(matcher_cache_size=0)
        matcher = TokenMatcher(options)
        old = PageGenerator(seed=2).page(paragraphs=8, links=5)
        new = MutationMix.typical(seed=2).apply(old)
        html_diff(old, new, options=options, matcher=matcher)
        assert matcher.cache_evictions == 0
