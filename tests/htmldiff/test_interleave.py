"""Tests for the §5.3 interspersion limit (max_interleave)."""

from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.options import HtmlDiffOptions

# Many scattered single-word edits in one long sentence: word-level
# refinement would alternate struck/emphasized runs many times.
OLD = ("<P>alpha one beta two gamma three delta four epsilon five "
       "zeta six eta seven theta eight</P>")
NEW = ("<P>alpha ONE beta TWO gamma THREE delta FOUR epsilon FIVE "
       "zeta six eta seven theta eight</P>")

# A single contiguous edit: refinement stays readable.
SIMPLE_OLD = "<P>the quick brown fox jumps over the lazy dog today</P>"
SIMPLE_NEW = "<P>the quick red fox jumps over the lazy dog today</P>"


class TestInterleaveLimit:
    def test_muddled_sentence_falls_back_to_block_rendering(self):
        result = html_diff(OLD, NEW, HtmlDiffOptions(max_interleave=6))
        # Whole-sentence fallback: exactly one struck run and one
        # emphasized run, not five of each.
        assert result.html.count("<STRIKE>") == 1
        assert result.html.count("<STRONG><I>") == 1
        # Both complete sentences are present.
        assert "alpha one beta two" in result.html
        assert "alpha ONE beta TWO" in result.html

    def test_limit_zero_disables_fallback(self):
        result = html_diff(OLD, NEW, HtmlDiffOptions(max_interleave=0))
        assert result.html.count("<STRIKE>") == 5
        assert result.html.count("<STRONG><I>") == 5

    def test_simple_edit_still_refined(self):
        result = html_diff(SIMPLE_OLD, SIMPLE_NEW,
                           HtmlDiffOptions(max_interleave=6))
        assert "<STRIKE>brown</STRIKE>" in result.html
        assert "<STRONG><I>red</I></STRONG>" in result.html
        # Context words stay plain.
        assert "<STRIKE>the" not in result.html

    def test_generous_limit_keeps_interleaving(self):
        result = html_diff(OLD, NEW, HtmlDiffOptions(max_interleave=100))
        assert result.html.count("<STRIKE>") == 5

    def test_default_limit_guards_muddle(self):
        result = html_diff(OLD, NEW)  # default max_interleave=6
        assert result.html.count("<STRIKE>") == 1
