"""Tests for web-aware / version-aware comparison (Section 5.3)."""

import pytest

from repro.core.htmldiff.webaware import (
    EntityChecksumStore,
    WebAwareDiffer,
)
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("pics.com")
    server.set_page("/logo.gif", "GIF-BYTES-V1", content_type="image/gif")
    server.set_page("/photo.gif", "PHOTO-V1", content_type="image/gif")
    agent = UserAgent(network, clock)
    return clock, network, server, agent


PAGE_V1 = (
    '<HTML><BODY><P>Our logo: <IMG SRC="http://pics.com/logo.gif"> '
    "unchanged text here.</P></BODY></HTML>"
)
PAGE_V2 = (
    '<HTML><BODY><P>Our logo: <IMG SRC="http://pics.com/logo.gif"> '
    "unchanged text here, nearly.</P></BODY></HTML>"
)


class TestEntityChecksumStore:
    def test_first_sighting_not_a_change(self):
        store = EntityChecksumStore()
        assert not store.update("http://x/img.gif", "bytes1")

    def test_changed_bytes_detected(self):
        store = EntityChecksumStore()
        store.update("http://x/img.gif", "bytes1")
        assert store.update("http://x/img.gif", "bytes2")
        assert not store.update("http://x/img.gif", "bytes2")

    def test_url_normalization(self):
        store = EntityChecksumStore()
        store.update("HTTP://X.COM:80/img.gif", "bytes1")
        assert store.known("http://x.com/img.gif")


class TestImageChangeDetection:
    def test_plain_htmldiff_misses_image_change(self, world):
        # The paper's complaint, reproduced: bytes change, URL doesn't,
        # plain HtmlDiff sees nothing.
        from repro.core.htmldiff.api import html_diff

        result = html_diff(PAGE_V1, PAGE_V1)
        assert result.identical

    def test_webaware_catches_image_change(self, world):
        clock, network, server, agent = world
        differ = WebAwareDiffer(agent)
        differ.prime_entities(PAGE_V1, "http://site.com/page.html")
        server.set_page("/logo.gif", "GIF-BYTES-V2", content_type="image/gif")
        result = differ.diff(PAGE_V1, PAGE_V1, "http://site.com/page.html")
        assert len(result.entity_changes) == 1
        assert result.entity_changes[0].url == "http://pics.com/logo.gif"
        assert "Changes beyond this page" in result.html

    def test_unchanged_image_not_flagged(self, world):
        clock, network, server, agent = world
        differ = WebAwareDiffer(agent)
        differ.prime_entities(PAGE_V1, "http://site.com/page.html")
        result = differ.diff(PAGE_V1, PAGE_V2, "http://site.com/page.html")
        assert result.entity_changes == []
        # The text edit still shows as an ordinary page difference.
        assert result.page.difference_count == 1

    def test_image_with_changed_markup_left_to_htmldiff(self, world):
        clock, network, server, agent = world
        differ = WebAwareDiffer(agent)
        v2 = PAGE_V1.replace("logo.gif", "photo.gif")
        differ.prime_entities(PAGE_V1, "http://site.com/page.html")
        result = differ.diff(PAGE_V1, v2, "http://site.com/page.html")
        # URL changed -> plain HtmlDiff territory; no entity rows.
        assert result.entity_changes == []
        assert result.page.difference_count >= 1

    def test_unreachable_entity_tolerated(self, world):
        clock, network, server, agent = world
        differ = WebAwareDiffer(agent)
        page = '<P><IMG SRC="http://gone.example/x.gif"> text.</P>'
        differ.prime_entities(page, "http://site.com/")
        result = differ.diff(page, page, "http://site.com/")
        assert result.entity_changes == []


class TestRecursiveDiff:
    def make_store(self, world):
        clock, network, server, agent = world
        site = network.create_server("site.com")
        site.set_page("/sub.html", "<P>sub page first version here.</P>")
        store = SnapshotStore(clock, agent)
        store.remember("u", "http://site.com/sub.html")
        clock.advance(DAY)
        site.set_page("/sub.html", "<P>sub page rewritten completely anew.</P>")
        store.remember("u", "http://site.com/sub.html")
        return store

    PARENT = (
        '<HTML><BODY><P>See <A HREF="http://site.com/sub.html">the '
        "subpage</A> for details.</P></BODY></HTML>"
    )

    def test_nested_diff_of_referenced_page(self, world):
        clock, network, server, agent = world
        store = self.make_store(world)
        differ = WebAwareDiffer(agent, snapshot_store=store)
        result = differ.diff(self.PARENT, self.PARENT, "http://hub.org/")
        assert "http://site.com/sub.html" in result.nested
        assert not result.nested["http://site.com/sub.html"].identical
        assert "referenced page changed" in result.html
        assert result.total_changes == 1

    def test_depth_limit(self, world):
        clock, network, server, agent = world
        store = self.make_store(world)
        differ = WebAwareDiffer(agent, snapshot_store=store, max_depth=0)
        result = differ.diff(self.PARENT, self.PARENT, "http://hub.org/")
        assert result.nested == {}

    def test_single_revision_pages_skipped(self, world):
        clock, network, server, agent = world
        site = network.create_server("site.com")
        site.set_page("/once.html", "<P>only ever one version.</P>")
        store = SnapshotStore(clock, agent)
        store.remember("u", "http://site.com/once.html")
        parent = '<P><A HREF="http://site.com/once.html">link</A> text.</P>'
        differ = WebAwareDiffer(agent, snapshot_store=store)
        result = differ.diff(parent, parent, "http://hub.org/")
        assert result.nested == {}

    def test_new_links_not_recursed(self, world):
        # A link present only in the new version is already flagged by
        # plain HtmlDiff as new content; recursion targets shared links.
        clock, network, server, agent = world
        store = self.make_store(world)
        differ = WebAwareDiffer(agent, snapshot_store=store)
        old = "<P>No links at all here.</P>"
        result = differ.diff(old, self.PARENT, "http://hub.org/")
        assert result.nested == {}
