"""Reproduction of Figure 2: HtmlDiff over two USENIX home-page versions.

"Output of HtmlDiff showing the differences between a subset of two
versions of the USENIX Association home page (as of 9/29/95 and
11/3/95).  Small arrows point to changes, with bold italics indicating
additions and with deleted text struck out.  The banner at the top of
the page was inserted by HtmlDiff."
"""

import re

from repro.core.htmldiff.api import html_diff
from repro.web.sites import usenix_home_v1, usenix_home_v2


class TestFigure2:
    def result(self):
        return html_diff(usenix_home_v1(), usenix_home_v2())

    def test_differences_found(self):
        result = self.result()
        assert not result.identical
        assert result.difference_count >= 2

    def test_banner_inserted_at_top(self):
        result = self.result()
        body_pos = result.html.lower().find("<body>")
        banner_pos = result.html.find("AT&amp;T Internet Difference Engine")
        assert banner_pos > body_pos >= 0
        # The banner precedes all page content.
        assert banner_pos < result.html.find("Upcoming Events")

    def test_new_event_emphasized(self):
        # The 1996 Technical Conference entry was added in v2.
        result = self.result()
        assert "1996 USENIX Technical Conference" in result.html
        match = re.search(
            r"<STRONG><I>[^<]*1996 USENIX Technical Conference", result.html
        )
        assert match, "added event not emphasized"

    def test_dropped_event_struck(self):
        # The LISA IX entry (September 1995) was dropped in v2.
        result = self.result()
        assert re.search(r"<STRIKE>[^<]*LISA IX", result.html)

    def test_dropped_event_link_eliminated(self):
        # Old markups are eliminated: the dead /events/lisa95/ HREF must
        # not survive, even though its text appears struck out.
        result = self.result()
        assert "/events/lisa95/" not in result.html

    def test_rewritten_registration_paragraph(self):
        # "available in October" -> "available online": word-level edits.
        result = self.result()
        assert "<STRIKE>" in result.html
        assert "<STRONG><I>" in result.html

    def test_unchanged_material_plain(self):
        result = self.result()
        # The membership sentence is identical in both versions.
        assert ";login:" in result.html
        assert "<STRIKE>Members" not in result.html
        assert "<STRONG><I>Members" not in result.html

    def test_arrow_chain_navigable(self):
        result = self.result()
        names = set(re.findall(r'<A NAME="(aidediff\d+)">', result.html))
        links = re.findall(r'<A HREF="#(aidediff\d+)">', result.html)
        assert links, "no chain links at all"
        for target in links:
            assert target in names, f"dangling chain link to {target}"

    def test_arrows_use_both_images(self):
        result = self.result()
        assert "old-arrow.gif" in result.html or "new-arrow.gif" in result.html

    def test_merged_not_density_suppressed(self):
        # Figure 2's edit is realistic, well under the density ceiling.
        assert not self.result().density_suppressed
