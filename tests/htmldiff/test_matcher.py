"""Tests for token matching: break equality and two-step sentence match."""

import pytest

from repro.core.htmldiff.matcher import TokenMatcher, match_tokens
from repro.core.htmldiff.options import HtmlDiffOptions
from repro.core.htmldiff.tokenizer import tokenize_document
from repro.core.htmldiff.tokens import BreakToken, SentenceToken


def sentence(text):
    tokens = tokenize_document(text)
    out = [t for t in tokens if isinstance(t, SentenceToken)]
    assert len(out) == 1, f"expected one sentence from {text!r}"
    return out[0]


def break_token(html):
    tokens = tokenize_document(html)
    return next(t for t in tokens if isinstance(t, BreakToken))


class TestBreakMatching:
    def test_identical_breaks_match_weight_one(self):
        matcher = TokenMatcher()
        assert matcher.weight(break_token("<P>"), break_token("<P>")) == 1.0

    def test_case_whitespace_attr_order_insensitive(self):
        matcher = TokenMatcher()
        a = break_token('<h1 align="center" class=x>')
        b = break_token("<H1  CLASS=X  ALIGN='CENTER'>")
        assert matcher.weight(a, b) == 1.0

    def test_different_breaks_do_not_match(self):
        # The paragraph-to-list case: <P> never matches <UL>.
        matcher = TokenMatcher()
        assert matcher.weight(break_token("<P>"), break_token("<UL>")) == 0.0

    def test_different_attrs_do_not_match(self):
        matcher = TokenMatcher()
        a = break_token('<H1 ALIGN="left">')
        b = break_token('<H1 ALIGN="center">')
        assert matcher.weight(a, b) == 0.0

    def test_break_never_matches_sentence(self):
        matcher = TokenMatcher()
        assert matcher.weight(break_token("<P>"), sentence("words here")) == 0.0
        assert matcher.weight(sentence("words here"), break_token("<P>")) == 0.0


class TestSentenceMatching:
    def test_identical_sentences_full_weight(self):
        matcher = TokenMatcher()
        a = sentence("one two three four")
        assert matcher.weight(a, sentence("one two three four")) == 4.0

    def test_one_word_changed_still_matches(self):
        matcher = TokenMatcher()
        w = matcher.weight(
            sentence("one two three four five"),
            sentence("one two CHANGED four five"),
        )
        assert w == 4.0  # the 4 surviving words

    def test_disjoint_sentences_do_not_match(self):
        matcher = TokenMatcher()
        assert matcher.weight(
            sentence("alpha beta gamma"), sentence("delta epsilon zeta")
        ) == 0.0

    def test_length_prefilter_rejects_gross_mismatch(self):
        matcher = TokenMatcher()
        short = sentence("word")
        long = sentence("word " + "other " * 20)
        assert matcher.weight(short, long) == 0.0
        assert matcher.prefilter_rejections >= 1
        assert matcher.inner_lcs_runs == 0

    def test_prefilter_disabled_runs_inner_lcs(self):
        options = HtmlDiffOptions(use_length_prefilter=False,
                                  use_upper_bound_prefilter=False)
        matcher = TokenMatcher(options)
        short = sentence("word")
        long = sentence("word " + "other " * 20)
        matcher.weight(short, long)
        assert matcher.inner_lcs_runs == 1

    def test_threshold_boundary(self):
        # 2W/L exactly at the default 0.5 threshold passes (>= compare).
        matcher = TokenMatcher()
        a = sentence("a b c d")
        b = sentence("a b x y")
        # W=2, L=8 -> 2*2/8 = 0.5
        assert matcher.weight(a, b) == 2.0

    def test_below_threshold_rejected(self):
        matcher = TokenMatcher()
        a = sentence("a b c d e")
        b = sentence("a x y z w")
        # W=1, L=10 -> 0.2 < 0.5
        assert matcher.weight(a, b) == 0.0

    def test_markup_only_changes_keep_match(self):
        # Changing <B> to <I> around the same words: W unchanged.
        matcher = TokenMatcher()
        a = sentence("alpha <B>beta</B> gamma")
        b = sentence("alpha <I>beta</I> gamma")
        assert matcher.weight(a, b) == 3.0

    def test_changed_href_weight_drops_but_matches(self):
        # The paper's anchor example: URL changed, text identical.
        matcher = TokenMatcher()
        a = sentence('visit <A HREF="http://old/">our page</A> today')
        b = sentence('visit <A HREF="http://new/">our page</A> today')
        w = matcher.weight(a, b)
        assert w == 4.0  # the 4 words; the anchors no longer match

    def test_weight_memoized(self):
        matcher = TokenMatcher()
        a = sentence("one two three")
        b = sentence("one two four")
        matcher.weight(a, b)
        runs = matcher.inner_lcs_runs
        matcher.weight(a, b)
        matcher.weight(b, a)  # symmetric cache entry
        assert matcher.inner_lcs_runs == runs

    def test_empty_content_sentences(self):
        matcher = TokenMatcher()
        a = sentence("<B></B>")
        assert matcher.weight(a, sentence("<B></B>")) == 0.5
        assert matcher.weight(a, sentence("<I></I>")) == 0.0


class TestMatchTokens:
    def test_stream_matching(self):
        old = tokenize_document("<P>Keep this sentence.</P><P>Drop this one.</P>")
        new = tokenize_document("<P>Keep this sentence.</P><P>Added instead here.</P>")
        matches = match_tokens(old, new)
        matched_old = {i for i, _, _ in matches}
        # The kept sentence and the <P>/</P> breaks match.
        assert 1 in matched_old  # the kept sentence (index 1 after <P>)

    def test_identical_streams_match_fully(self):
        doc = "<P>Alpha beta.</P><UL><LI>item</UL>"
        old = tokenize_document(doc)
        new = tokenize_document(doc)
        matches = match_tokens(old, new)
        assert len(matches) == len(old) == len(new)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            TokenMatcher(HtmlDiffOptions(match_threshold=1.5))
