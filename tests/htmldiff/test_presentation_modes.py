"""Deeper tests of the non-default presentation modes (§5.2)."""

import re

from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.options import HtmlDiffOptions, PresentationMode
from repro.web.sites import usenix_home_v1, usenix_home_v2


def mode_result(mode, old=None, new=None, **kwargs):
    options = HtmlDiffOptions(mode=mode, **kwargs)
    return html_diff(old or usenix_home_v1(), new or usenix_home_v2(), options)


class TestOnlyDifferences:
    def test_regions_separated_by_rules(self):
        result = mode_result(PresentationMode.ONLY_DIFFERENCES)
        # One <HR> opens each changed region.
        assert result.html.count("<HR>") >= result.difference_count

    def test_banner_present(self):
        result = mode_result(PresentationMode.ONLY_DIFFERENCES)
        assert "Internet Difference Engine" in result.html
        assert "[First difference]" in result.html

    def test_chain_links_resolve(self):
        result = mode_result(PresentationMode.ONLY_DIFFERENCES)
        names = set(re.findall(r'<A NAME="(aidediff\d+)">', result.html))
        for target in re.findall(r'<A HREF="#(aidediff\d+)">', result.html):
            assert target in names

    def test_common_boilerplate_absent(self):
        # "eliminate the common part": the unchanged membership sentence
        # must not appear.
        result = mode_result(PresentationMode.ONLY_DIFFERENCES)
        assert "six times a year" not in result.html

    def test_identical_documents_have_empty_body(self):
        doc = usenix_home_v1()
        result = mode_result(PresentationMode.ONLY_DIFFERENCES, doc, doc)
        assert result.identical
        assert "identical" in result.html


class TestNewOnly:
    def test_no_strike_anywhere(self):
        result = mode_result(PresentationMode.NEW_ONLY)
        assert "<STRIKE>" not in result.html

    def test_arrows_point_at_new_material(self):
        result = mode_result(PresentationMode.NEW_ONLY)
        assert "new-arrow.gif" in result.html
        assert "old-arrow.gif" not in result.html

    def test_new_document_structure_preserved(self):
        result = mode_result(PresentationMode.NEW_ONLY)
        # Every structural element of v2 survives.
        for marker in ("<H1>", "<H2>", "<UL>", "<ADDRESS>"):
            assert result.html.count(marker) == usenix_home_v2().count(marker)

    def test_banner_counts_additions(self):
        result = mode_result(PresentationMode.NEW_ONLY)
        assert re.search(r"HtmlDiff found \d+ addition", result.html)


class TestMergedReversed:
    def test_new_markups_eliminated_old_intact(self):
        # v2 added /events/usenix96/; reversed, that markup must vanish
        # while v1's /events/lisa95/ (dropped in v2) stays live.
        result = mode_result(PresentationMode.MERGED_REVERSED)
        assert "/events/usenix96/" not in result.html
        assert '/events/lisa95/' in result.html

    def test_roles_fully_swapped(self):
        result = mode_result(PresentationMode.MERGED_REVERSED)
        # The v2-only event text is struck; the v1-only event emphasized.
        assert re.search(r"<STRIKE>[^<]*1996 USENIX Technical", result.html)
        assert re.search(r"<STRONG><I>[^<]*LISA IX", result.html)


class TestChainIntegrityOnMarkupOnlyRegions:
    def test_markup_only_old_region_keeps_anchor(self):
        # A deleted region consisting purely of old markups renders no
        # text — its chain anchor must still exist in every mode.
        old = "<P>keep this text.</P><HR><P>keep this too.</P>"
        new = "<P>keep this text.</P><P>keep this too.</P>"
        for mode in (PresentationMode.MERGED, PresentationMode.ONLY_DIFFERENCES):
            result = mode_result(mode, old, new)
            names = set(re.findall(r'<A NAME="(aidediff\d+)">', result.html))
            links = re.findall(r'<A HREF="#(aidediff\d+)">', result.html)
            for target in links:
                assert target in names, (mode, result.html)
