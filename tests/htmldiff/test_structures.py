"""HtmlDiff over structured documents: tables, nested lists, PRE blocks."""

from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.options import HtmlDiffOptions


class TestTables:
    OLD = (
        "<TABLE>\n"
        "<TR><TH>Conference</TH><TH>Date</TH></TR>\n"
        "<TR><TD>LISA IX</TD><TD>September 1995</TD></TR>\n"
        "<TR><TD>USENIX Technical</TD><TD>January 1996</TD></TR>\n"
        "</TABLE>"
    )

    def test_cell_edit_detected(self):
        new = self.OLD.replace("January 1996", "January 22-26, 1996")
        result = html_diff(self.OLD, new)
        assert not result.identical
        assert "<STRONG><I>" in result.html

    def test_row_added(self):
        new = self.OLD.replace(
            "</TABLE>",
            "<TR><TD>COOTS</TD><TD>June 1996</TD></TR>\n</TABLE>",
        )
        result = html_diff(self.OLD, new)
        assert not result.identical
        assert "COOTS" in result.html
        # Existing rows stay unhighlighted.
        assert "<STRIKE>LISA" not in result.html

    def test_row_deleted_content_struck(self):
        new = self.OLD.replace(
            "<TR><TD>LISA IX</TD><TD>September 1995</TD></TR>\n", ""
        )
        result = html_diff(self.OLD, new)
        assert "<STRIKE>LISA IX</STRIKE>" in result.html
        # The deleted row's cell markup is eliminated, not emitted.
        assert result.html.count("<TR>") == new.count("<TR>")


class TestNestedLists:
    OLD = (
        "<UL>\n"
        "<LI>Systems\n"
        "<UL><LI>File systems<LI>Networks</UL>\n"
        "<LI>Theory\n"
        "</UL>"
    )

    def test_inner_item_added(self):
        new = self.OLD.replace("<LI>Networks", "<LI>Networks<LI>Caching")
        result = html_diff(self.OLD, new)
        assert "Caching" in result.html
        assert not result.identical

    def test_inner_item_renamed(self):
        new = self.OLD.replace("File systems", "Distributed file systems")
        result = html_diff(self.OLD, new)
        assert "<STRONG><I>Distributed" in result.html

    def test_unchanged_nesting_identical(self):
        assert html_diff(self.OLD, self.OLD).identical


class TestPreformatted:
    OLD = (
        "<P>The algorithm:</P>\n"
        "<PRE>\n"
        "for page in hotlist:\n"
        "    check(page)\n"
        "    report(page)\n"
        "</PRE>"
    )

    def test_line_edit_detected(self):
        new = self.OLD.replace("    check(page)", "    check(page, force=True)")
        result = html_diff(self.OLD, new)
        assert not result.identical

    def test_indentation_change_detected(self):
        # Whitespace IS content inside <PRE>.
        new = self.OLD.replace("    report(page)", "        report(page)")
        result = html_diff(self.OLD, new)
        assert not result.identical

    def test_whitespace_outside_pre_still_ignored(self):
        new = self.OLD.replace("<P>The algorithm:</P>",
                               "<P>The   algorithm:</P>")
        assert html_diff(self.OLD, new).identical

    def test_line_added_shown(self):
        new = self.OLD.replace("</PRE>", "    archive(page)\n</PRE>")
        result = html_diff(self.OLD, new)
        assert "archive(page)" in result.html
        assert not result.identical


class TestMixedStructure:
    def test_paragraph_moved_between_sections(self):
        # Moving a sentence across structure: LCS keeps only one copy
        # matched; the other side shows as change.
        old = (
            "<H2>Alpha</H2><P>Shared sentence lives here.</P>"
            "<H2>Beta</H2><P>Beta content stays.</P>"
        )
        new = (
            "<H2>Alpha</H2><P>Alpha content arrives.</P>"
            "<H2>Beta</H2><P>Shared sentence lives here.</P>"
        )
        result = html_diff(old, new, HtmlDiffOptions(density_fallback="merge"))
        assert not result.identical
        assert "Shared sentence lives here." in result.html

    def test_heading_level_change_is_structural(self):
        old = "<H2>Status report</H2><P>All is well.</P>"
        new = "<H3>Status report</H3><P>All is well.</P>"
        result = html_diff(old, new)
        # The words all match; the break markups differ.
        assert "<STRIKE>" not in result.html
        assert not result.identical
