"""Property-based tests over the whole HtmlDiff pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.htmldiff.api import html_diff
from repro.core.htmldiff.classify import EntryClass, classify_documents
from repro.core.htmldiff.options import HtmlDiffOptions
from repro.core.htmldiff.tokenizer import tokenize_document
from repro.html.lexer import Tag, tokenize_html
from repro.html.model import is_empty_tag

# Small HTML fragments that compose into plausible documents.
fragment = st.sampled_from([
    "<P>", "</P>", "<UL>", "<LI>", "</UL>", "<HR>", "<B>", "</B>",
    "<H1>", "</H1>", '<A HREF="http://x/">', "</A>", '<IMG SRC="i.gif">',
    "alpha ", "beta ", "gamma. ", "delta epsilon. ", "zeta ",
])
document = st.lists(fragment, max_size=25).map("".join)


def html_is_balanced(html):
    stack = []
    for node in tokenize_html(html):
        if not isinstance(node, Tag):
            continue
        if not node.closing:
            if not is_empty_tag(node.name):
                stack.append(node.name)
        else:
            if not stack or stack[-1] != node.name:
                return False
            stack.pop()
    return not stack


class TestPipelineProperties:
    @given(document)
    @settings(max_examples=100, deadline=None)
    def test_self_diff_is_identical(self, doc):
        result = html_diff(doc, doc)
        assert result.identical
        assert result.difference_count == 0

    @given(document, document)
    @settings(max_examples=100, deadline=None)
    def test_never_raises_and_output_balanced(self, old, new):
        result = html_diff(old, new)
        assert html_is_balanced(result.html), result.html

    @given(document, document)
    @settings(max_examples=100, deadline=None)
    def test_classification_covers_all_tokens(self, old, new):
        old_tokens = tokenize_document(old)
        new_tokens = tokenize_document(new)
        diff = classify_documents(old_tokens, new_tokens)
        old_seen = sum(
            1 for e in diff.entries
            if e.cls in (EntryClass.OLD, EntryClass.COMMON)
        )
        new_seen = sum(
            1 for e in diff.entries
            if e.cls in (EntryClass.NEW, EntryClass.COMMON)
        )
        assert old_seen == len(old_tokens)
        assert new_seen == len(new_tokens)

    @given(document, document)
    @settings(max_examples=60, deadline=None)
    def test_density_bounded(self, old, new):
        result = html_diff(old, new, HtmlDiffOptions(density_fallback="merge"))
        assert 0.0 <= result.change_density <= 1.0

    @given(document)
    @settings(max_examples=60, deadline=None)
    def test_diff_against_empty_marks_everything_new(self, doc):
        result = html_diff("", doc, HtmlDiffOptions(density_fallback="merge"))
        assert "<STRIKE>" not in result.html

    @given(document, document)
    @settings(max_examples=80, deadline=None)
    def test_no_content_loss(self, old, new):
        # The merged page must carry every word of BOTH versions: new
        # words live (possibly emphasized), old words struck out.  Words
        # are compared through the tokenizer so entity encoding and
        # highlight markup wash out.
        options = HtmlDiffOptions(density_fallback="merge")
        result = html_diff(old, new, options)

        def words_of(source):
            out = set()
            for token in tokenize_document(source):
                if hasattr(token, "words"):
                    out.update(token.words)
            return out

        merged_words = words_of(result.html)
        assert words_of(new) <= merged_words
        assert words_of(old) <= merged_words

    @given(document, document)
    @settings(max_examples=60, deadline=None)
    def test_new_only_mode_preserves_new_document(self, old, new):
        from repro.core.htmldiff.options import PresentationMode

        options = HtmlDiffOptions(mode=PresentationMode.NEW_ONLY)
        result = html_diff(old, new, options)

        def words_of(source):
            out = set()
            for token in tokenize_document(source):
                if hasattr(token, "words"):
                    out.update(token.words)
            return out

        assert words_of(new) <= words_of(result.html)

    @given(document, document)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_of_match_weight(self, old, new):
        # Matched *pair counts* may legitimately differ between
        # directions (two weight-1 break matches tie with one weight-2
        # sentence match), but total matched weight is direction-free.
        forward = classify_documents(
            tokenize_document(old), tokenize_document(new)
        )
        backward = classify_documents(
            tokenize_document(new), tokenize_document(old)
        )
        forward_weight = sum(
            e.weight for e in forward.entries if e.cls is EntryClass.COMMON
        )
        backward_weight = sum(
            e.weight for e in backward.entries if e.cls is EntryClass.COMMON
        )
        assert forward_weight == backward_weight
