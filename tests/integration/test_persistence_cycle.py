"""Integration: a deployment survives a server restart via the disk
repository (archives as ,v files + the user control file)."""

import pytest

from repro.aide.engine import Aide
from repro.core.snapshot.persistence import load_store, save_store
from repro.core.w3newer.hotlist import Hotlist
from repro.simclock import DAY, WEEK
from repro.workloads.scenario import build_hotlist, build_web


class TestRestartCycle:
    def test_full_cycle(self, tmp_path):
        # --- phase 1: a week of use --------------------------------
        web = build_web(sites=5, pages_per_site=6, seed=21)
        aide = Aide(clock=web.clock, network=web.network)
        hotlist = build_hotlist(web, size=10, seed=4)
        user = aide.add_user("fred@att.com", hotlist)
        for day in range(1, 8):
            web.cron.run_until(day * DAY)
            run = aide.run_w3newer("fred@att.com")
            for outcome in run.changed[:3]:
                aide.remember("fred@att.com", outcome.url)
        archived_before = aide.store.url_count()
        assert archived_before > 0
        save_store(aide.store, str(tmp_path))

        # --- phase 2: the service process restarts ------------------
        # Same simulated world, brand-new store loaded from disk.
        restarted = Aide(clock=web.clock, network=web.network,
                         use_proxy=False)
        loaded = load_store(restarted.store, str(tmp_path))
        assert loaded == archived_before

        # Histories and seen-versions survive: diffing against the
        # user's last-saved version still works after more changes.
        web.cron.run_until(2 * WEEK)
        url = restarted.store.users.urls_for("fred@att.com")[0]
        result = restarted.store.diff("fred@att.com", url)
        assert result is not None

        # New check-ins continue the revision sequence.
        before = restarted.store.archive_for(url).revision_count
        restarted.store.remember("fred@att.com", url)
        after = restarted.store.archive_for(url).revision_count
        assert after >= before

    def test_double_save_is_idempotent(self, tmp_path):
        web = build_web(sites=2, pages_per_site=3, seed=22)
        aide = Aide(clock=web.clock, network=web.network)
        aide.store.remember("u", web.urls[0])
        save_store(aide.store, str(tmp_path))
        first = (tmp_path / "MANIFEST").read_text()
        save_store(aide.store, str(tmp_path))
        assert (tmp_path / "MANIFEST").read_text() == first
