"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; if one breaks, the README's
promises break with it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert ": OK" in result.stdout, f"{name} did not print its OK marker"


def test_every_example_is_listed_in_readme():
    readme_path = os.path.join(EXAMPLES_DIR, "..", "README.md")
    with open(readme_path) as handle:
        readme = handle.read()
    for name in EXAMPLES:
        assert name in readme, f"{name} missing from the README examples table"
