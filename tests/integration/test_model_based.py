"""Model-based stateful testing of the whole AIDE deployment.

Hypothesis drives random interleavings of the operations a real
deployment sees — time passing, pages changing, users browsing, tracker
runs, snapshot check-ins, diffs — and checks the system-wide invariants
after every step:

* every stored revision of every archive reconstructs;
* a tracker run covers the whole hotlist (or aborted explicitly);
* the user-control file only references revisions that exist;
* remember() is idempotent on unchanged pages.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.aide.engine import Aide
from repro.core.snapshot.store import SnapshotError
from repro.core.w3newer.hotlist import Hotlist
from repro.simclock import HOUR
from repro.workloads.mutate import MUTATORS
from repro.workloads.pagegen import PageGenerator

import random

PAGES = [f"/p{i}.html" for i in range(4)]
URLS = [f"http://world.com{path}" for path in PAGES]
USERS = ["alice@x", "bob@x"]


class AideMachine(RuleBasedStateMachine):
    """One deployment, poked at random."""

    def __init__(self):
        super().__init__()
        self.aide = Aide()
        self.server = self.aide.network.create_server("world.com")
        generator = PageGenerator(seed=1)
        for path in PAGES:
            self.server.set_page(path, generator.page())
        hotlist = Hotlist.from_lines("\n".join(URLS))
        for user in USERS:
            self.aide.add_user(user, hotlist)
        self.rng = random.Random(7)

    # ------------------------------------------------------------------
    @rule(hours=st.integers(1, 72))
    def advance_time(self, hours):
        self.aide.clock.advance(hours * HOUR)

    @rule(page=st.sampled_from(PAGES),
          mutator=st.sampled_from(sorted(MUTATORS)))
    def edit_page(self, page, mutator):
        current = self.server.get_page(page)
        self.server.set_page(page, MUTATORS[mutator](current.body, self.rng))

    @rule(user=st.sampled_from(USERS), url=st.sampled_from(URLS))
    def user_visits(self, user, url):
        self.aide.users[user].visit(url, self.aide.clock)

    @rule(user=st.sampled_from(USERS))
    def run_tracker(self, user):
        result = self.aide.run_w3newer(user)
        assert result.aborted or len(result.outcomes) == len(URLS)

    @rule(user=st.sampled_from(USERS), url=st.sampled_from(URLS))
    def remember(self, user, url):
        first = self.aide.store.remember(user, url)
        again = self.aide.store.remember(user, url)
        # Idempotence at one instant: same revision, no new storage.
        assert again.revision == first.revision
        assert not again.changed or first.changed

    @rule(user=st.sampled_from(USERS), url=st.sampled_from(URLS))
    def diff(self, user, url):
        try:
            result = self.aide.store.diff(user, url)
        except SnapshotError:
            return  # nothing remembered yet: a documented refusal
        assert 0.0 <= result.change_density <= 1.0

    @rule(user=st.sampled_from(USERS), url=st.sampled_from(URLS))
    def history(self, user, url):
        try:
            rows = self.aide.store.history(user, url)
        except SnapshotError:
            return
        assert rows

    # ------------------------------------------------------------------
    @invariant()
    def archives_reconstruct(self):
        for archive in self.aide.store.archives.values():
            for info in archive.revisions():
                assert archive.checkout(info.number) is not None

    @invariant()
    def control_file_references_real_revisions(self):
        for user in USERS:
            for url in self.aide.store.users.urls_for(user):
                archive = self.aide.store.archives.get(url)
                assert archive is not None
                known = {info.number for info in archive.revisions()}
                for seen in self.aide.store.users.versions_seen(user, url):
                    assert seen.revision in known


AideMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
)
TestAideModel = AideMachine.TestCase
