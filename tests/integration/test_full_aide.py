"""End-to-end integration: the whole AIDE deployment over a synthetic web.

These tests drive the complete stack the way the paper's users did:
cron-driven page edits, daily w3newer runs, report links clicked
through the snapshot CGI, HtmlDiff viewed in the browser — across weeks
of simulated time and dozens of pages.
"""

import re

import pytest

from repro.aide.browser import IntegratedBrowser
from repro.aide.engine import Aide
from repro.aide.fixedpages import FixedPageCollection
from repro.aide.tracker import CentralTracker
from repro.core.w3newer.errors import UrlState
from repro.simclock import DAY, WEEK
from repro.web.cgi import parse_query_string
from repro.web.url import parse_url
from repro.workloads.scenario import build_hotlist, build_web


@pytest.fixture
def deployment():
    web = build_web(sites=10, pages_per_site=8, seed=77)
    aide = Aide(clock=web.clock, network=web.network)
    hotlist = build_hotlist(web, size=30, seed=3)
    user = aide.add_user("fred@research.att.com", hotlist)
    return web, aide, user


def report_links(html, action):
    """Extract the URLs carried by a given action's report links."""
    out = []
    for match in re.finditer(r'HREF="([^"]*action=' + action + '[^"]*)"', html):
        query = parse_url(match.group(1).replace("&amp;", "&")).query
        out.append(parse_query_string(query).get("url"))
    return out


class TestMonthOfUse:
    def test_daily_loop_stays_consistent(self, deployment):
        web, aide, user = deployment
        total_changed = 0
        for day in range(1, 29):
            web.cron.run_until(day * DAY)
            run = aide.run_w3newer("fred@research.att.com")
            # Report always covers the whole hotlist (unless aborted).
            assert len(run.outcomes) == len(user.hotlist)
            assert not run.aborted
            total_changed += len(run.changed)
            # User reads and remembers a few changed pages via the CGI.
            for outcome in run.changed[:5]:
                user.visit(outcome.url, aide.clock)
                response = aide.remember("fred@research.att.com", outcome.url)
                assert response.status == 200
        assert total_changed > 0
        # Everything remembered is retrievable with history.
        for url in aide.store.archives:
            history = aide.store.history("fred@research.att.com", url)
            assert history

    def test_remember_then_later_diff_shows_changes(self, deployment):
        web, aide, user = deployment
        changing = [
            url for url in user.hotlist.urls()
            if web.change_class[url] in ("daily-churn", "busy")
        ]
        if not changing:
            pytest.skip("seed produced no fast-changing bookmarks")
        target = changing[0]
        aide.remember("fred@research.att.com", target)
        web.cron.run_until(3 * WEEK)
        response = aide.diff("fred@research.att.com", target)
        assert response.status == 200
        assert "Internet Difference Engine" in response.body
        # After weeks of typical edits the diff is non-trivial.
        assert ("<STRIKE>" in response.body or "<STRONG><I>" in response.body
                or "too pervasive" in response.body)

    def test_static_pages_never_reported_after_first_view(self, deployment):
        web, aide, user = deployment
        static = [
            url for url in user.hotlist.urls()
            if web.change_class[url] == "static"
        ]
        if not static:
            pytest.skip("seed produced no static bookmarks")
        for url in static:
            user.visit(url, aide.clock)
        web.cron.run_until(2 * WEEK)
        run = aide.run_w3newer("fred@research.att.com")
        flagged = {o.url for o in run.changed}
        for url in static:
            assert url not in flagged

    def test_report_links_route_to_working_cgi(self, deployment):
        web, aide, user = deployment
        web.cron.run_until(3 * DAY)
        run = aide.run_w3newer("fred@research.att.com")
        remember_urls = report_links(run.report_html, "remember")
        assert len(remember_urls) == len(run.outcomes)
        target = remember_urls[0]
        response = aide.remember("fred@research.att.com", target)
        assert response.status == 200


class TestIntegratedBrowserLoop:
    def test_history_integration_closes_the_loop(self, deployment):
        web, aide, user = deployment
        browser = IntegratedBrowser(user.browser, aide.clock,
                                    history=user.history)
        changing = [
            url for url in user.hotlist.urls()
            if web.change_class[url] == "daily-churn"
        ] or [url for url in user.hotlist.urls()
              if web.change_class[url] != "static"]
        target = changing[0]
        user.visit(target, aide.clock)
        aide.remember("fred@research.att.com", target)
        web.cron.run_until(2 * WEEK)
        first = aide.run_w3newer("fred@research.att.com")
        assert target in {o.url for o in first.changed}
        # Click the Diff link through the integrated browser…
        browser.browse(
            "http://aide.research.att.com/cgi-bin/snapshot"
            f"?action=diff&url={target}&user=fred@research.att.com"
        )
        # …and the page is no longer reported.
        second = aide.run_w3newer("fred@research.att.com")
        assert target not in {o.url for o in second.changed}


class TestCommunityServicesTogether:
    def test_fixed_pages_and_tracker_share_the_store(self, deployment):
        web, aide, user = deployment
        shared = user.hotlist.urls()[:6]
        collection = FixedPageCollection(aide.store, aide.clock)
        tracker = CentralTracker(aide.store, aide.clock)
        for url in shared:
            collection.add_url(url)
            tracker.subscribe("fred@research.att.com", url)
        collection.schedule(web.cron, period=DAY)
        tracker.schedule(web.cron, period=DAY)
        web.cron.run_until(2 * WEEK)
        # One shared archive set; both services contributed revisions.
        assert aide.store.url_count() >= len(shared)
        page = collection.whats_new_page()
        assert "[Diff]" in page
        rows = tracker.report_for("fred@research.att.com")
        assert len(rows) == len(shared)
