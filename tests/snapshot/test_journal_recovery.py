"""Crash-safe journal recovery: torn tails, corrupt frames, verify_store.

The property under test: committed revisions are never lost and
``load_store`` never crashes, no matter where a crash (truncation) or a
flipped byte lands in the final record.  Mid-file corruption — damage
with committed records *beyond* it — is the one case that must stay
loud, because truncating there would silently lose data.
"""

import os

import pytest

from repro.core.snapshot.journal import (
    JOURNAL_NAME,
    JournalError,
    JournalRecord,
    append_records,
    read_journal,
    scan_journal,
)
from repro.core.snapshot.persistence import (
    JournalRecoveryWarning,
    append_store,
    load_store,
    save_store,
    verify_store,
)
from repro.core.snapshot.store import SnapshotStore, StoreOptions
from repro.rcs.rcsfile import serialize_rcsfile
from repro.simclock import HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

URL = "http://site-a.com/page.html"


def make_store(clock=None):
    clock = clock or SimClock()
    network = Network(clock)
    return clock, SnapshotStore(clock, UserAgent(network, clock),
                                options=StoreOptions())


def feed(clock, store, url, texts, user="fred@att.com"):
    for text in texts:
        clock.advance(HOUR)
        store.checkin_content(user, url, text)


def journal_path(directory):
    return os.path.join(str(directory), JOURNAL_NAME)


def build_journaled_store(tmp_path, revisions=4):
    clock, store = make_store()
    feed(clock, store, URL,
         [f"<P>version {n} — naïve café text</P>\n" for n in range(revisions)])
    append_store(store, str(tmp_path))
    return clock, store


def committed_prefix_lengths(data):
    """Byte offsets that end a whole frame (valid truncation points)."""
    offsets = [0]
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        nbytes = int(data[pos:newline].split()[1])
        pos = newline + 1 + nbytes
        offsets.append(pos)
    return offsets


class TestTornTailRecovery:
    def test_truncation_at_every_byte_boundary(self, tmp_path):
        """The exhaustive property: cut the journal after any prefix of
        the final record; load always succeeds and keeps every earlier
        record (plus the final one only when its frame is complete)."""
        clock, _store = build_journaled_store(tmp_path, revisions=3)
        data = open(journal_path(tmp_path), "rb").read()
        boundaries = committed_prefix_lengths(data)
        last_record_start = boundaries[-2]
        for cut in range(last_record_start, len(data) + 1):
            with open(journal_path(tmp_path), "wb") as handle:
                handle.write(data[:cut])
            _clock2, fresh = make_store(clock)
            if cut == len(data):
                load_store(fresh, str(tmp_path))  # intact: no warning
                expected = 3
            elif cut == last_record_start:
                load_store(fresh, str(tmp_path))  # clean boundary
                expected = 2
            else:
                with pytest.warns(JournalRecoveryWarning):
                    load_store(fresh, str(tmp_path))
                expected = 2
            (archive,) = fresh.archives.values()
            assert archive.revision_count == expected, f"cut at byte {cut}"

    def test_corruption_at_every_byte_of_final_record(self, tmp_path):
        """Flip each byte of the last record in turn: the frame checksum
        (or header parse) catches it, and load keeps the earlier two."""
        clock, _store = build_journaled_store(tmp_path, revisions=3)
        data = open(journal_path(tmp_path), "rb").read()
        last_record_start = committed_prefix_lengths(data)[-2]
        for index in range(last_record_start, len(data)):
            mutated = bytearray(data)
            mutated[index] ^= 0xFF
            with open(journal_path(tmp_path), "wb") as handle:
                handle.write(bytes(mutated))
            _clock2, fresh = make_store(clock)
            with pytest.warns(JournalRecoveryWarning):
                load_store(fresh, str(tmp_path))
            (archive,) = fresh.archives.values()
            assert archive.revision_count == 2, f"corrupt byte {index}"

    def test_truncation_restores_append_capability(self, tmp_path):
        clock, store = build_journaled_store(tmp_path, revisions=3)
        data = open(journal_path(tmp_path), "rb").read()
        with open(journal_path(tmp_path), "wb") as handle:
            handle.write(data[:-5])  # tear the tail
        _clock2, fresh = make_store(clock)
        with pytest.warns(JournalRecoveryWarning):
            load_store(fresh, str(tmp_path))
        # Recovery truncated the file: the journal is clean again and
        # new appends produce a loadable stream.
        assert scan_journal(str(tmp_path)).clean
        append_records(str(tmp_path), [JournalRecord(
            url=URL, revision="1.3", date=clock.now + 1,
            author="fred@att.com", log="re-checkin",
            text="<P>version 2 rewritten</P>\n",
        )])
        _clock3, again = make_store(clock)
        load_store(again, str(tmp_path))
        (archive,) = again.archives.values()
        assert archive.revision_count == 3

    def test_empty_journal_file_loads_clean(self, tmp_path):
        clock, _store = build_journaled_store(tmp_path, revisions=2)
        with open(journal_path(tmp_path), "wb") as handle:
            handle.write(b"")
        _clock2, fresh = make_store(clock)
        load_store(fresh, str(tmp_path))  # no warning, no records


class TestMidFileCorruption:
    def test_corrupting_first_record_raises(self, tmp_path):
        clock, _store = build_journaled_store(tmp_path, revisions=3)
        data = bytearray(open(journal_path(tmp_path), "rb").read())
        # Flip a byte inside the *first* frame's payload: intact frames
        # follow, so truncation would lose committed revisions.
        data[len(b"frame ") + 20] ^= 0xFF
        with open(journal_path(tmp_path), "wb") as handle:
            handle.write(bytes(data))
        _clock2, fresh = make_store(clock)
        with pytest.raises(JournalError):
            load_store(fresh, str(tmp_path))

    def test_scan_reports_unrecoverable(self, tmp_path):
        clock, _store = build_journaled_store(tmp_path, revisions=3)
        data = bytearray(open(journal_path(tmp_path), "rb").read())
        data[len(b"frame ") + 20] ^= 0xFF
        with open(journal_path(tmp_path), "wb") as handle:
            handle.write(bytes(data))
        scan = scan_journal(str(tmp_path))
        assert not scan.clean
        assert not scan.recoverable
        assert scan.records == []
        assert scan.damage_offset == 0


class TestLegacyJournals:
    def test_unframed_records_still_load(self, tmp_path):
        record = JournalRecord(url=URL, revision="1.1", date=7,
                               author="a@b", log="l", text="body @@ text\n")
        legacy = (
            "rev\t@%s@\t1.1\t7\t@a@@b@\n@l@\n@body @@@@ text\n@\n" % URL
        )
        with open(journal_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write(legacy)
        assert read_journal(str(tmp_path)) == [record]

    def test_mixed_legacy_then_framed(self, tmp_path):
        legacy = "rev\t@%s@\t1.1\t7\t@a@\n@l@\n@one@\n" % URL
        with open(journal_path(tmp_path), "w", encoding="utf-8") as handle:
            handle.write(legacy)
        append_records(str(tmp_path), [JournalRecord(
            url=URL, revision="1.2", date=8, author="a", log="l",
            text="two",
        )])
        records = read_journal(str(tmp_path))
        assert [r.text for r in records] == ["one", "two"]


class TestVerifyStore:
    def test_clean_store_verifies_ok(self, tmp_path):
        clock, store = make_store()
        feed(clock, store, URL, ["<P>a</P>", "<P>b</P>"])
        save_store(store, str(tmp_path))
        feed(clock, store, URL, ["<P>c</P>"])
        append_store(store, str(tmp_path))
        report = verify_store(str(tmp_path))
        assert report.ok
        assert report.archives_checked == 1
        assert report.journal_records == 1
        assert "ok" in report.summary()

    def test_pinpoints_torn_tail_without_mutating(self, tmp_path):
        clock, _store = build_journaled_store(tmp_path, revisions=3)
        data = open(journal_path(tmp_path), "rb").read()
        with open(journal_path(tmp_path), "wb") as handle:
            handle.write(data[:-5])
        report = verify_store(str(tmp_path))
        assert report.ok  # torn tail is survivable
        assert any("torn" in note for note in report.notes)
        # verify_store is read-only: the torn tail is still on disk.
        assert open(journal_path(tmp_path), "rb").read() == data[:-5]

    def test_pinpoints_mid_file_corruption(self, tmp_path):
        clock, _store = build_journaled_store(tmp_path, revisions=3)
        data = bytearray(open(journal_path(tmp_path), "rb").read())
        data[len(b"frame ") + 20] ^= 0xFF
        with open(journal_path(tmp_path), "wb") as handle:
            handle.write(bytes(data))
        report = verify_store(str(tmp_path))
        assert not report.ok
        assert any("mid-file" in problem for problem in report.problems)

    def test_pinpoints_corrupt_archive(self, tmp_path):
        clock, store = make_store()
        feed(clock, store, URL, ["<P>a</P>", "<P>b</P>"])
        save_store(store, str(tmp_path))
        archives = os.path.join(str(tmp_path), "archives")
        name = os.listdir(archives)[0]
        with open(os.path.join(archives, name), "w") as handle:
            handle.write("not an rcs file at all")
        report = verify_store(str(tmp_path))
        assert not report.ok
        assert any(name in problem for problem in report.problems)

    def test_pinpoints_replay_mismatch(self, tmp_path):
        clock, store = make_store()
        feed(clock, store, URL, ["<P>a</P>", "<P>b</P>"])
        append_store(store, str(tmp_path))
        records = read_journal(str(tmp_path))
        append_records(str(tmp_path), [records[-1]])  # duplicate
        report = verify_store(str(tmp_path))
        assert not report.ok
        assert any("replay" in problem for problem in report.problems)

    def test_missing_directory_is_a_note_not_a_crash(self, tmp_path):
        report = verify_store(str(tmp_path / "nowhere"))
        assert report.ok
        assert report.notes

    def test_reports_missing_manifest_entries(self, tmp_path):
        clock, store = make_store()
        feed(clock, store, URL, ["<P>a</P>"])
        save_store(store, str(tmp_path))
        archives = os.path.join(str(tmp_path), "archives")
        os.remove(os.path.join(archives, os.listdir(archives)[0]))
        report = verify_store(str(tmp_path))
        assert any("MANIFEST" in note for note in report.notes)


class TestLoadEquivalenceAfterRecovery:
    def test_recovered_store_matches_reference(self, tmp_path):
        """After recovery the store equals one that never saw the torn
        record: committed revisions only, byte-identical archives."""
        clock, store = make_store()
        texts = [f"<P>rev {n}</P>\n" for n in range(4)]
        feed(clock, store, URL, texts[:3])
        append_store(store, str(tmp_path))
        intact = open(journal_path(tmp_path), "rb").read()
        feed(clock, store, URL, texts[3:])
        append_store(store, str(tmp_path))
        full = open(journal_path(tmp_path), "rb").read()
        # Crash mid-append of revision 4: any strict prefix of the new
        # frame's bytes.
        torn = full[:len(intact) + 7]
        with open(journal_path(tmp_path), "wb") as handle:
            handle.write(torn)
        _clock2, recovered = make_store(clock)
        with pytest.warns(JournalRecoveryWarning):
            load_store(recovered, str(tmp_path))
        # Reference: a store that only ever committed three revisions.
        ref_clock, reference = make_store()
        feed(ref_clock, reference, URL, texts[:3])
        (rec_archive,) = recovered.archives.values()
        (ref_archive,) = reference.archives.values()
        assert serialize_rcsfile(rec_archive) == serialize_rcsfile(ref_archive)
