"""Robustness: the snapshot CGI never crashes on arbitrary input.

The paper's service was reachable by "anyone on the W3"; random and
hostile query strings must produce HTTP error pages, never exceptions
(an exception in a CGI is a 500 and a log page for the admin)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.http import Request
from repro.web.network import Network
from repro.web.url import parse_url


@pytest.fixture(scope="module")
def service():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/page", "<P>content.</P>")
    store = SnapshotStore(clock, UserAgent(network, clock))
    return SnapshotService(store)


query_strings = st.one_of(
    st.text(alphabet="abc=&%+?/:@.#", max_size=60),
    st.builds(
        lambda action, url, user, r1: (
            f"action={action}&url={url}&user={user}&r1={r1}"
        ),
        st.sampled_from(["remember", "diff", "history", "view", "explode", ""]),
        st.sampled_from([
            "http://site.com/page", "http://nowhere.example/x",
            "not-a-url", "", "http://site.com/missing",
        ]),
        st.sampled_from(["fred", "", "a@b", "%%%"]),
        st.sampled_from(["1.1", "0", "", "../../etc/passwd"]),
    ),
)


class TestServiceFuzz:
    @given(query_strings)
    @settings(max_examples=200, deadline=None)
    def test_never_raises_always_http(self, service, query):
        request = Request(
            "GET", parse_url(f"http://aide.att.com/cgi-bin/snapshot?{query}")
        )
        response = service(request, 0)
        assert 200 <= response.status <= 599
        assert isinstance(response.body, str)

    @given(st.text(max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_post_bodies_never_crash(self, service, body):
        request = Request(
            "POST", parse_url("http://aide.att.com/cgi-bin/snapshot"),
            body=body,
        )
        response = service(request, 0)
        assert 200 <= response.status <= 599
