"""Tests for the shared HtmlDiff output cache."""

import pytest

from repro.core.htmldiff.options import HtmlDiffOptions, PresentationMode
from repro.core.snapshot.diffcache import DiffCache
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network


def result_stub(tag):
    """Cache values are opaque to DiffCache; any object will do."""
    return tag


class TestDiffCacheUnit:
    def test_miss_then_hit(self):
        cache = DiffCache()
        key = DiffCache.make_key("http://a/", "1.1", "1.2", None)
        assert cache.get(key) is None
        cache.put(key, result_stub("r"))
        assert cache.get(key) == "r"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_key_includes_options(self):
        plain = HtmlDiffOptions()
        reference = plain.reference()
        reversed_mode = HtmlDiffOptions(mode=PresentationMode.MERGED_REVERSED)
        keys = {
            DiffCache.make_key("http://a/", "1.1", "1.2", options)
            for options in (None, plain, reference, reversed_mode)
        }
        assert len(keys) == 4
        # Equal configurations share a key across instances.
        assert DiffCache.make_key("u", "1.1", "1.2", HtmlDiffOptions()) == \
            DiffCache.make_key("u", "1.1", "1.2", HtmlDiffOptions())

    def test_key_stringifies_revisions(self):
        assert DiffCache.make_key("u", 1.1, "1.2", None) == \
            DiffCache.make_key("u", "1.1", "1.2", None)

    def test_lru_eviction_order(self):
        cache = DiffCache(capacity=2)
        k = [DiffCache.make_key("u", "1.1", f"1.{i}", None) for i in range(4)]
        cache.put(k[0], "a")
        cache.put(k[1], "b")
        assert cache.get(k[0]) == "a"  # refresh k0
        cache.put(k[2], "c")  # evicts k1, the least recently used
        assert cache.get(k[1]) is None
        assert cache.get(k[0]) == "a"
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = DiffCache(capacity=0)
        key = DiffCache.make_key("u", "1.1", "1.2", None)
        cache.put(key, "r")
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DiffCache(capacity=-1)

    def test_invalidate_url(self):
        cache = DiffCache()
        cache.put(DiffCache.make_key("u1", "1.1", "1.2", None), "a")
        cache.put(DiffCache.make_key("u1", "1.2", "1.3", None), "b")
        cache.put(DiffCache.make_key("u2", "1.1", "1.2", None), "c")
        assert cache.invalidate_url("u1") == 2
        assert len(cache) == 1
        assert cache.get(DiffCache.make_key("u2", "1.1", "1.2", None)) == "c"


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/page", "<HTML><BODY><P>version one.</P></BODY></HTML>")
    agent = UserAgent(network, clock)
    store = SnapshotStore(clock, agent)
    return clock, network, server, store


def two_revisions(clock, server, store, users=("fred@att.com", "tom@att.com")):
    for user in users:
        store.remember(user, "http://site.com/page")
    clock.advance(DAY)
    server.set_page("/page", "<HTML><BODY><P>version two.</P></BODY></HTML>")


class TestStoreIntegration:
    def test_diff_shared_across_users_and_time(self, world):
        clock, network, server, store = world
        two_revisions(clock, server, store)
        store.diff("fred@att.com", "http://site.com/page")
        assert store.htmldiff_invocations == 1
        # A different user, well past the coalescer's window.
        clock.advance(HOUR * 2)
        result = store.diff("tom@att.com", "http://site.com/page")
        assert store.htmldiff_invocations == 1  # replayed from the cache
        assert "<STRONG><I>two.</I></STRONG>" in result.html
        assert store.diff_cache.hits == 1

    def test_explicit_revision_pairs_cached_separately(self, world):
        clock, network, server, store = world
        two_revisions(clock, server, store)
        store.diff("fred@att.com", "http://site.com/page")
        clock.advance(DAY)
        server.set_page("/page", "<HTML><BODY><P>version three.</P></BODY></HTML>")
        store.remember("fred@att.com", "http://site.com/page")  # -> 1.3
        store.diff("fred@att.com", "http://site.com/page",
                   rev_old="1.2", rev_new="1.3")
        assert store.htmldiff_invocations == 2
        clock.advance(HOUR * 2)
        store.diff("fred@att.com", "http://site.com/page",
                   rev_old="1.2", rev_new="1.3")
        assert store.htmldiff_invocations == 2

    def test_cache_disabled_recomputes(self, world):
        clock, network, server, store = world
        store = SnapshotStore(store.clock, store.agent, diff_cache_size=0,
                              diff_cache_ttl=0)
        two_revisions(clock, server, store)
        store.diff("fred@att.com", "http://site.com/page")
        clock.advance(HOUR * 2)
        store.diff("tom@att.com", "http://site.com/page")
        assert store.htmldiff_invocations == 2

    def test_stats_surface(self, world):
        clock, network, server, store = world
        two_revisions(clock, server, store)
        store.diff("fred@att.com", "http://site.com/page")
        stats = store.diff_cache.stats()
        assert stats["size"] == 1
        assert stats["capacity"] == 256
        assert stats["misses"] >= 1
