"""Tests for request coalescing under the deterministic scheduler.

The paper's wish (§4.2): "if multiple users request the same page
simultaneously, the second snapshot process would just wait for the
page and then return, rather than repeating the work."  Under the
scheduler that is now literal: the second process parks on the URL
lock's queue, and when woken joins the winner's fetch and check-in
through the coalescer — one fetch, one RCS check-in, two stamped users.
"""

import pytest

from repro.core.snapshot.locking import LockManager
from repro.core.snapshot.sched import Failpoints, SimScheduler
from repro.core.snapshot.store import SnapshotStore
from repro.core.snapshot.wal import WriteAheadLog
from repro.core.snapshot.persistence import verify_store
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

URL = "http://site.com/page"
V1 = "<HTML><BODY><P>coalesce me.</P></BODY></HTML>"


def make_world(seed=None, tmp_path=None):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/page", V1)
    store = SnapshotStore(clock, UserAgent(network, clock))
    sched = SimScheduler(seed=seed)
    failpoints = Failpoints()
    failpoints.attach(sched)
    store.attach_failpoints(failpoints)
    store.locks.attach(sched)
    if tmp_path is not None:
        store.attach_wal(WriteAheadLog(store, str(tmp_path)))
    return clock, network, server, store, sched


class TestSimultaneousRemember:
    def test_two_remembers_one_fetch_both_stamped(self):
        clock, network, server, store, sched = make_world()
        sched.spawn("fred", lambda: store.remember("fred@att.com", URL))
        sched.spawn("tom", lambda: store.remember("tom@att.com", URL))
        procs = sched.run()
        sched.join_threads()
        assert all(p.state == "done" for p in procs.values())
        # One fetch served both processes...
        assert server.get_count == 1
        # ...one check-in...
        assert store.archive_for(URL).revision_count == 1
        assert procs["fred"].result.revision == "1.1"
        assert procs["tom"].result.revision == "1.1"
        # ...and exactly one process performed the change.
        changed = [p.result.changed for p in procs.values()]
        assert sorted(changed) == [False, True]
        # Both users' control files are stamped.
        for user in ("fred@att.com", "tom@att.com"):
            assert store.users.last_seen_version(user, URL).revision == "1.1"

    def test_second_process_waits_on_url_lock(self):
        clock, network, server, store, sched = make_world()
        sched.spawn("fred", lambda: store.remember("fred@att.com", URL))
        sched.spawn("tom", lambda: store.remember("tom@att.com", URL))
        sched.run()
        sched.join_threads()
        blocked = [(name, label) for name, label in sched.trace
                   if label.startswith("blocked:url:")]
        assert blocked == [("tom", f"blocked:url:{URL}")]
        assert store.locks.contentions >= 1

    @pytest.mark.parametrize("seed", [None, 1, 7, 42])
    def test_every_interleaving_converges(self, seed):
        clock, network, server, store, sched = make_world(seed=seed)
        users = ["a@x.com", "b@x.com", "c@x.com"]
        for user in users:
            sched.spawn(user, lambda u=user: store.remember(u, URL))
        procs = sched.run()
        sched.join_threads()
        assert all(p.state == "done" for p in procs.values())
        assert server.get_count == 1
        assert store.archive_for(URL).revision_count == 1
        for user in users:
            assert store.users.last_seen_version(user, URL).revision == "1.1"

    def test_different_urls_do_not_contend(self):
        clock, network, server, store, sched = make_world()
        server.set_page("/other", "<P>another page entirely.</P>")
        sched.spawn("fred", lambda: store.remember("fred@att.com", URL))
        sched.spawn(
            "tom",
            lambda: store.remember("tom@att.com", "http://site.com/other"),
        )
        sched.run()
        sched.join_threads()
        assert server.get_count == 2
        blocked = [l for _n, l in sched.trace if l.startswith("blocked:")]
        assert blocked == []

    def test_coalesced_run_with_wal_commits_both_transactions(
        self, tmp_path
    ):
        clock, network, server, store, sched = make_world(tmp_path=tmp_path)
        sched.spawn("fred", lambda: store.remember("fred@att.com", URL))
        sched.spawn("tom", lambda: store.remember("tom@att.com", URL))
        procs = sched.run()
        sched.join_threads()
        assert all(p.state == "done" for p in procs.values())
        assert store.wal.stats() == {"begun": 2, "committed": 2,
                                     "aborted": 0}
        report = verify_store(str(tmp_path))
        assert report.ok, report.problems
        # Both stamps are on disk: the joiner's txn carries its own
        # seen record even though the winner journaled the revision.
        assert report.seen_stamps_checked == 2
