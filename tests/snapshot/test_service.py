"""Tests for the snapshot CGI service, keep-alive, locking, control files."""

import pytest

from repro.core.snapshot.keepalive import CgiTimeout, KeepAlive
from repro.core.snapshot.locking import LockError, LockManager, RequestCoalescer
from repro.core.snapshot.service import OperationCosts, SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.core.snapshot.usercontrol import UserControl
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.http import Request
from repro.web.network import Network
from repro.web.url import parse_url


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    origin = network.create_server("site.com")
    origin.set_page("/page", "<HTML><BODY><P>original text.</P></BODY></HTML>")
    agent = UserAgent(network, clock)
    store = SnapshotStore(clock, agent)
    service = SnapshotService(store)
    aide = network.create_server("aide.att.com")
    aide.register_cgi("/cgi-bin/snapshot", service)
    client = UserAgent(network, clock, agent_name="Mozilla/1.1N")
    return clock, network, origin, store, service, client


def call(client, query):
    return client.get(f"http://aide.att.com/cgi-bin/snapshot?{query}").response


class TestServiceActions:
    def test_form_without_action(self, world):
        clock, network, origin, store, service, client = world
        resp = call(client, "")
        assert resp.status == 200
        assert "<FORM" in resp.body

    def test_remember_roundtrip(self, world):
        clock, network, origin, store, service, client = world
        resp = call(client, "action=remember&url=http://site.com/page&user=fred")
        assert resp.status == 200
        assert "revision 1.1" in resp.body
        assert store.url_count() == 1

    def test_remember_requires_user(self, world):
        clock, network, origin, store, service, client = world
        resp = call(client, "action=remember&url=http://site.com/page")
        assert resp.status == 400

    def test_diff_after_change(self, world):
        clock, network, origin, store, service, client = world
        call(client, "action=remember&url=http://site.com/page&user=fred")
        clock.advance(DAY)
        origin.set_page("/page", "<HTML><BODY><P>rewritten text.</P></BODY></HTML>")
        call(client, "action=remember&url=http://site.com/page&user=tom")
        resp = call(client, "action=diff&url=http://site.com/page&user=fred")
        assert resp.status == 200
        assert "AT&amp;T Internet Difference Engine" in resp.body

    def test_diff_unknown_page_404(self, world):
        clock, network, origin, store, service, client = world
        resp = call(client, "action=diff&url=http://site.com/none&user=fred")
        assert resp.status == 404

    def test_history_lists_versions_with_seen_markers(self, world):
        clock, network, origin, store, service, client = world
        call(client, "action=remember&url=http://site.com/page&user=fred")
        clock.advance(DAY)
        origin.set_page("/page", "<P>v2</P>")
        call(client, "action=remember&url=http://site.com/page&user=tom")
        resp = call(client, "action=history&url=http://site.com/page&user=fred")
        assert "1.1" in resp.body and "1.2" in resp.body
        assert "seen by you" in resp.body
        assert "diff" in resp.body  # pairwise compare links

    def test_view_old_version(self, world):
        clock, network, origin, store, service, client = world
        call(client, "action=remember&url=http://site.com/page&user=fred")
        clock.advance(DAY)
        origin.set_page("/page", "<P>v2</P>")
        call(client, "action=remember&url=http://site.com/page&user=fred")
        resp = call(client, "action=view&url=http://site.com/page&rev=1.1")
        assert "original text" in resp.body
        assert "<BASE HREF=" in resp.body

    def test_unknown_action_400(self, world):
        clock, network, origin, store, service, client = world
        resp = call(client, "action=explode&url=http://site.com/page")
        assert resp.status == 400

    def test_post_form_works_too(self, world):
        clock, network, origin, store, service, client = world
        resp = client.post(
            "http://aide.att.com/cgi-bin/snapshot",
            body="action=remember&url=http://site.com/page&user=fred",
        ).response
        assert resp.status == 200

    def test_keepalive_padding_prepended(self, world):
        clock, network, origin, store, service, client = world
        service.keepalive = KeepAlive(httpd_timeout=60, emit_interval=10)
        service.costs = OperationCosts(fetch=35, htmldiff=30, cheap=1)
        resp = call(client, "action=remember&url=http://site.com/page&user=fred")
        assert resp.body.startswith(" " * 3)  # 35s / 10s interval

    def test_disabled_keepalive_times_out(self, world):
        clock, network, origin, store, service, client = world
        service.keepalive = KeepAlive(httpd_timeout=60, enabled=False)
        service.costs = OperationCosts(fetch=120, htmldiff=30)
        resp = call(client, "action=remember&url=http://site.com/page&user=fred")
        assert resp.status == 504


class TestKeepAlive:
    def test_fast_operation_needs_no_padding(self):
        guard = KeepAlive(httpd_timeout=60, emit_interval=15)
        assert guard.run(5).padding_spaces == 0

    def test_padding_count(self):
        guard = KeepAlive(httpd_timeout=60, emit_interval=15)
        assert guard.run(100).padding_spaces == 6

    def test_disabled_guard_raises_on_slow_work(self):
        guard = KeepAlive(httpd_timeout=60, enabled=False)
        with pytest.raises(CgiTimeout):
            guard.run(60)

    def test_disabled_guard_allows_fast_work(self):
        guard = KeepAlive(httpd_timeout=60, enabled=False)
        assert guard.run(59).survived

    def test_interval_too_slow_is_fatal(self):
        guard = KeepAlive(httpd_timeout=10, emit_interval=30)
        with pytest.raises(CgiTimeout):
            guard.run(50)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            KeepAlive().run(-1)


class TestLockManager:
    def test_acquire_release(self):
        locks = LockManager()
        with locks.acquire("url:x"):
            assert locks.held("url:x")
        assert not locks.held("url:x")

    def test_contention_counted(self):
        locks = LockManager()
        with locks.acquire("k"):
            with locks.acquire("k"):
                pass
        assert locks.contentions == 1
        assert locks.acquisitions == 2

    def test_nested_release_order(self):
        locks = LockManager()
        lease1 = locks.acquire("k")
        lease2 = locks.acquire("k")
        lease2.release()
        assert locks.held("k")
        lease1.release()
        assert not locks.held("k")

    def test_double_release_raises(self):
        # A second release used to be silently absorbed, driving the
        # held-count negative; now it is a hard error.
        locks = LockManager()
        lease = locks.acquire("k")
        lease.release()
        with pytest.raises(LockError):
            lease.release()
        assert not locks.held("k")

    def test_context_manager_releases_on_exception(self):
        locks = LockManager()
        with pytest.raises(RuntimeError, match="boom"):
            with locks.acquire("k"):
                raise RuntimeError("boom")
        assert not locks.held("k")

    def test_exit_after_manual_release_is_not_double(self):
        locks = LockManager()
        with locks.acquire("k") as lease:
            lease.release()
        assert not locks.held("k")


class TestCoalescer:
    def test_same_instant_runs_once(self):
        clock = SimClock()
        coalescer = RequestCoalescer(clock)
        calls = []
        coalescer.do("k", lambda: calls.append(1) or "r1")
        result = coalescer.do("k", lambda: calls.append(2) or "r2")
        assert result == "r1"
        assert calls == [1]
        assert coalescer.coalesced == 1

    def test_ttl_caching(self):
        clock = SimClock()
        coalescer = RequestCoalescer(clock, ttl=100)
        coalescer.do("k", lambda: "r1")
        clock.advance(50)
        assert coalescer.do("k", lambda: "r2") == "r1"
        clock.advance(100)
        assert coalescer.do("k", lambda: "r3") == "r3"

    def test_no_ttl_expires_next_instant(self):
        clock = SimClock()
        coalescer = RequestCoalescer(clock, ttl=0)
        coalescer.do("k", lambda: "r1")
        clock.advance(1)
        assert coalescer.do("k", lambda: "r2") == "r2"

    def test_invalidate_by_prefix(self):
        clock = SimClock()
        coalescer = RequestCoalescer(clock, ttl=1000)
        coalescer.do("diff:a:1:2", lambda: "x")
        coalescer.do("diff:b:1:2", lambda: "y")
        coalescer.invalidate("diff:a")
        assert coalescer.do("diff:a:1:2", lambda: "x2") == "x2"
        assert coalescer.do("diff:b:1:2", lambda: "y2") == "y"


class TestUserControl:
    def test_record_and_lookup(self):
        control = UserControl()
        control.record("fred", "http://x/", "1.1", 100)
        control.record("fred", "http://x/", "1.2", 200)
        assert [v.revision for v in control.versions_seen("fred", "http://x/")] == [
            "1.1", "1.2",
        ]
        assert control.last_seen_version("fred", "http://x/").revision == "1.2"

    def test_re_record_updates_time_not_duplicate(self):
        control = UserControl()
        control.record("fred", "http://x/", "1.1", 100)
        control.record("fred", "http://x/", "1.1", 500)
        versions = control.versions_seen("fred", "http://x/")
        assert len(versions) == 1
        assert versions[0].when == 500

    def test_users_tracking(self):
        control = UserControl()
        control.record("b", "http://x/", "1.1", 1)
        control.record("a", "http://x/", "1.1", 1)
        control.record("c", "http://y/", "1.1", 1)
        assert control.users_tracking("http://x/") == ["a", "b"]

    def test_serialization_roundtrip(self):
        control = UserControl()
        control.record("fred@att.com", "http://x/page", "1.1", 100)
        control.record("fred@att.com", "http://x/page", "1.3", 300)
        control.record("tom@att.com", "http://y/", "1.2", 200)
        again = UserControl.deserialize(control.serialize())
        assert again.last_seen_version("fred@att.com", "http://x/page").revision == "1.3"
        assert again.users_tracking("http://y/") == ["tom@att.com"]


class TestTimeTravel:
    def prime(self, world):
        clock, network, origin, store, service, client = world
        call(client, "action=remember&url=http://site.com/page&user=fred")
        clock.advance(DAY)
        origin.set_page("/page", "<P>day one version.</P>")
        call(client, "action=remember&url=http://site.com/page&user=fred")
        clock.advance(DAY)
        origin.set_page("/page", "<P>day two version.</P>")
        call(client, "action=remember&url=http://site.com/page&user=fred")

    def test_view_at_date(self, world):
        clock, network, origin, store, service, client = world
        self.prime(world)
        # The page "as it existed" at the end of day one.
        resp = call(
            client,
            f"action=view&url=http://site.com/page&date={DAY + 100}",
        )
        assert resp.status == 200
        assert "day one version" in resp.body

    def test_view_at_date_before_any_archive(self, world):
        clock, network, origin, store, service, client = world
        clock.advance(DAY)
        call(client, "action=remember&url=http://site.com/page&user=fred")
        resp = call(client, "action=view&url=http://site.com/page&date=5")
        assert resp.status == 404

    def test_bad_date_400(self, world):
        clock, network, origin, store, service, client = world
        self.prime(world)
        resp = call(client, "action=view&url=http://site.com/page&date=noon")
        assert resp.status == 400

    def test_rev_takes_precedence(self, world):
        clock, network, origin, store, service, client = world
        self.prime(world)
        resp = call(
            client,
            f"action=view&url=http://site.com/page&rev=1.1&date={2 * DAY}",
        )
        assert "original text" in resp.body
