"""Tests for write-ahead transactions: commit, abort, crash, recovery.

Paper §4.2's consistency triangle — "the RCS repository, the locally
cached copy of the HTML document, and the control files" — must move
atomically.  These tests drive a transactional store through every
outcome: clean commits, rolled-back aborts, simulated crashes at each
declared point, and the recovery that follows.
"""

import os
import warnings

import pytest

from repro.core.snapshot.journal import (
    JournalRecord,
    SeenRecord,
    TxnCommit,
    TxnIntent,
    resolve_entries,
    scan_journal,
)
from repro.core.snapshot.keepalive import CgiTimeout, KeepAlive
from repro.core.snapshot.persistence import (
    JournalRecoveryWarning,
    load_store,
    verify_store,
)
from repro.core.snapshot.sched import CrashPlan, Failpoints, SimulatedCrash
from repro.core.snapshot.service import OperationCosts, SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.core.snapshot.wal import WalError, WriteAheadLog
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

URL = "http://site.com/page"
V1 = "<HTML><BODY><P>version one.</P></BODY></HTML>"
V2 = "<HTML><BODY><P>version two, rewritten.</P></BODY></HTML>"


def make_world(tmp_path, transactional=True):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/page", V1)
    agent = UserAgent(network, clock)
    store = SnapshotStore(clock, agent)
    repo = str(tmp_path)
    if transactional:
        store.attach_wal(WriteAheadLog(store, repo))
        store.attach_failpoints(Failpoints())
    return clock, network, server, store, repo


@pytest.fixture
def world(tmp_path):
    return make_world(tmp_path)


def recover(world):
    """What a restarted CGI process does: rebuild from disk alone."""
    clock, network, _server, store, repo = world
    fresh = SnapshotStore(clock, store.agent)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", JournalRecoveryWarning)
        load_store(fresh, repo)
    fresh.attach_wal(WriteAheadLog(fresh, repo))
    fresh.attach_failpoints(Failpoints())
    return fresh


class TestCommit:
    def test_remember_journals_intent_effects_marker(self, world):
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        entries = scan_journal(repo).entries
        kinds = [type(e).__name__ for e in entries]
        assert kinds == ["TxnIntent", "JournalRecord", "SeenRecord",
                        "TxnCommit"]
        intent = entries[0]
        assert isinstance(intent, TxnIntent)
        assert intent.op == "remember"
        assert intent.url == URL
        assert intent.users == ("fred@att.com",)
        assert entries[1].txn == intent.txn
        assert entries[3].txn == intent.txn

    def test_commit_writes_cache_file(self, world):
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        assert store.wal.read_cache(URL) == V1

    def test_resolution_sees_committed_effects(self, world):
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        resolved = resolve_entries(scan_journal(repo).entries)
        assert len(resolved.committed) == 1
        assert len(resolved.revisions) == 1
        assert len(resolved.seens) == 1
        assert not resolved.rolled_back

    def test_unchanged_remember_journals_no_revision(self, world):
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        clock.advance(DAY)
        store.remember("tom@att.com", URL)
        resolved = resolve_entries(scan_journal(repo).entries)
        assert len(resolved.revisions) == 1  # still just the first
        assert len(resolved.seens) == 2

    def test_commit_advances_persisted_revisions(self, world):
        # append_store must not double-journal what the txn already wrote.
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        assert store.persisted_revisions[URL] == 1

    def test_batch_checkin_is_one_transaction(self, world):
        clock, network, server, store, repo = world
        users = ["a@x.com", "b@x.com", "c@x.com"]
        results = store.checkin_content_batch(users, URL, V1)
        assert [r.changed for r in results] == [True, False, False]
        resolved = resolve_entries(scan_journal(repo).entries)
        assert len(resolved.committed) == 1
        assert len(resolved.seens) == 3

    def test_transaction_misuse_raises(self, world):
        clock, network, server, store, repo = world
        txn = store.wal.begin("checkin", URL, "fred@att.com")
        txn.commit()
        with pytest.raises(WalError):
            txn.commit()
        with pytest.raises(WalError):
            txn.log_rev(URL, "1.1", V1, "late")
        with pytest.raises(WalError):
            txn.abort()


class TestAbort:
    def test_timeout_abort_rolls_back_everything(self, world):
        clock, network, server, store, repo = world
        store.failpoints.arm_timeout()
        with pytest.raises(CgiTimeout):
            store.remember("fred@att.com", URL)
        # In memory: no archive head, no stamp, no cached page.
        assert store.archive_for(URL).revision_count == 0
        assert store.users.last_seen_version("fred@att.com", URL) is None
        assert URL not in store.page_cache
        # On disk: the abort marker voids the journaled effects.
        resolved = resolve_entries(scan_journal(repo).entries)
        assert len(resolved.aborted) == 1
        assert not resolved.revisions and not resolved.seens
        assert store.wal.stats()["aborted"] == 1

    def test_abort_restores_prior_revision_and_stamp(self, world):
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        clock.advance(DAY)
        server.set_page("/page", V2)
        store.failpoints.arm_timeout()
        with pytest.raises(CgiTimeout):
            store.remember("fred@att.com", URL)
        archive = store.archive_for(URL)
        assert archive.revision_count == 1
        assert archive.checkout("1.1") == V1
        seen = store.users.last_seen_version("fred@att.com", URL)
        assert seen.revision == "1.1"
        assert seen.when == 0  # the day-old stamp, not the aborted one
        assert store.wal.read_cache(URL) == V1

    def test_aborted_store_is_fsck_clean(self, world):
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        clock.advance(DAY)
        server.set_page("/page", V2)
        store.failpoints.arm_timeout()
        with pytest.raises(CgiTimeout):
            store.remember("fred@att.com", URL)
        report = verify_store(repo)
        assert report.ok, report.problems

    def test_retry_after_abort_succeeds_identically(self, world):
        clock, network, server, store, repo = world
        store.failpoints.arm_timeout()
        with pytest.raises(CgiTimeout):
            store.remember("fred@att.com", URL)
        result = store.remember("fred@att.com", URL)
        assert result.revision == "1.1"
        assert result.changed
        assert store.archive_for(URL).checkout("1.1") == V1


# Crash points a plain (coalesced, schedulerless) remember passes.
REMEMBER_POINTS = [
    "remember.fetched",
    "txn.intent-appended",
    "txn.rev-appended",
    "txn.cache-written",
    "txn.seen-appended",
    "txn.commit",
    "txn.committed",
]


class TestCrashRecovery:
    @pytest.mark.parametrize("point", REMEMBER_POINTS)
    def test_recovery_is_consistent_after_crash_anywhere(
        self, tmp_path, point
    ):
        world = make_world(tmp_path)
        clock, network, server, store, repo = world
        store.failpoints.arm(CrashPlan.at(point))
        with pytest.raises(SimulatedCrash):
            store.remember("fred@att.com", URL)
        fresh = recover(world)
        report = verify_store(repo)
        assert report.ok, f"crash at {point}: {report.problems}"
        # The operation either fully happened or fully didn't.
        count = fresh.archive_for(URL).revision_count
        seen = fresh.users.last_seen_version("fred@att.com", URL)
        if point == "txn.committed":
            assert count == 1 and seen.revision == "1.1"
        else:
            assert count == 0 and seen is None

    @pytest.mark.parametrize("point", REMEMBER_POINTS)
    def test_rerun_after_recovery_converges(self, tmp_path, point):
        world = make_world(tmp_path)
        clock, network, server, store, repo = world
        store.failpoints.arm(CrashPlan.at(point))
        with pytest.raises(SimulatedCrash):
            store.remember("fred@att.com", URL)
        fresh = recover(world)
        result = fresh.remember("fred@att.com", URL)
        assert result.revision == "1.1"
        archive = fresh.archive_for(URL)
        assert archive.revision_count == 1
        assert archive.checkout("1.1") == V1
        assert fresh.users.last_seen_version("fred@att.com", URL).when >= 0
        assert verify_store(repo).ok

    def test_interrupted_txn_warns_by_name_on_load(self, world):
        clock, network, server, store, repo = world
        store.failpoints.arm(CrashPlan.at("txn.seen-appended"))
        with pytest.raises(SimulatedCrash):
            store.remember("fred@att.com", URL)
        fresh = SnapshotStore(clock, store.agent)
        with pytest.warns(JournalRecoveryWarning, match="never committed"):
            load_store(fresh, repo)

    def test_crash_mid_batch_rolls_back_all_users(self, world):
        # Second user's stamp crashes: NO user keeps a stamp — the
        # batch is one transaction, not three.
        clock, network, server, store, repo = world
        users = ["a@x.com", "b@x.com", "c@x.com"]
        store.failpoints.arm(CrashPlan.at("batch.user-stamped", hit=2))
        with pytest.raises(SimulatedCrash):
            store.checkin_content_batch(users, URL, V1)
        fresh = recover(world)
        assert fresh.archive_for(URL).revision_count == 0
        for user in users:
            assert fresh.users.last_seen_version(user, URL) is None
        assert verify_store(repo).ok

    def test_crash_during_diff_checkin_rolls_back(self, world):
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        clock.advance(DAY)
        server.set_page("/page", V2)
        store.failpoints.arm(CrashPlan.at("txn.commit"))
        with pytest.raises(SimulatedCrash):
            store.diff("fred@att.com", URL)
        fresh = recover(world)
        assert fresh.archive_for(URL).revision_count == 1
        assert verify_store(repo).ok

    def test_wal_ids_stay_unique_across_restarts(self, world):
        clock, network, server, store, repo = world
        store.remember("fred@att.com", URL)
        fresh = recover(world)
        clock.advance(DAY)
        server = world[1].server_for("site.com")
        server.set_page("/page", V2)
        fresh.remember("fred@att.com", URL)
        txn_ids = [e.txn for e in scan_journal(repo).entries
                   if isinstance(e, TxnIntent)]
        assert len(txn_ids) == len(set(txn_ids))


class TestByteIdentity:
    """Acceptance: zero-crash single-process runs are byte-identical to
    the plain (pre-transactional) service output."""

    def _drive(self, tmp_path, transactional):
        clock, network, server, store, repo = make_world(
            tmp_path, transactional=transactional
        )
        service = SnapshotService(
            store, keepalive=KeepAlive(httpd_timeout=60, emit_interval=15),
            costs=OperationCosts(fetch=20, htmldiff=30, cheap=1),
        )
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", service)
        client = UserAgent(network, clock)
        base = "http://aide.att.com/cgi-bin/snapshot"
        bodies = []

        def call(query):
            response = client.get(f"{base}?{query}").response
            bodies.append((response.status, response.body))

        call(f"action=remember&url={URL}&user=fred@att.com")
        clock.advance(DAY)
        server.set_page("/page", V2)
        call(f"action=remember&url={URL}&user=tom@att.com")
        call(f"action=diff&url={URL}&user=fred@att.com")
        call(f"action=history&url={URL}&user=fred@att.com")
        call(f"action=view&url={URL}&rev=1.1")
        return bodies

    def test_transactional_store_output_is_byte_identical(self, tmp_path):
        plain = self._drive(tmp_path / "plain", transactional=False)
        txn = self._drive(tmp_path / "txn", transactional=True)
        assert plain == txn
