"""Tests for the deterministic scheduler, queued locks, crash plans.

The lab bench for paper §4.2's operational problems: reproducible
interleavings, real lock queueing, stale-lock breaking after a crashed
holder, lease expiry, and wait-for-graph deadlock detection enforcing
the url-before-user lock order.
"""

import pytest

from repro.core.snapshot.locking import LockError, LockManager
from repro.core.snapshot.sched import (
    CRASH_POINTS,
    CrashPlan,
    DeadlockError,
    Failpoints,
    SimScheduler,
    SimulatedCrash,
)
from repro.simclock import SimClock


class TestCrashPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan(point="no.such.point")

    def test_hit_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashPlan(point="txn.commit", hit=0)

    def test_seeded_is_deterministic(self):
        for seed in range(20):
            assert CrashPlan.seeded(seed) == CrashPlan.seeded(seed)

    def test_seeded_stays_in_registry(self):
        for seed in range(50):
            plan = CrashPlan.seeded(seed)
            assert plan.point in CRASH_POINTS
            assert plan.hit >= 1

    def test_should_crash_matches_point_and_hit(self):
        plan = CrashPlan.at("remember.fetched", hit=2)
        assert not plan.should_crash("remember.fetched", 1)
        assert plan.should_crash("remember.fetched", 2)
        assert not plan.should_crash("txn.commit", 2)


class TestFailpoints:
    def test_undeclared_point_rejected(self):
        fp = Failpoints()
        with pytest.raises(ValueError):
            fp.step("not.a.point")

    def test_inactive_step_only_counts(self):
        fp = Failpoints()
        assert not fp.active
        fp.step("txn.commit")
        fp.step("txn.commit")
        assert fp.hits["txn.commit"] == 2
        assert fp.stats() == {"steps": 2, "crashes": 0, "timeout_aborts": 0}

    def test_standalone_plan_raises_at_the_hit(self):
        fp = Failpoints()
        fp.arm(CrashPlan.at("remember.fetched", hit=2))
        fp.step("remember.fetched")  # hit 1: survives
        with pytest.raises(SimulatedCrash) as info:
            fp.step("remember.fetched")
        assert info.value.point == "remember.fetched"
        assert info.value.hit == 2
        assert fp.crashes == 1

    def test_arm_resets_hit_counters(self):
        fp = Failpoints()
        fp.step("txn.commit")
        fp.arm(CrashPlan.at("txn.commit", hit=1))
        with pytest.raises(SimulatedCrash):
            fp.step("txn.commit")

    def test_crash_is_not_an_ordinary_exception(self):
        # BaseException: `except Exception` cleanup code cannot swallow
        # a simulated death and pretend the process survived.
        assert not issubclass(SimulatedCrash, Exception)

    def test_recording_traces_points(self):
        fp = Failpoints()
        fp.recording = True
        fp.step("txn.intent-appended")
        fp.step("txn.commit")
        assert fp.trace == ["txn.intent-appended", "txn.commit"]

    def test_armed_timeout_fires_only_at_commit_barrier(self):
        from repro.core.snapshot.keepalive import CgiTimeout
        fp = Failpoints()
        fp.arm_timeout()
        fp.step("remember.fetched")  # not the barrier: nothing happens
        with pytest.raises(CgiTimeout):
            fp.step("txn.commit")
        assert fp.timeout_aborts == 1
        assert not fp.disarm_timeout()  # already fired


class TestSchedulerDeterminism:
    def _run_once(self, seed):
        sched = SimScheduler(seed=seed)

        def worker():
            sched.checkpoint("a")
            sched.checkpoint("b")
            sched.checkpoint("c")
            return "done"

        for name in ("p1", "p2", "p3"):
            sched.spawn(name, worker)
        sched.run()
        sched.join_threads()
        return list(sched.trace)

    def test_same_seed_same_interleaving(self):
        assert self._run_once(seed=42) == self._run_once(seed=42)
        assert self._run_once(seed=7) == self._run_once(seed=7)

    def test_round_robin_alternates(self):
        trace = self._run_once(seed=None)
        # Strict rotation: p1 a, p2 a, p3 a, p1 b, ...
        assert trace[:6] == [
            ("p1", "a"), ("p2", "a"), ("p3", "a"),
            ("p1", "b"), ("p2", "b"), ("p3", "b"),
        ]

    def test_all_processes_complete(self):
        sched = SimScheduler()
        sched.spawn("p1", lambda: 11)
        sched.spawn("p2", lambda: 22)
        procs = sched.run()
        sched.join_threads()
        assert procs["p1"].result == 11
        assert procs["p2"].result == 22
        assert all(p.state == "done" for p in procs.values())

    def test_process_exception_is_reported_not_raised(self):
        sched = SimScheduler()

        def boom():
            raise RuntimeError("bang")

        sched.spawn("p1", boom)
        procs = sched.run()
        sched.join_threads()
        assert procs["p1"].state == "failed"
        assert isinstance(procs["p1"].error, RuntimeError)

    def test_duplicate_name_rejected(self):
        sched = SimScheduler()
        sched.spawn("p1", lambda: None)
        with pytest.raises(ValueError):
            sched.spawn("p1", lambda: None)


class TestQueuedLocks:
    def _bench(self, seed=None, **lock_kwargs):
        sched = SimScheduler(seed=seed)
        locks = LockManager(**lock_kwargs)
        locks.attach(sched)
        return sched, locks

    def test_contended_acquire_blocks_then_gets_lock(self):
        sched, locks = self._bench()
        order = []

        def holder():
            with locks.acquire("url:x"):
                sched.checkpoint("held")
                order.append("holder")

        def waiter():
            with locks.acquire("url:x"):
                order.append("waiter")

        sched.spawn("holder", holder)
        sched.spawn("waiter", waiter)
        procs = sched.run()
        sched.join_threads()
        assert all(p.state == "done" for p in procs.values())
        assert order == ["holder", "waiter"]
        assert ("waiter", "blocked:url:x") in sched.trace
        assert ("waiter", "granted:url:x") in sched.trace
        assert locks.contentions == 1

    def test_queue_is_fifo(self):
        sched, locks = self._bench()
        order = []

        def holder():
            with locks.acquire("url:x"):
                sched.checkpoint("held")
                sched.checkpoint("held more")

        def waiter(name):
            def body():
                with locks.acquire("url:x"):
                    order.append(name)
            return body

        sched.spawn("holder", holder)
        sched.spawn("w1", waiter("w1"))
        sched.spawn("w2", waiter("w2"))
        sched.spawn("w3", waiter("w3"))
        sched.run()
        sched.join_threads()
        assert order == ["w1", "w2", "w3"]

    def test_killed_holder_lock_granted_to_waiter(self):
        # The §4.2 stale-lock story: the crashed process's lock file
        # outlives it; breaking it unblocks the queue.
        sched, locks = self._bench()
        fp = Failpoints()
        fp.attach(sched)
        fp.arm(CrashPlan.at("remember.fetched", hit=1))
        outcomes = []

        def doomed():
            locks.acquire("url:x")  # deliberately never released
            fp.step("remember.fetched")  # killed here, lock still held

        def survivor():
            with locks.acquire("url:x"):
                outcomes.append("got it")

        sched.spawn("doomed", doomed)
        sched.spawn("survivor", survivor)
        procs = sched.run()
        sched.join_threads()
        assert procs["doomed"].state == "dead"
        assert procs["doomed"].crashed_at == "remember.fetched"
        assert procs["survivor"].state == "done"
        assert outcomes == ["got it"]
        assert locks.stale_breaks == 1

    def test_corpse_lock_without_waiters_broken_by_next_acquirer(self):
        sched, locks = self._bench()
        fp = Failpoints()
        fp.attach(sched)
        fp.arm(CrashPlan.at("remember.fetched", hit=1))

        def doomed():
            locks.acquire("url:x")
            fp.step("remember.fetched")

        sched.spawn("doomed", doomed)
        sched.run()
        sched.join_threads()
        # Nobody was waiting: the stale lock file is still there.
        assert locks.held("url:x")
        assert locks.holder("url:x") == "doomed"

        def late():
            with locks.acquire("url:x"):
                return "broke in"

        sched2_proc = sched.spawn("late", late)
        sched.run()
        sched.join_threads()
        assert sched2_proc.result == "broke in"
        assert locks.stale_breaks == 1

    def test_lease_expiry_breaks_old_lock(self):
        clock = SimClock()
        sched = SimScheduler()
        locks = LockManager(clock, lease_seconds=300)
        locks.attach(sched)
        locks.acquire("url:x")  # driver-held, never released
        clock.advance(600)

        def taker():
            with locks.acquire("url:x"):
                return "took over"

        proc = sched.spawn("taker", taker)
        sched.run()
        sched.join_threads()
        assert proc.result == "took over"
        assert locks.lease_expiries == 1

    def test_unexpired_foreign_lock_refused_outside_processes(self):
        clock = SimClock()
        locks = LockManager(clock, lease_seconds=300)
        sched = SimScheduler()
        locks.attach(sched)

        def holder():
            locks.acquire("url:x")

        sched.spawn("holder", holder)
        sched.run()
        sched.join_threads()
        # The driver cannot block; an unexpired foreign lock is an error.
        with pytest.raises(LockError):
            locks.acquire("url:x")


class TestDeadlockDetection:
    def _wedge(self):
        """Two processes taking the same two locks in opposite order."""
        sched = SimScheduler()
        locks = LockManager()
        locks.attach(sched)

        def ordered():  # url before user: the discipline
            with locks.acquire("url:x"):
                sched.checkpoint("has url")
                with locks.acquire("user:alice"):
                    pass

        def misordered():  # user before url: the violation
            with locks.acquire("user:alice"):
                sched.checkpoint("has user")
                with locks.acquire("url:x"):
                    pass

        sched.spawn("ordered", ordered)
        sched.spawn("misordered", misordered)
        procs = sched.run()
        sched.join_threads()
        return locks, procs

    def test_cycle_detected_and_reported(self):
        locks, procs = self._wedge()
        failed = [p for p in procs.values()
                  if isinstance(p.error, DeadlockError)]
        assert len(failed) == 1
        cycle = failed[0].error.cycle
        assert any("url:x" in hop for hop in cycle)
        assert any("user:alice" in hop for hop in cycle)
        assert "deadlock:" in str(failed[0].error)
        assert locks.deadlocks == 1

    def test_misordering_counted(self):
        locks, _procs = self._wedge()
        assert locks.order_violations == 1

    def test_victim_unwinding_releases_its_lock(self):
        # The DeadlockError unwinds the victim's `with` blocks, so the
        # other process finishes normally.
        _locks, procs = self._wedge()
        survivors = [p for p in procs.values() if p.state == "done"]
        assert len(survivors) == 1

    def test_strict_order_rejects_statically(self):
        locks = LockManager(strict_order=True)
        with locks.acquire("user:alice"):
            with pytest.raises(LockError):
                locks.acquire("url:x")
        assert locks.order_violations == 1

    def test_url_then_user_is_clean(self):
        locks = LockManager(strict_order=True)
        with locks.acquire("url:x"):
            with locks.acquire("user:alice"):
                pass
        assert locks.order_violations == 0
