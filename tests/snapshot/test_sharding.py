"""Tests for URL-hash sharding of the snapshot store (§4.2).

The properties that make sharding safe to deploy: routing is stable
(including across fleet growth), a sharded deployment is byte-identical
to a single store for every CGI action, per-shard repositories fsck as
one, and scheduler-driven interleavings stay deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.sharding import (
    ShardConfigError,
    ShardRouter,
    ShardedSnapshotStore,
    load_sharded,
    read_replication_factor,
    read_shard_count,
    save_sharded,
    shard_dirname,
    verify_sharded,
)
from repro.core.snapshot.sched import SimScheduler
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.http import Request
from repro.web.network import Network

PAGES = 24


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    origin = network.create_server("site.com")
    for i in range(PAGES):
        origin.set_page(f"/p{i}.html", f"<P>page {i} first version.</P>")
    agent = UserAgent(network, clock)
    return clock, network, origin, agent


def urls():
    return [f"http://site.com/p{i}.html" for i in range(PAGES)]


class TestShardRouter:
    def test_routing_is_stable_across_instances(self):
        first, second = ShardRouter(4), ShardRouter(4)
        for url in urls():
            assert first.shard_for(url) == second.shard_for(url)

    def test_equivalent_urls_share_a_shard(self):
        router = ShardRouter(4)
        assert (router.shard_for("HTTP://Site.COM/p1.html")
                == router.shard_for("http://site.com/p1.html"))

    def test_growth_only_moves_urls_to_the_new_shard(self):
        """The rendezvous property: going N -> N+1 shards, a URL either
        stays put or moves to the newly added shard — old shards never
        trade URLs among themselves."""
        many = [f"http://site.com/page{i}.html" for i in range(300)]
        for n in (1, 2, 3, 4, 7):
            before = ShardRouter(n)
            after = ShardRouter(n + 1)
            for url in many:
                old, new = before.shard_for(url), after.shard_for(url)
                assert new == old or new == n
        # ...and growth does move *something*, or it would be useless.
        assert any(ShardRouter(5).shard_for(url) == 4 for url in many)

    def test_every_shard_gets_some_urls(self):
        router = ShardRouter(4)
        many = [f"http://site.com/page{i}.html" for i in range(300)]
        owners = {router.shard_for(url) for url in many}
        assert owners == {0, 1, 2, 3}

    def test_route_counts(self):
        router = ShardRouter(2)
        for url in urls():
            router.route(url)
        assert sum(router.routed) == PAGES

    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestShardedStoreIdentity:
    """A 4-shard store behind the CGI service answers byte-for-byte
    like the single-store reference, for every action."""

    def build_pair(self, world):
        clock, network, origin, agent = world
        sharded = ShardedSnapshotStore(clock, agent, shard_count=4)
        plain = SnapshotStore(clock, agent)
        return SnapshotService(sharded), SnapshotService(plain)

    @staticmethod
    def call(service, query, now=0):
        request = Request("GET", f"http://aide.att.com/cgi-bin/snapshot?{query}")
        return service(request, now)

    def test_all_actions_byte_identical(self, world):
        clock, network, origin, agent = world
        sut, ref = self.build_pair(world)
        queries = []
        for i, url in enumerate(urls()):
            queries.append(f"action=remember&url={url}&user=u{i % 3}@x.com")
        # Second revisions, so diffs and history have content.
        for i in range(PAGES):
            origin.set_page(f"/p{i}.html", f"<P>page {i} second version.</P>")
        clock.advance(DAY)
        for i, url in enumerate(urls()):
            queries.append(f"action=remember&url={url}&user=u{i % 3}@x.com")
        for i, url in enumerate(urls()):
            queries.extend([
                f"action=view&url={url}&rev=1.1",
                f"action=view&url={url}&rev=1.2",
                f"action=view&url={url}&date=0",
                f"action=diff&url={url}&user=u{i % 3}@x.com&r1=1.1&r2=1.2",
                f"action=history&url={url}&user=u{i % 3}@x.com",
            ])
        queries.append("")  # the registration form
        queries.append("action=view&url=http://site.com/missing.html")  # 404
        for query in queries:
            mine = self.call(sut, query, clock.now)
            theirs = self.call(ref, query, clock.now)
            assert (mine.status, mine.body) == (theirs.status, theirs.body), \
                f"diverged on {query!r}"

    def test_accounting_aggregates(self, world):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=4)
        reference = SnapshotStore(clock, agent)
        for url in urls():
            store.remember("fred@x.com", url)
            reference.remember("fred@x.com", url)
        assert store.url_count() == reference.url_count() == PAGES
        assert store.total_bytes() == reference.total_bytes()
        assert store.bytes_by_url() == reference.bytes_by_url()
        # Archives are partitioned, not mirrored: each shard holds only
        # its own URLs, and together they hold all of them.
        per_shard = [shard.url_count() for shard in store.shards]
        assert sum(per_shard) == PAGES
        assert all(count < PAGES for count in per_shard)

    def test_stats_shape(self, world):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=4)
        for url in urls():
            store.remember("fred@x.com", url)
            store.view(url)
        stats = store.stats()
        assert stats["sharding"]["shards"] == 4
        assert sum(stats["sharding"]["routed"]) >= PAGES
        assert stats["archives"]["count"] == PAGES
        assert stats["archives"]["revisions"] == PAGES
        # Recomputed ratio stays a ratio, not a sum of four ratios.
        assert 0.0 <= stats["checkout_cache"]["hit_rate"] <= 1.0


class TestShardedPersistence:
    def test_save_verify_load_roundtrip(self, world, tmp_path):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=3)
        for url in urls():
            store.remember("fred@x.com", url)
        directory = str(tmp_path / "repo")
        save_sharded(store, directory)
        assert read_shard_count(directory) == 3

        report = verify_sharded(directory)
        assert report.ok
        assert len(report.reports) == 3
        assert "3/3 shard(s) clean" in report.summary()

        clock2 = SimClock()
        agent2 = UserAgent(network, clock2)
        loaded = ShardedSnapshotStore(clock2, agent2, shard_count=3)
        assert load_sharded(loaded, directory) > 0
        for url in urls():
            assert loaded.view(url, "1.1") == store.view(url, "1.1")

    def test_load_rejects_mismatched_shard_count(self, world, tmp_path):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=3)
        store.remember("fred@x.com", urls()[0])
        directory = str(tmp_path / "repo")
        save_sharded(store, directory)
        other = ShardedSnapshotStore(clock, agent, shard_count=4)
        with pytest.raises(ValueError, match="re-shard"):
            load_sharded(other, directory)

    def test_corrupt_shard_is_named_in_the_aggregate(self, world, tmp_path):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=3)
        for url in urls():
            store.remember("fred@x.com", url)
        directory = str(tmp_path / "repo")
        save_sharded(store, directory)
        # Find a shard that owns at least one archive and corrupt it.
        victim = store.shard_for(urls()[0])
        shard_dir = tmp_path / "repo" / shard_dirname(victim)
        doomed = next(path for path in shard_dir.rglob("*,v"))
        doomed.unlink()
        report = verify_sharded(str(directory))
        assert not report.ok
        assert any(f"[{shard_dirname(victim)}]" in problem
                   for problem in report.problems)
        # The other shards still check out clean in the per-shard view.
        clean = [index for index, sub in report.reports if sub.ok]
        assert len(clean) == 2 and victim not in clean

    def test_verify_requires_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="SHARDS"):
            verify_sharded(str(tmp_path))


class TestShardedScheduling:
    def run_interleaved(self, seed):
        clock = SimClock()
        network = Network(clock)
        origin = network.create_server("site.com")
        for i in range(PAGES):
            origin.set_page(f"/p{i}.html", f"<P>page {i} first version.</P>")
        agent = UserAgent(network, clock)
        store = ShardedSnapshotStore(clock, agent, shard_count=4)
        sched = SimScheduler(seed=seed)
        store.attach_scheduler(sched)
        for name, user in (("fred", "fred@x.com"), ("tom", "tom@x.com")):
            for i, url in enumerate(urls()):
                sched.spawn(f"{name}-{i}",
                            lambda u=user, target=url:
                            store.remember(u, target))
        procs = sched.run()
        sched.join_threads()
        assert all(p.state == "done" for p in procs.values())
        revisions = {url: store.archive_for(url).head_revision
                     for url in urls()}
        fetches = origin.get_count
        return revisions, fetches, list(sched.trace)

    def test_concurrent_remembers_are_deterministic(self):
        first = self.run_interleaved(seed=7)
        second = self.run_interleaved(seed=7)
        assert first == second

    def test_coalescing_still_works_per_shard(self):
        revisions, fetches, _trace = self.run_interleaved(seed=7)
        # Two users per URL but each page fetched once: the per-shard
        # lock manager coalesced the simultaneous remembers.
        assert fetches == PAGES
        assert all(head == "1.1" for head in revisions.values())

    def test_different_seeds_may_reorder_but_agree_on_state(self):
        first = self.run_interleaved(seed=1)
        second = self.run_interleaved(seed=2)
        assert first[0] == second[0]  # same final archives
        assert first[1] == second[1]  # same fetch count


class TestReplicaSets:
    def test_primary_replica_is_the_classic_route(self):
        router = ShardRouter(5)
        for url in urls():
            assert router.replicas_for(url, 2)[0] == router.shard_for(url)

    def test_replica_sets_are_distinct_and_stable(self):
        first, second = ShardRouter(5), ShardRouter(5)
        for url in urls():
            replicas = first.replicas_for(url, 3)
            assert len(set(replicas)) == 3
            assert replicas == second.replicas_for(url, 3)

    def test_too_many_replicas_is_a_config_error(self):
        router = ShardRouter(3)
        with pytest.raises(ShardConfigError):
            router.replicas_for("http://site.com/p1.html", 4)
        with pytest.raises(ValueError):
            router.replicas_for("http://site.com/p1.html", 0)

    @settings(deadline=None, max_examples=60)
    @given(
        path=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=24,
        ),
        shards=st.integers(min_value=2, max_value=9),
        factor=st.integers(min_value=2, max_value=3),
    )
    def test_growth_preserves_replica_ranking(self, path, shards, factor):
        """Rendezvous replica sets are prefix-stable: going N -> N+1
        shards, the new shard may insert itself into a URL's ranking,
        but the existing shards never reorder relative to each other —
        so at most one member of any replica set changes, and it can
        only change *to the new shard*."""
        url = f"http://site.com/{path}"
        factor = min(factor, shards)
        before = ShardRouter(shards).replicas_for(url, factor)
        after = ShardRouter(shards + 1).replicas_for(url, factor)
        # Old shards keep their relative order in the new ranking.
        surviving = [shard for shard in after if shard != shards]
        positions = [before.index(shard) for shard in surviving
                     if shard in before]
        assert positions == sorted(positions)
        # Any membership change is the new shard displacing the former
        # last member; the set never changes any other way.
        displaced = [shard for shard in before if shard not in after]
        if shards in after:
            assert displaced == [before[-1]]
            assert surviving == before[:-1]
        else:
            assert after == before


class TestReplicationManifest:
    def test_replication_factor_round_trips(self, world, tmp_path):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=4)
        store.remember("fred@x.com", urls()[0])
        directory = str(tmp_path / "repo")
        save_sharded(store, directory, replication=2)
        assert read_shard_count(directory) == 4
        assert read_replication_factor(directory) == 2

    def test_bare_count_manifest_reads_as_unreplicated(self, tmp_path):
        # Pre-replication repositories wrote only the shard count; they
        # must keep loading, as R=1.
        (tmp_path / "SHARDS").write_text("3\n")
        assert read_shard_count(str(tmp_path)) == 3
        assert read_replication_factor(str(tmp_path)) == 1

    def test_unknown_manifest_tags_are_ignored(self, tmp_path):
        (tmp_path / "SHARDS").write_text(
            "4\nreplication 2\nfuture-knob on\n")
        assert read_shard_count(str(tmp_path)) == 4
        assert read_replication_factor(str(tmp_path)) == 2

    def test_oversized_replication_factor_is_rejected(self, tmp_path):
        (tmp_path / "SHARDS").write_text("2\nreplication 3\n")
        with pytest.raises(ShardConfigError):
            read_replication_factor(str(tmp_path))

    def test_load_refuses_shard_count_shrink(self, world, tmp_path):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=4)
        store.remember("fred@x.com", urls()[0])
        directory = str(tmp_path / "repo")
        save_sharded(store, directory)
        shrunk = ShardedSnapshotStore(clock, agent, shard_count=3)
        with pytest.raises(ShardConfigError, match="decommission"):
            load_sharded(shrunk, directory)


class TestVerificationSummary:
    def test_summary_dict_aggregates_the_fleet(self, world, tmp_path):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=3)
        for url in urls():
            store.remember("fred@x.com", url)
        directory = str(tmp_path / "repo")
        save_sharded(store, directory)
        summary = verify_sharded(directory).summary_dict()
        assert summary["ok"] is True
        assert summary["shards"] == 3
        assert summary["clean_shards"] == 3
        assert summary["failed_shards"] == []
        assert summary["problem_count"] == 0
        assert summary["repairs_by_shard"] == {}

    def test_summary_dict_names_the_failed_shard(self, world, tmp_path):
        clock, network, origin, agent = world
        store = ShardedSnapshotStore(clock, agent, shard_count=3)
        for url in urls():
            store.remember("fred@x.com", url)
        directory = str(tmp_path / "repo")
        save_sharded(store, directory)
        victim = store.shard_for(urls()[0])
        doomed = next((tmp_path / "repo" / shard_dirname(victim))
                      .rglob("*,v"))
        doomed.unlink()
        report = verify_sharded(directory)
        summary = report.summary_dict()
        assert summary["ok"] is False
        assert summary["failed_shards"] == [shard_dirname(victim)]
        assert summary["clean_shards"] == 2
        assert summary["problem_count"] >= 1
        # ...and the JSON body carries the rollup for fsck --json.
        assert report.to_dict()["summary"] == summary
