"""Tests for on-disk snapshot repository persistence."""

import os

import pytest

from repro.core.snapshot.persistence import (
    load_store,
    mangle_url,
    save_store,
    unmangle_name,
)
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network


@pytest.fixture
def populated_store():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/a.html", "<P>page a, version one.</P>\n<P>More.</P>")
    server.set_page("/b.html", "<P>page b.</P>")
    store = SnapshotStore(clock, UserAgent(network, clock))
    store.remember("fred@att.com", "http://site.com/a.html")
    store.remember("tom@att.com", "http://site.com/a.html")
    store.remember("fred@att.com", "http://site.com/b.html")
    clock.advance(DAY)
    server.set_page("/a.html", "<P>page a, version two.</P>\n<P>More.</P>")
    store.remember("fred@att.com", "http://site.com/a.html")
    return clock, network, store


class TestMangling:
    def test_roundtrip(self):
        for url in (
            "http://site.com/a.html",
            "http://h.com:600/x?q=1&r=2",
            "http://h.com/päge/©",
        ):
            assert unmangle_name(mangle_url(url)) == url

    def test_safe_filename(self):
        name = mangle_url("http://h.com/x?q=1/../etc")
        assert "/" not in name
        assert "?" not in name


class TestSaveLoad:
    def test_directory_layout(self, populated_store, tmp_path):
        clock, network, store = populated_store
        written = save_store(store, str(tmp_path))
        assert written == 2 + 2  # two archives + users.ctl + MANIFEST
        names = os.listdir(tmp_path / "archives")
        assert len(names) == 2
        assert all(name.endswith(",v") for name in names)
        assert (tmp_path / "users.ctl").exists()
        assert (tmp_path / "MANIFEST").exists()

    def test_files_are_browsable_text(self, populated_store, tmp_path):
        # The §4.2 security observation: anyone with directory access
        # can read who tracks what.
        clock, network, store = populated_store
        save_store(store, str(tmp_path))
        control = (tmp_path / "users.ctl").read_text()
        assert "fred@att.com" in control
        assert "tom@att.com" in control

    def test_roundtrip_restores_everything(self, populated_store, tmp_path):
        clock, network, store = populated_store
        save_store(store, str(tmp_path))
        fresh = SnapshotStore(clock, store.agent)
        loaded = load_store(fresh, str(tmp_path))
        assert loaded == 2
        archive = fresh.archives["http://site.com/a.html"]
        assert archive.revision_count == 2
        assert "version one" in archive.checkout("1.1")
        assert "version two" in archive.checkout("1.2")
        seen = fresh.users.last_seen_version("fred@att.com",
                                             "http://site.com/a.html")
        assert seen.revision == "1.2"
        assert fresh.users.users_tracking("http://site.com/a.html") == [
            "fred@att.com", "tom@att.com",
        ]

    def test_restored_store_keeps_working(self, populated_store, tmp_path):
        clock, network, store = populated_store
        save_store(store, str(tmp_path))
        fresh = SnapshotStore(clock, store.agent)
        load_store(fresh, str(tmp_path))
        result = fresh.diff("fred@att.com", "http://site.com/a.html",
                            rev_old="1.1", rev_new="1.2")
        assert not result.identical
        clock.advance(DAY)
        network.server_for("site.com").set_page("/a.html", "<P>v3.</P>")
        remembered = fresh.remember("fred@att.com", "http://site.com/a.html")
        assert remembered.revision == "1.3"

    def test_load_without_manifest_uses_unmangling(self, populated_store, tmp_path):
        clock, network, store = populated_store
        save_store(store, str(tmp_path))
        os.remove(tmp_path / "MANIFEST")
        fresh = SnapshotStore(clock, store.agent)
        loaded = load_store(fresh, str(tmp_path))
        assert loaded == 2
        assert "http://site.com/a.html" in fresh.archives

    def test_load_empty_directory(self, tmp_path):
        clock = SimClock()
        network = Network(clock)
        store = SnapshotStore(clock, UserAgent(network, clock))
        assert load_store(store, str(tmp_path)) == 0
