"""Tests for authenticated snapshot accounts (§4.2)."""

import pytest

from repro.core.snapshot.auth import (
    AccountRegistry,
    AuthenticatedSnapshotService,
    AuthError,
)
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/page.html", "<P>first version of the page.</P>")
    store = SnapshotStore(clock, UserAgent(network, clock))
    registry = AccountRegistry(clock)
    service = AuthenticatedSnapshotService(store, registry)
    return clock, server, store, registry, service


class TestAccounts:
    def test_create_and_login(self, world):
        clock, server, store, registry, service = world
        account = registry.create_account("hunter2")
        assert account.startswith("acct-")
        token = registry.login(account, "hunter2")
        assert registry.resolve(token) == account

    def test_ids_are_impersonal(self, world):
        clock, server, store, registry, service = world
        a = registry.create_account("pw1")
        b = registry.create_account("pw2")
        assert a != b
        assert "@" not in a  # not an email address

    def test_wrong_password(self, world):
        clock, server, store, registry, service = world
        account = registry.create_account("right")
        with pytest.raises(AuthError):
            registry.login(account, "wrong")

    def test_unknown_account(self, world):
        clock, server, store, registry, service = world
        with pytest.raises(AuthError):
            registry.login("acct-9999", "pw")

    def test_empty_password_rejected(self, world):
        clock, server, store, registry, service = world
        with pytest.raises(AuthError):
            registry.create_account("")

    def test_bad_token_rejected(self, world):
        clock, server, store, registry, service = world
        with pytest.raises(AuthError):
            registry.resolve("not-a-token")

    def test_logout_invalidates(self, world):
        clock, server, store, registry, service = world
        account = registry.create_account("pw")
        token = registry.login(account, "pw")
        registry.logout(token)
        with pytest.raises(AuthError):
            registry.resolve(token)

    def test_password_change_revokes_sessions(self, world):
        clock, server, store, registry, service = world
        account = registry.create_account("old")
        token = registry.login(account, "old")
        registry.change_password(account, "old", "new")
        with pytest.raises(AuthError):
            registry.resolve(token)
        assert registry.login(account, "new")
        with pytest.raises(AuthError):
            registry.login(account, "old")

    def test_admin_audit_shows_accounts_not_people(self, world):
        clock, server, store, registry, service = world
        registry.create_account("pw")
        clock.advance(DAY)
        registry.create_account("pw")
        audit = registry.admin_audit()
        assert len(audit) == 2
        assert audit[1][1] == DAY  # creation times visible
        assert all(acct.startswith("acct-") for acct, _ in audit)


class TestAuthenticatedService:
    def test_remember_under_account_id(self, world):
        clock, server, store, registry, service = world
        account = registry.create_account("pw")
        token = registry.login(account, "pw")
        result = service.remember(token, "http://site.com/page.html")
        assert result.revision == "1.1"
        # The store sees only the opaque id.
        assert store.users.users_tracking("http://site.com/page.html") == [account]

    def test_operations_require_token(self, world):
        clock, server, store, registry, service = world
        with pytest.raises(AuthError):
            service.remember("bogus", "http://site.com/page.html")
        with pytest.raises(AuthError):
            service.diff("bogus", "http://site.com/page.html")

    def test_diff_and_history_roundtrip(self, world):
        clock, server, store, registry, service = world
        account = registry.create_account("pw")
        token = registry.login(account, "pw")
        service.remember(token, "http://site.com/page.html")
        clock.advance(DAY)
        server.set_page("/page.html", "<P>second version, rather different.</P>")
        result = service.diff(token, "http://site.com/page.html")
        assert not result.identical
        history = service.history(token, "http://site.com/page.html")
        assert history[0][1]  # account saw revision 1.1

    def test_my_urls(self, world):
        clock, server, store, registry, service = world
        account = registry.create_account("pw")
        token = registry.login(account, "pw")
        service.remember(token, "http://site.com/page.html")
        assert service.my_urls(token) == ["http://site.com/page.html"]

    def test_who_tracks_reveals_only_opaque_ids(self, world):
        clock, server, store, registry, service = world
        viewer = registry.login(registry.create_account("pw1"), "pw1")
        tracker = registry.create_account("pw2")
        tracker_token = registry.login(tracker, "pw2")
        service.remember(tracker_token, "http://site.com/page.html")
        watchers = service.who_tracks(viewer, "http://site.com/page.html")
        assert watchers == [tracker]
        assert all("@" not in w for w in watchers)
