"""Tests for admission control and service replication (§4.2)."""

import pytest

from repro.core.snapshot.replication import (
    AdmissionControl,
    ReplicatedSnapshotService,
)
from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.web.resilience import ResilientAgent, RetryPolicy


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    origin = network.create_server("site.com")
    for i in range(12):
        origin.set_page(f"/p{i}.html", f"<P>page {i} content.</P>")
    agent = UserAgent(network, clock)
    return clock, network, origin, agent


def make_service(clock, agent):
    return SnapshotService(SnapshotStore(clock, agent))


def call(client, query):
    return client.get(f"http://aide.att.com/cgi-bin/snapshot?{query}").response


class TestAdmissionControl:
    def test_over_limit_gets_503(self, world):
        clock, network, origin, agent = world
        limited = AdmissionControl(make_service(clock, agent), clock, limit=3)
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", limited)
        client = UserAgent(network, clock)
        statuses = [
            call(client, f"action=remember&url=http://site.com/p{i}.html&user=u{i}").status
            for i in range(5)
        ]
        assert statuses[:3] == [200, 200, 200]
        assert statuses[3:] == [503, 503]
        assert limited.admitted == 3 and limited.rejected == 2

    def test_limit_resets_next_instant(self, world):
        clock, network, origin, agent = world
        limited = AdmissionControl(make_service(clock, agent), clock, limit=1)
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", limited)
        client = UserAgent(network, clock)
        assert call(client, "action=remember&url=http://site.com/p0.html&user=a").status == 200
        assert call(client, "action=remember&url=http://site.com/p1.html&user=a").status == 503
        clock.advance(1)
        assert call(client, "action=remember&url=http://site.com/p1.html&user=a").status == 200

    def test_bad_limit(self, world):
        clock, network, origin, agent = world
        with pytest.raises(ValueError):
            AdmissionControl(make_service(clock, agent), clock, limit=0)
        with pytest.raises(ValueError):
            AdmissionControl(make_service(clock, agent), clock, limit=1,
                             retry_after=0)

    def test_503_carries_retry_after(self, world):
        clock, network, origin, agent = world
        limited = AdmissionControl(make_service(clock, agent), clock, limit=1)
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", limited)
        client = UserAgent(network, clock)
        call(client, "action=remember&url=http://site.com/p0.html&user=a")
        rejected = call(client,
                        "action=remember&url=http://site.com/p1.html&user=a")
        assert rejected.status == 503
        # The window resets next instant, and the header says so.
        assert rejected.headers.get("Retry-After") == "1"

    def test_resilient_agent_honors_retry_after(self, world):
        """End to end: a ResilientAgent that would otherwise retry with
        zero backoff (base_delay=0, jitter=0) succeeds only because the
        503's Retry-After tells it to wait out the admission window."""
        clock, network, origin, agent = world
        limited = AdmissionControl(make_service(clock, agent), clock, limit=1)
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", limited)
        resilient = ResilientAgent(
            UserAgent(network, clock),
            policy=RetryPolicy(base_delay=0, jitter=0),
        )
        # Exhaust this instant's admission window.
        call(UserAgent(network, clock),
             "action=remember&url=http://site.com/p0.html&user=a")
        before = clock.now
        result = resilient.get(
            "http://aide.att.com/cgi-bin/snapshot?"
            "action=remember&url=http://site.com/p1.html&user=a"
        )
        assert result.response.status == 200
        # The only wait in the policy is the advertised Retry-After.
        assert clock.now == before + 1
        assert resilient.retries == 1
        assert limited.rejected == 1 and limited.admitted == 2


class TestReplication:
    def test_routing_is_stable_and_partitioned(self, world):
        clock, network, origin, agent = world
        replicas = [make_service(clock, agent) for _ in range(3)]
        front = ReplicatedSnapshotService(replicas)
        for url in (f"http://site.com/p{i}.html" for i in range(12)):
            assert front.replica_for(url) == front.replica_for(url)
        indices = {front.replica_for(f"http://site.com/p{i}.html")
                   for i in range(12)}
        assert len(indices) > 1  # load actually spreads

    def test_each_archive_lives_on_one_replica(self, world):
        clock, network, origin, agent = world
        replicas = [make_service(clock, agent) for _ in range(3)]
        front = ReplicatedSnapshotService(replicas)
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", front)
        client = UserAgent(network, clock)
        for i in range(12):
            resp = call(client,
                        f"action=remember&url=http://site.com/p{i}.html&user=u")
            assert resp.status == 200
        assert front.url_count == 12  # no page stored twice
        per_replica = [r.store.url_count() for r in replicas]
        assert sum(per_replica) == 12
        assert max(per_replica) < 12  # and not all on one machine

    def test_diff_reaches_the_right_replica(self, world):
        clock, network, origin, agent = world
        replicas = [make_service(clock, agent) for _ in range(3)]
        front = ReplicatedSnapshotService(replicas)
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", front)
        client = UserAgent(network, clock)
        call(client, "action=remember&url=http://site.com/p0.html&user=fred")
        clock.advance(DAY)
        origin.set_page("/p0.html", "<P>page 0 rewritten entirely anew.</P>")
        resp = call(client, "action=diff&url=http://site.com/p0.html&user=fred")
        assert resp.status == 200
        assert "Internet Difference Engine" in resp.body

    def test_no_replicas_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedSnapshotService([])
