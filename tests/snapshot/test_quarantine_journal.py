"""Tests for the poison-document dead-letter journal."""

from repro.core.quarantine import QuarantineEntry, QuarantineJournal
from repro.web.guards import GuardLimits


class TestRecording:
    def test_record_and_get(self):
        journal = QuarantineJournal()
        journal.record("http://h/x", "token-bomb", "too many tokens",
                       "<B>x</B>" * 10, at=42)
        entry = journal.get("http://h/x")
        assert entry.guard == "token-bomb"
        assert entry.at == 42
        assert entry.attempts == 1

    def test_repeated_trips_accumulate_attempts(self):
        journal = QuarantineJournal()
        journal.record("http://h/x", "token-bomb", "d", "b", at=1)
        journal.record("http://h/x", "nesting-depth", "d2", "b2", at=2)
        entry = journal.get("http://h/x")
        assert entry.attempts == 2
        assert entry.guard == "nesting-depth"  # latest verdict wins
        assert len(journal) == 1

    def test_entries_sorted(self):
        journal = QuarantineJournal()
        for host in ("zeta", "alpha", "mid"):
            journal.record(f"http://{host}/x", "charset", "d", "b")
        assert [e.url for e in journal.entries()] == [
            "http://alpha/x", "http://mid/x", "http://zeta/x"
        ]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        journal = QuarantineJournal(path)
        journal.record("http://h/x", "charset", "bad charset", "café", at=7)
        reloaded = QuarantineJournal(path)
        entry = reloaded.get("http://h/x")
        assert entry.detail == "bad charset"
        assert entry.body == "café"

    def test_torn_tail_line_skipped(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        journal = QuarantineJournal(path)
        journal.record("http://h/x", "charset", "d", "b")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"url": "http://h/torn", "gua')  # crash mid-append
        reloaded = QuarantineJournal(path)
        assert len(reloaded) == 1
        assert "http://h/torn" not in reloaded

    def test_purge_compacts_file(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        journal = QuarantineJournal(path)
        journal.record("http://h/x", "charset", "d", "b")
        journal.record("http://h/y", "charset", "d", "b")
        assert journal.purge("http://h/x") == 1
        assert len(QuarantineJournal(path)) == 1
        assert journal.purge() == 1
        assert len(QuarantineJournal(path)) == 0


class TestRetry:
    def test_retry_releases_now_acceptable_bodies(self):
        journal = QuarantineJournal()
        # Quarantined under strict limits; fine under the defaults.
        journal.record("http://h/deep", "nesting-depth", "d",
                       "<DIV>" * 100 + "x")
        journal.record("http://h/nul", "binary-content", "d", "a\x00b")
        released, still_bad = journal.retry(limits=GuardLimits())
        assert [e.url for e in released] == ["http://h/deep"]
        assert [e.url for e, _ in still_bad] == ["http://h/nul"]
        assert "http://h/deep" not in journal
        assert "http://h/nul" in journal

    def test_retry_single_url(self):
        journal = QuarantineJournal()
        journal.record("http://h/a", "nesting-depth", "d", "<P>fine</P>")
        journal.record("http://h/b", "nesting-depth", "d", "<P>fine</P>")
        released, _ = journal.retry(url="http://h/a")
        assert [e.url for e in released] == ["http://h/a"]
        assert "http://h/b" in journal

    def test_stats(self):
        journal = QuarantineJournal()
        journal.record("http://h/a", "charset", "d", "b")
        journal.record("http://h/b", "charset", "d", "b")
        journal.record("http://h/c", "token-bomb", "d", "b")
        stats = journal.stats()
        assert stats["entries"] == 3
        assert stats["by_guard"] == {"charset": 2, "token-bomb": 1}


class TestEntrySerialization:
    def test_json_round_trip(self):
        entry = QuarantineEntry(
            url="http://h/x", guard="charset", detail="d", body="café",
            at=9, attempts=3, content_type="text/plain",
        )
        assert QuarantineEntry.from_json(entry.to_json()) == entry
