"""Boundary tests for the keep-alive timeout arithmetic and the
mid-operation abort guard.

Pins the edge semantics the docstring promises: an operation exactly as
long as httpd's timeout DIES (the timer fires at the end of the
interval, ``>=`` not ``>``), and a zero-duration operation survives in
every configuration with zero padding.
"""

import pytest

from repro.core.snapshot.keepalive import CgiTimeout, KeepAlive
from repro.core.snapshot.sched import Failpoints
from repro.core.snapshot.service import OperationCosts, SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.core.snapshot.wal import WriteAheadLog
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

URL = "http://site.com/page"


class TestExactBoundary:
    def test_duration_equal_to_timeout_dies_when_disabled(self):
        guard = KeepAlive(httpd_timeout=60, enabled=False)
        with pytest.raises(CgiTimeout):
            guard.run(60)

    def test_duration_one_below_timeout_survives_when_disabled(self):
        guard = KeepAlive(httpd_timeout=60, enabled=False)
        result = guard.run(59)
        assert result.survived and result.padding_spaces == 0

    def test_duration_equal_to_timeout_dies_with_slow_child(self):
        # emit_interval == httpd_timeout: the child's first space is
        # exactly as late as the timer — it loses the same race.
        guard = KeepAlive(httpd_timeout=60, emit_interval=60)
        with pytest.raises(CgiTimeout):
            guard.run(60)
        assert guard.run(59).survived

    def test_duration_equal_to_timeout_survives_with_working_child(self):
        guard = KeepAlive(httpd_timeout=60, emit_interval=15)
        result = guard.run(60)
        assert result.survived
        assert result.padding_spaces == 4

    def test_zero_duration_survives_in_every_configuration(self):
        configs = [
            KeepAlive(httpd_timeout=60, emit_interval=15),
            KeepAlive(httpd_timeout=60, emit_interval=60),
            KeepAlive(httpd_timeout=60, enabled=False),
            KeepAlive(httpd_timeout=1, enabled=False),
        ]
        for guard in configs:
            result = guard.run(0)
            assert result.survived
            assert result.padding_spaces == 0

    def test_padding_at_interval_boundary(self):
        guard = KeepAlive(httpd_timeout=60, emit_interval=15)
        assert guard.run(14).padding_spaces == 0
        assert guard.run(15).padding_spaces == 1
        assert guard.run(30).padding_spaces == 2


def make_world(tmp_path=None):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/page", "<P>guard me.</P>")
    store = SnapshotStore(clock, UserAgent(network, clock))
    if tmp_path is not None:
        store.attach_wal(WriteAheadLog(store, str(tmp_path)))
        store.attach_failpoints(Failpoints())
    return clock, network, server, store


class TestGuard:
    def test_legacy_store_raises_upfront(self):
        # Exact historical behaviour: no transaction machinery, so a
        # doomed operation must not start at all.
        clock, network, server, store = make_world()
        guard = KeepAlive(httpd_timeout=60, enabled=False)
        with pytest.raises(CgiTimeout):
            guard.guard(store, 60)

    def test_legacy_store_survivor_gets_padding(self):
        clock, network, server, store = make_world()
        guard = KeepAlive(httpd_timeout=60, emit_interval=15)
        assert guard.guard(store, 35) == "  "

    def test_transactional_store_arms_instead_of_raising(self, tmp_path):
        clock, network, server, store = make_world(tmp_path)
        guard = KeepAlive(httpd_timeout=60, enabled=False)
        assert guard.guard(store, 60) == ""
        assert store.failpoints._timeout_armed
        assert guard.unguard(store)  # armed but never fired

    def test_transactional_store_survivor_not_armed(self, tmp_path):
        clock, network, server, store = make_world(tmp_path)
        guard = KeepAlive(httpd_timeout=60, emit_interval=15)
        assert guard.guard(store, 35) == "  "
        assert not store.failpoints._timeout_armed
        assert not guard.unguard(store)

    def test_doomed_remember_rolls_back_cleanly(self, tmp_path):
        clock, network, server, store = make_world(tmp_path)
        guard = KeepAlive(httpd_timeout=60, enabled=False)
        guard.guard(store, 120)
        with pytest.raises(CgiTimeout):
            store.remember("fred@att.com", URL)
        assert store.archive_for(URL).revision_count == 0
        assert store.users.last_seen_version("fred@att.com", URL) is None
        assert store.failpoints.timeout_aborts == 1


class TestServiceBoundary:
    def _serve(self, tmp_path=None, **keepalive_kwargs):
        world = make_world(tmp_path)
        clock, network, server, store = world
        service = SnapshotService(
            store,
            keepalive=KeepAlive(**keepalive_kwargs),
            costs=OperationCosts(fetch=60, htmldiff=30, cheap=1),
        )
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", service)
        client = UserAgent(network, clock)
        return store, client

    def _remember(self, client):
        return client.get(
            "http://aide.att.com/cgi-bin/snapshot?action=remember"
            f"&url={URL}&user=fred@att.com"
        ).response

    def test_exact_timeout_is_504_on_legacy_store(self):
        store, client = self._serve(httpd_timeout=60, enabled=False)
        assert self._remember(client).status == 504
        # Historical semantics: the operation never started.
        assert store.archive_for(URL).revision_count == 0

    def test_exact_timeout_is_504_on_transactional_store(self, tmp_path):
        store, client = self._serve(
            tmp_path, httpd_timeout=60, enabled=False
        )
        resp = self._remember(client)
        assert resp.status == 504
        # The work started, hit the commit barrier, and rolled back.
        assert store.failpoints.timeout_aborts == 1
        assert store.wal.stats()["aborted"] == 1
        assert store.archive_for(URL).revision_count == 0
        assert store.users.last_seen_version("fred@att.com", URL) is None

    def test_one_second_under_timeout_succeeds_both_ways(self, tmp_path):
        for store, client in (
            self._serve(httpd_timeout=61, enabled=False),
            self._serve(tmp_path, httpd_timeout=61, enabled=False),
        ):
            resp = self._remember(client)
            assert resp.status == 200
            assert store.archive_for(URL).revision_count == 1
