"""Tests for hostile-content refusal in the snapshot store."""

import pytest

from repro.core.quarantine import QuarantineJournal
from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.sharding import ShardedSnapshotStore
from repro.core.snapshot.store import ContentQuarantined, SnapshotStore
from repro.core.snapshot.wal import WriteAheadLog
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.guards import ContentGuard, GuardLimits
from repro.web.http import Request
from repro.web.network import Network
from repro.web.url import parse_url

BOMB_URL = "http://site.com/bomb"
CLEAN_URL = "http://site.com/clean"
BOMB = "<DIV>" * 200 + "boom"
CLEAN = "<HTML><BODY><P>a perfectly ordinary page.</P></BODY></HTML>"


def make_world(tmp_path=None, with_wal=False, journal=None):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/bomb", BOMB)
    server.set_page("/clean", CLEAN)
    agent = UserAgent(network, clock)
    store = SnapshotStore(
        clock, agent,
        guard=ContentGuard(GuardLimits(max_nesting_depth=64)),
        quarantine=journal,
    )
    if with_wal:
        store.attach_wal(WriteAheadLog(store, str(tmp_path)))
    return clock, server, store


class TestStoreRefusal:
    def test_remember_refuses_hostile_fetch(self):
        _clock, _server, store = make_world()
        with pytest.raises(ContentQuarantined) as excinfo:
            store.remember("fred", BOMB_URL)
        assert excinfo.value.guard == "nesting-depth"
        # The archive was never created: no partial state.
        assert store.archives == {}
        assert store.users.versions_seen("fred", store._canonical(BOMB_URL)) == []

    def test_benign_remember_unaffected(self):
        _clock, _server, store = make_world()
        result = store.remember("fred", CLEAN_URL)
        assert result.changed

    def test_checkin_content_refuses_hostile_body(self):
        _clock, _server, store = make_world()
        with pytest.raises(ContentQuarantined):
            store.checkin_content("fred", BOMB_URL, BOMB)
        assert store.archives == {}

    def test_checkin_batch_refuses_hostile_body(self):
        _clock, _server, store = make_world()
        with pytest.raises(ContentQuarantined):
            store.checkin_content_batch(["a", "b"], BOMB_URL, BOMB)
        assert store.archives == {}

    def test_wal_rolls_back_atomically(self, tmp_path):
        _clock, _server, store = make_world(tmp_path, with_wal=True)
        before = store.wal.stats()["aborted"]
        with pytest.raises(ContentQuarantined):
            store.remember("fred", BOMB_URL)
        assert store.wal.stats()["aborted"] == before + 1
        # The store still works after the refusal.
        assert store.remember("fred", CLEAN_URL).changed

    def test_refusal_journaled(self):
        journal = QuarantineJournal()
        _clock, _server, store = make_world(journal=journal)
        with pytest.raises(ContentQuarantined):
            store.remember("fred", BOMB_URL)
        entry = journal.get(store._canonical(BOMB_URL))
        assert entry is not None
        assert entry.guard == "nesting-depth"

    def test_stats_surface_guard_and_quarantine(self):
        journal = QuarantineJournal()
        _clock, _server, store = make_world(journal=journal)
        with pytest.raises(ContentQuarantined):
            store.remember("fred", BOMB_URL)
        stats = store.stats()
        assert stats["guards"]["attached"]
        assert stats["guards"]["trips"]["nesting-depth"] == 1
        assert stats["quarantine"]["entries"] == 1

    def test_store_without_guard_admits_everything(self):
        clock = SimClock()
        network = Network(clock)
        network.create_server("site.com").set_page("/bomb", BOMB)
        store = SnapshotStore(clock, UserAgent(network, clock))
        assert store.remember("fred", BOMB_URL).changed
        assert store.stats()["guards"] == {"attached": False}

    def test_diff_degrades_under_budget(self):
        clock = SimClock()
        network = Network(clock)
        server = network.create_server("site.com")
        server.set_page("/clean", CLEAN)
        store = SnapshotStore(
            clock, UserAgent(network, clock),
            guard=ContentGuard(GuardLimits(max_diff_cost=4)),
        )
        store.remember("fred", CLEAN_URL)
        clock.advance(60)
        server.set_page(
            "/clean", CLEAN.replace("ordinary", "extraordinary")
        )
        store.remember("fred", CLEAN_URL)
        result = store.diff("fred", CLEAN_URL)
        assert result.degraded
        assert "coarse line diff" in result.html


class TestService422:
    def request(self, url):
        query = (f"action=remember&url={url.replace(':', '%3A').replace('/', '%2F')}"
                 f"&user=fred")
        return Request(
            method="GET",
            url=parse_url(f"http://aide.example/cgi-bin/snapshot?{query}"),
        )

    def test_hostile_remember_returns_422(self):
        _clock, _server, store = make_world()
        service = SnapshotService(store)
        response = service(self.request(BOMB_URL), 0)
        assert response.status == 422
        assert "nesting-depth" in response.body

    def test_benign_remember_still_200(self):
        _clock, _server, store = make_world()
        service = SnapshotService(store)
        response = service(self.request(CLEAN_URL), 0)
        assert response.status == 200


class TestShardedPassthrough:
    def test_sharded_store_refuses_hostile_fetch(self):
        clock = SimClock()
        network = Network(clock)
        server = network.create_server("site.com")
        server.set_page("/bomb", BOMB)
        server.set_page("/clean", CLEAN)
        store = ShardedSnapshotStore(
            clock, UserAgent(network, clock), shard_count=3,
            guard=ContentGuard(GuardLimits(max_nesting_depth=64)),
        )
        with pytest.raises(ContentQuarantined):
            store.remember("fred", BOMB_URL)
        assert store.remember("fred", CLEAN_URL).changed
