"""Tests for verify_store's cross-file invariants, repair mode, and the
CLI / CGI fsck surfaces.

The consistency triangle of paper §4.2 — archives, control files,
cached copies — checked as a whole: a stamp must name a revision that
exists, a cached copy must match its head, and anything a half-done
transaction left behind must be explainable and repairable.
"""

import json
import os

import pytest

from repro import cli
from repro.core.snapshot.keepalive import CgiTimeout
from repro.core.snapshot.persistence import (
    mangle_url,
    save_store,
    verify_store,
)
from repro.core.snapshot.sched import CrashPlan, Failpoints, SimulatedCrash
from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.core.snapshot.wal import WriteAheadLog
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

URL = "http://site.com/page"
V1 = "<HTML><BODY><P>fsck fodder, version one.</P></BODY></HTML>"


def make_world(tmp_path, transactional=False):
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/page", V1)
    store = SnapshotStore(clock, UserAgent(network, clock))
    repo = str(tmp_path)
    if transactional:
        store.attach_wal(WriteAheadLog(store, repo))
        store.attach_failpoints(Failpoints())
    return clock, network, server, store, repo


class TestVerify:
    def test_clean_repository(self, tmp_path):
        clock, network, server, store, repo = make_world(tmp_path)
        store.remember("fred@att.com", URL)
        save_store(store, repo)
        report = verify_store(repo)
        assert report.ok
        assert report.archives_checked == 1
        assert report.seen_stamps_checked == 1
        assert not report.notes

    def test_missing_directory_is_a_note(self, tmp_path):
        report = verify_store(str(tmp_path / "nowhere"))
        assert report.ok
        assert report.notes == ["no repository directory"]

    def test_dangling_stamp_is_a_problem(self, tmp_path):
        clock, network, server, store, repo = make_world(tmp_path)
        store.remember("fred@att.com", URL)
        store.users.record("eve@x.com", URL, "1.9", 0)  # no such revision
        save_store(store, repo)
        report = verify_store(repo)
        assert not report.ok
        assert any("eve@x.com" in p and "1.9" in p for p in report.problems)

    def test_repair_drops_dangling_stamp(self, tmp_path):
        clock, network, server, store, repo = make_world(tmp_path)
        store.remember("fred@att.com", URL)
        store.users.record("eve@x.com", URL, "1.9", 0)
        save_store(store, repo)
        report = verify_store(repo, repair=True)
        assert report.ok
        assert any("dropped eve@x.com" in fix for fix in report.repaired)
        # Fred's legitimate stamp survived the repair.
        control = open(os.path.join(repo, "users.ctl")).read()
        assert "fred@att.com" in control
        assert "eve@x.com" not in control

    def test_stale_cache_file_is_a_problem(self, tmp_path):
        clock, network, server, store, repo = make_world(
            tmp_path, transactional=True
        )
        store.remember("fred@att.com", URL)
        path = store.wal.cache_path(URL)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("<P>tampered, does not match any revision</P>")
        report = verify_store(repo)
        assert not report.ok
        assert any("does not match head" in p for p in report.problems)

    def test_repair_rewrites_stale_cache_from_head(self, tmp_path):
        clock, network, server, store, repo = make_world(
            tmp_path, transactional=True
        )
        store.remember("fred@att.com", URL)
        path = store.wal.cache_path(URL)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("<P>tampered</P>")
        report = verify_store(repo, repair=True)
        assert report.ok, report.problems
        assert open(path).read() == V1

    def test_orphan_cache_file_is_a_problem_and_repairable(self, tmp_path):
        clock, network, server, store, repo = make_world(tmp_path)
        store.remember("fred@att.com", URL)
        save_store(store, repo)
        cache_dir = os.path.join(repo, "cache")
        os.makedirs(cache_dir, exist_ok=True)
        orphan = os.path.join(
            cache_dir, mangle_url("http://site.com/never-archived")
        )
        with open(orphan, "w", encoding="utf-8") as handle:
            handle.write("<P>nobody archived me</P>")
        report = verify_store(repo)
        assert not report.ok
        assert any("no archived revisions" in p for p in report.problems)
        repaired = verify_store(repo, repair=True)
        assert repaired.ok
        assert not os.path.exists(orphan)

    def test_interrupted_transaction_is_a_note(self, tmp_path):
        clock, network, server, store, repo = make_world(
            tmp_path, transactional=True
        )
        store.failpoints.arm(CrashPlan.at("txn.seen-appended"))
        with pytest.raises(SimulatedCrash):
            store.remember("fred@att.com", URL)
        report = verify_store(repo)
        assert report.ok, report.problems
        assert any("never committed" in note for note in report.notes)

    def test_aborted_transaction_compacted_away_by_repair(self, tmp_path):
        clock, network, server, store, repo = make_world(
            tmp_path, transactional=True
        )
        store.remember("fred@att.com", URL)
        store.failpoints.arm_timeout()
        clock.advance(60)
        server.set_page("/page", "<P>doomed rewrite</P>")
        with pytest.raises(CgiTimeout):
            store.remember("fred@att.com", URL)
        report = verify_store(repo)
        assert report.ok
        assert any("aborted" in note for note in report.notes)
        repaired = verify_store(repo, repair=True)
        assert repaired.ok
        assert not repaired.notes

    def test_torn_tail_downgrades_to_notes(self, tmp_path):
        clock, network, server, store, repo = make_world(
            tmp_path, transactional=True
        )
        store.remember("fred@att.com", URL)
        journal = os.path.join(repo, "journal.log")
        size = os.path.getsize(journal)
        with open(journal, "r+b") as handle:
            handle.truncate(size - 5)  # tear the commit marker's frame
        report = verify_store(repo)
        assert report.ok, report.problems
        assert any("torn" in note for note in report.notes)

    def test_to_dict_round_trips_through_json(self, tmp_path):
        clock, network, server, store, repo = make_world(tmp_path)
        store.remember("fred@att.com", URL)
        save_store(store, repo)
        payload = json.loads(json.dumps(verify_store(repo).to_dict()))
        assert payload["ok"] is True
        assert payload["archives_checked"] == 1
        assert payload["problems"] == []


class TestCliFsck:
    def _repo(self, tmp_path, tamper=False):
        clock, network, server, store, repo = make_world(tmp_path)
        store.remember("fred@att.com", URL)
        if tamper:
            store.users.record("eve@x.com", URL, "1.9", 0)
        save_store(store, repo)
        return repo

    def test_clean_repo_exits_zero(self, tmp_path, capsys):
        repo = self._repo(tmp_path)
        assert cli.main(["fsck", repo]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_problems_exit_one(self, tmp_path, capsys):
        repo = self._repo(tmp_path, tamper=True)
        assert cli.main(["fsck", repo]) == 1
        out = capsys.readouterr().out
        assert "problem:" in out

    def test_repair_then_exit_zero(self, tmp_path, capsys):
        repo = self._repo(tmp_path, tamper=True)
        assert cli.main(["fsck", repo, "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired:" in out
        assert cli.main(["fsck", repo]) == 0

    def test_json_output_parses(self, tmp_path, capsys):
        repo = self._repo(tmp_path)
        assert cli.main(["fsck", repo, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_missing_directory_exits_two(self, tmp_path):
        assert cli.main(["fsck", str(tmp_path / "nowhere")]) == 2


class TestCgiFsck:
    def _serve(self, tmp_path, tamper=False):
        clock, network, server, store, repo = make_world(
            tmp_path, transactional=True
        )
        store.remember("fred@att.com", URL)
        if tamper:
            with open(store.wal.cache_path(URL), "w",
                      encoding="utf-8") as handle:
                handle.write("<P>tampered</P>")
        service = SnapshotService(store, repository_dir=repo)
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", service)
        client = UserAgent(network, clock)
        return client, repo

    def _call(self, client, query):
        return client.get(
            f"http://aide.att.com/cgi-bin/snapshot?{query}"
        ).response

    def test_consistent_repo_returns_200(self, tmp_path):
        client, repo = self._serve(tmp_path)
        resp = self._call(client, "action=fsck")
        assert resp.status == 200
        assert "consistent" in resp.body
        assert '"ok": true' in resp.body  # embedded JSON for scripts

    def test_inconsistent_repo_returns_500(self, tmp_path):
        client, repo = self._serve(tmp_path, tamper=True)
        resp = self._call(client, "action=fsck")
        assert resp.status == 500
        assert "INCONSISTENT" in resp.body

    def test_repair_param_fixes_and_reports(self, tmp_path):
        client, repo = self._serve(tmp_path, tamper=True)
        resp = self._call(client, "action=fsck&repair=1")
        assert resp.status == 200
        assert "Repairs applied" in resp.body
        assert self._call(client, "action=fsck").status == 200

    def test_fsck_without_repository_dir_is_400(self, tmp_path):
        clock, network, server, store, repo = make_world(tmp_path)
        service = SnapshotService(store)  # no repository_dir
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", service)
        client = UserAgent(network, clock)
        resp = client.get(
            "http://aide.att.com/cgi-bin/snapshot?action=fsck"
        ).response
        assert resp.status == 400
