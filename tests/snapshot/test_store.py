"""Tests for the snapshot store."""

import pytest

from repro.core.snapshot.store import (
    SnapshotError,
    SnapshotStore,
    add_base_directive,
)
from repro.simclock import DAY, HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/page", "<HTML><BODY><P>version one.</P></BODY></HTML>")
    agent = UserAgent(network, clock)
    store = SnapshotStore(clock, agent)
    return clock, network, server, store


class TestRemember:
    def test_first_remember_creates_revision(self, world):
        clock, network, server, store = world
        result = store.remember("fred@att.com", "http://site.com/page")
        assert result.revision == "1.1"
        assert result.changed

    def test_unchanged_page_not_resaved(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        clock.advance(DAY)
        result = store.remember("fred@att.com", "http://site.com/page")
        assert result.revision == "1.1"
        assert not result.changed
        assert store.archive_for("http://site.com/page").revision_count == 1

    def test_changed_page_makes_new_revision(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        clock.advance(DAY)
        server.set_page("/page", "<HTML><BODY><P>version two.</P></BODY></HTML>")
        result = store.remember("fred@att.com", "http://site.com/page")
        assert result.revision == "1.2"
        assert result.changed

    def test_two_users_share_one_archive(self, world):
        # "saving pages at most once each time they are modified
        # (regardless of the number of users who track it)"
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        store2 = store.remember("tom@att.com", "http://site.com/page")
        assert store2.revision == "1.1"
        assert store.archive_for("http://site.com/page").revision_count == 1
        assert store.users.users_tracking("http://site.com/page") == [
            "fred@att.com", "tom@att.com",
        ]

    def test_user_seen_marker_updates_even_when_unchanged(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        clock.advance(DAY)
        store.remember("fred@att.com", "http://site.com/page")
        seen = store.users.last_seen_version("fred@att.com", "http://site.com/page")
        assert seen.revision == "1.1"
        assert seen.when == DAY  # refreshed at the second remember

    def test_fetch_error_raises_snapshot_error(self, world):
        clock, network, server, store = world
        with pytest.raises(SnapshotError):
            store.remember("fred@att.com", "http://unknown.host/x")
        with pytest.raises(SnapshotError):
            store.remember("fred@att.com", "http://site.com/missing")

    def test_simultaneous_remembers_fetch_once(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        store.remember("tom@att.com", "http://site.com/page")  # same instant
        assert server.get_count == 1


class TestDiff:
    def prime(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        clock.advance(DAY)
        server.set_page(
            "/page", "<HTML><BODY><P>version two entirely different.</P></BODY></HTML>"
        )
        store.remember("tom@att.com", "http://site.com/page")
        return store

    def test_diff_since_user_last_saved(self, world):
        clock, network, server, store = world
        store = self.prime(world)
        result = store.diff("fred@att.com", "http://site.com/page")
        assert "<STRIKE>" in result.html or "<STRONG><I>" in result.html

    def test_diff_explicit_revisions(self, world):
        store = self.prime(world)
        result = store.diff("anyone", "http://site.com/page",
                            rev_old="1.1", rev_new="1.2")
        assert not result.identical

    def test_diff_same_revision_is_identical(self, world):
        store = self.prime(world)
        result = store.diff("anyone", "http://site.com/page",
                            rev_old="1.1", rev_new="1.1")
        assert result.identical

    def test_diff_without_saved_version_errors(self, world):
        store = self.prime(world)
        with pytest.raises(SnapshotError):
            store.diff("stranger@nowhere", "http://site.com/page")

    def test_diff_unknown_url_errors(self, world):
        clock, network, server, store = world
        with pytest.raises(SnapshotError):
            store.diff("fred@att.com", "http://site.com/never-stored")

    def test_diff_output_cached(self, world):
        store = self.prime(world)
        store.diff("anyone", "http://site.com/page", rev_old="1.1", rev_new="1.2")
        invocations = store.htmldiff_invocations
        store.diff("other", "http://site.com/page", rev_old="1.1", rev_new="1.2")
        assert store.htmldiff_invocations == invocations  # served from cache

    def test_unknown_revision_errors(self, world):
        store = self.prime(world)
        with pytest.raises(SnapshotError):
            store.diff("anyone", "http://site.com/page",
                       rev_old="1.7", rev_new="1.8")


class TestHistoryAndView:
    def test_history_marks_seen_versions(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        clock.advance(DAY)
        server.set_page("/page", "<P>v2</P>")
        store.remember("tom@att.com", "http://site.com/page")
        history = store.history("fred@att.com", "http://site.com/page")
        assert [(info.number, seen) for info, seen in history] == [
            ("1.1", True), ("1.2", False),
        ]

    def test_view_head_and_old(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        clock.advance(DAY)
        server.set_page("/page", "<HTML><HEAD></HEAD><BODY>v2</BODY></HTML>")
        store.remember("fred@att.com", "http://site.com/page")
        head = store.view("http://site.com/page")
        old = store.view("http://site.com/page", revision="1.1")
        assert "v2" in head
        assert "version one" in old

    def test_view_adds_base_directive(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        text = store.view("http://site.com/page")
        assert '<BASE HREF="http://site.com/page">' in text

    def test_view_without_rewrite(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        text = store.view("http://site.com/page", rewrite_base=False)
        assert "<BASE" not in text


class TestBaseDirective:
    def test_inserted_after_head(self):
        html = "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>x</BODY></HTML>"
        out = add_base_directive(html, "http://a/b")
        assert out.index("<HEAD>") < out.index("<BASE") < out.index("<TITLE>")

    def test_prepended_without_head(self):
        out = add_base_directive("<P>x</P>", "http://a/b")
        assert out.startswith('<BASE HREF="http://a/b">')

    def test_existing_base_respected(self):
        html = '<HEAD><BASE HREF="http://original/"></HEAD>'
        out = add_base_directive(html, "http://other/")
        assert out == html


class TestAccounting:
    def test_total_bytes_and_counts(self, world):
        clock, network, server, store = world
        store.remember("fred@att.com", "http://site.com/page")
        assert store.url_count() == 1
        assert store.total_bytes() > 0
        assert store.full_copy_bytes() > 0

    def test_delta_beats_full_copies_on_small_edits(self, world):
        clock, network, server, store = world
        # Newlines matter: RCS deltas are line-based, so a page served
        # as one huge line would delta as a full replacement.
        base = "<HTML><BODY>\n" + "\n".join(
            f"<P>paragraph number {i} with stable text.</P>" for i in range(50)
        ) + "\n</BODY></HTML>"
        server.set_page("/big", base)
        store.remember("u", "http://site.com/big")
        for rev in range(8):
            clock.advance(HOUR)
            server.set_page(
                "/big", base.replace("number 3 ", f"number 3 (edit {rev}) ")
            )
            store.remember("u", "http://site.com/big")
        archive_bytes = store.total_bytes()
        full_bytes = store.full_copy_bytes()
        assert archive_bytes < full_bytes / 3
