"""Differential tests: the storage fast path is output-neutral.

The same discipline as the HtmlDiff fast path (PR 1): a store with
every acceleration enabled (keyframes, checkout cache, check-in
coalescing, journal persistence) and a store with
``StoreOptions().reference()`` are fed the identical revision history —
every mutate operator, 220 revisions — and every observable result
(checkout, diff, view_at, reload-from-disk) must be byte-identical.
"""

import random

import pytest

from repro.core.snapshot.persistence import load_store, save_store
from repro.core.snapshot.store import SnapshotError, SnapshotStore, StoreOptions
from repro.rcs.rcsfile import serialize_rcsfile
from repro.simclock import HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

from ..rcs.test_keyframes import generated_history

URL = "http://tracked.example.com/page.html"
REVISIONS = 220


def make_store(clock, network, options):
    return SnapshotStore(clock, UserAgent(network, clock), options=options)


@pytest.fixture(scope="module")
def twin_stores():
    """(clock, fast store, reference store) with identical archives."""
    clock = SimClock()
    network = Network(clock)
    fast = make_store(clock, network, StoreOptions())
    reference = make_store(clock, network, StoreOptions().reference())
    for text in generated_history(REVISIONS, seed=19):
        clock.advance(HOUR)
        fast.checkin_content("fred@att.com", URL, text)
        reference.checkin_content("fred@att.com", URL, text)
    return clock, fast, reference


class TestDifferentialOutputs:
    def test_archives_created_identically(self, twin_stores):
        _clock, fast, reference = twin_stores
        fast_archive = fast.archives[URL]
        ref_archive = reference.archives[URL]
        assert fast_archive.revision_count == ref_archive.revision_count
        assert fast_archive.revision_count == REVISIONS
        assert fast_archive.size_bytes() == ref_archive.size_bytes()

    def test_every_checkout_byte_identical(self, twin_stores):
        _clock, fast, reference = twin_stores
        for index in range(REVISIONS):
            number = f"1.{index + 1}"
            assert fast.view(URL, revision=number) == \
                reference.view(URL, revision=number)

    def test_view_at_byte_identical(self, twin_stores):
        clock, fast, reference = twin_stores
        rng = random.Random(5)
        dates = [rng.randrange(0, clock.now + 2 * HOUR) for _ in range(50)]
        for date in dates:
            try:
                fast_text = fast.view_at(URL, date)
            except SnapshotError:
                # Nothing that old is archived: the reference path must
                # refuse identically.
                with pytest.raises(SnapshotError):
                    reference.view_at(URL, date)
                continue
            assert fast_text == reference.view_at(URL, date)

    def test_diff_byte_identical_on_sampled_pairs(self, twin_stores):
        _clock, fast, reference = twin_stores
        rng = random.Random(9)
        pairs = [(i, i + 1) for i in range(1, REVISIONS, 37)]
        pairs += [
            sorted(rng.sample(range(1, REVISIONS + 1), 2)) for _ in range(12)
        ]
        for old, new in pairs:
            fast_result = fast.diff(
                "fred@att.com", URL, rev_old=f"1.{old}", rev_new=f"1.{new}")
            ref_result = reference.diff(
                "fred@att.com", URL, rev_old=f"1.{old}", rev_new=f"1.{new}")
            assert fast_result.html == ref_result.html

    def test_reload_from_disk_byte_identical(self, twin_stores, tmp_path):
        clock, fast, reference = twin_stores
        fast_dir, ref_dir = str(tmp_path / "fast"), str(tmp_path / "ref")
        save_store(fast, fast_dir)
        save_store(reference, ref_dir)
        network = Network(clock)
        fast2 = make_store(clock, network, StoreOptions())
        ref2 = make_store(clock, network, StoreOptions().reference())
        load_store(fast2, fast_dir)
        load_store(ref2, ref_dir)
        for index in range(1, REVISIONS + 1, 17):
            number = f"1.{index}"
            texts = {
                fast.view(URL, revision=number),
                reference.view(URL, revision=number),
                fast2.view(URL, revision=number),
                ref2.view(URL, revision=number),
            }
            assert len(texts) == 1

    def test_fast_path_walks_fewer_deltas(self, twin_stores):
        _clock, fast, reference = twin_stores
        assert fast.archives[URL].chain_length("1.1") < \
            reference.archives[URL].chain_length("1.1")


class TestCheckoutCache:
    def test_diff_endpoints_cached(self, twin_stores):
        _clock, fast, _reference = twin_stores
        before = fast.checkout_cache.stats()["hits"]
        fast.diff("fred@att.com", URL, rev_old="1.3", rev_new="1.7")
        fast.view(URL, revision="1.3")
        fast.view(URL, revision="1.7")
        assert fast.checkout_cache.stats()["hits"] >= before + 2

    def test_reference_cache_disabled(self, twin_stores):
        _clock, _fast, reference = twin_stores
        reference.view(URL, revision="1.4")
        reference.view(URL, revision="1.4")
        assert reference.checkout_cache.stats()["hits"] == 0
        assert len(reference.checkout_cache) == 0


class TestCombinedStats:
    def test_stats_exposes_every_layer(self, twin_stores):
        _clock, fast, _reference = twin_stores
        stats = fast.stats()
        assert set(stats) >= {
            "diff_cache", "checkout_cache", "coalescer", "locks",
            "archives", "htmldiff_invocations",
        }
        assert stats["archives"]["revisions"] == REVISIONS
        assert stats["archives"]["keyframe_interval"] == 16
        assert stats["archives"]["keyframes"] > 0
        assert stats["archives"]["keyframe_bytes"] > 0
        assert stats["checkout_cache"]["capacity"] == 64
        assert stats["diff_cache"]["capacity"] == 256


class TestCoalescedCheckins:
    def make_world(self, coalesce):
        clock = SimClock()
        network = Network(clock)
        server = network.create_server("site.com")
        server.set_page("/p", "<P>content v1 with several words.</P>")
        options = StoreOptions() if coalesce else StoreOptions().reference()
        store = make_store(clock, network, options)
        return clock, network, server, store

    def test_same_instant_remembers_share_fetch_and_checkin(self):
        clock, network, server, store = self.make_world(coalesce=True)
        users = [f"user{i}@att.com" for i in range(8)]
        results = [store.remember(user, "http://site.com/p") for user in users]
        assert server.get_count == 1
        assert [r.revision for r in results] == ["1.1"] * 8
        assert results[0].changed
        assert not any(r.changed for r in results[1:])
        archive = store.archives["http://site.com/p"]
        assert archive.revision_count == 1
        # Everyone's control file is stamped.
        for user in users:
            assert store.users.last_seen_version(
                user, "http://site.com/p").revision == "1.1"

    def test_coalesced_outcome_matches_reference(self):
        outcomes = {}
        for coalesce in (True, False):
            clock, network, server, store = self.make_world(coalesce)
            users = [f"user{i}@att.com" for i in range(5)]
            results = [store.remember(u, "http://site.com/p") for u in users]
            clock.advance(HOUR)
            server.set_page("/p", "<P>content v2, rather different.</P>")
            results += [store.remember(u, "http://site.com/p") for u in users]
            outcomes[coalesce] = (
                [(r.revision, r.changed) for r in results],
                store.users.serialize(),
                serialize_rcsfile(store.archives["http://site.com/p"]),
            )
        fast_seen = outcomes[True][1]
        ref_seen = outcomes[False][1]
        assert outcomes[True][0] == outcomes[False][0]
        assert fast_seen == ref_seen

    def test_coalesced_uses_fewer_url_locks(self):
        _clock, _network, _server, fast = self.make_world(coalesce=True)
        _clock2, _network2, _server2, ref = self.make_world(coalesce=False)
        users = [f"user{i}@att.com" for i in range(10)]
        for user in users:
            fast.remember(user, "http://site.com/p")
            ref.remember(user, "http://site.com/p")
        assert fast.locks.acquisitions < ref.locks.acquisitions

    def test_remember_batch(self):
        clock, network, server, store = self.make_world(coalesce=True)
        users = [f"user{i}@att.com" for i in range(6)]
        results = store.remember_batch(users, "http://site.com/p")
        assert server.get_count == 1
        assert [r.changed for r in results] == [True] + [False] * 5
        for user in users:
            assert store.users.last_seen_version(
                user, "http://site.com/p").revision == "1.1"

    def test_checkin_content_batch_without_coalescing(self):
        _clock, _network, _server, store = self.make_world(coalesce=False)
        users = ["a@x", "b@x"]
        results = store.checkin_content_batch(
            users, "http://site.com/p", "<P>hand-fed body.</P>")
        assert [r.changed for r in results] == [True, False]
        assert store.archives["http://site.com/p"].revision_count == 1

    def test_different_bodies_do_not_coalesce(self):
        _clock, _network, _server, store = self.make_world(coalesce=True)
        store.checkin_content_batch(["a@x"], "http://site.com/p", "<P>one</P>")
        store.checkin_content_batch(["b@x"], "http://site.com/p", "<P>two</P>")
        assert store.archives["http://site.com/p"].revision_count == 2
