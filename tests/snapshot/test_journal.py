"""Append-only journal persistence: byte-identity with full rewrites.

Acceptance bar: append-only save after N check-ins reloads to a store
whose serialized archives equal a full ``save_store`` rewrite,
including after compaction.
"""

import os

import pytest

from repro.core.snapshot.journal import (
    JOURNAL_NAME,
    JournalError,
    JournalRecord,
    append_records,
    clear_journal,
    read_journal,
)
from repro.core.snapshot.persistence import (
    append_store,
    compact_store,
    load_store,
    save_store,
)
from repro.core.snapshot.store import SnapshotStore, StoreOptions
from repro.rcs.rcsfile import serialize_rcsfile
from repro.simclock import HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

from ..rcs.test_keyframes import generated_history

URL_A = "http://site-a.com/page.html"
URL_B = "http://site-b.com/other.html"


def make_store(clock=None, options=None):
    clock = clock or SimClock()
    network = Network(clock)
    return clock, SnapshotStore(
        clock, UserAgent(network, clock),
        options=options if options is not None else StoreOptions(),
    )


def feed(clock, store, url, texts, user="fred@att.com"):
    for text in texts:
        clock.advance(HOUR)
        store.checkin_content(user, url, text)


def serialized_archives(store):
    return {
        url: serialize_rcsfile(archive)
        for url, archive in store.archives.items()
    }


class TestJournalRecords:
    def test_roundtrip_with_awkward_payloads(self, tmp_path):
        records = [
            JournalRecord(url="http://x/?a=1&b=@2", revision="1.1",
                          date=7, author="user@host", log="log @ line",
                          text="body with @@ and\nnewlines\n\tand tabs"),
            JournalRecord(url=URL_B, revision="1.2", date=8,
                          author="", log="", text=""),
        ]
        assert append_records(str(tmp_path), records) == 2
        assert read_journal(str(tmp_path)) == records

    def test_appends_accumulate(self, tmp_path):
        first = JournalRecord(url=URL_A, revision="1.1", date=1,
                              author="a", log="", text="one")
        second = JournalRecord(url=URL_A, revision="1.2", date=2,
                               author="a", log="", text="two")
        append_records(str(tmp_path), [first])
        append_records(str(tmp_path), [second])
        assert read_journal(str(tmp_path)) == [first, second]

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_journal(str(tmp_path)) == []
        assert not clear_journal(str(tmp_path))

    def test_corrupt_journal_fails_loudly(self, tmp_path):
        (tmp_path / JOURNAL_NAME).write_text("rev\tgarbage without quotes\n")
        with pytest.raises(JournalError):
            read_journal(str(tmp_path))


class TestAppendStore:
    def test_append_only_touches_journal_not_archives(self, tmp_path):
        clock, store = make_store()
        texts = generated_history(10, seed=3)
        feed(clock, store, URL_A, texts[:6])
        save_store(store, str(tmp_path))
        vfile = tmp_path / "archives" / os.listdir(tmp_path / "archives")[0]
        stamp_before = vfile.read_text()
        feed(clock, store, URL_A, texts[6:])
        appended = append_store(store, str(tmp_path))
        assert appended == 4
        assert vfile.read_text() == stamp_before  # ,v base untouched
        assert (tmp_path / JOURNAL_NAME).exists()
        assert len(read_journal(str(tmp_path))) == 4

    def test_append_without_new_revisions_appends_nothing(self, tmp_path):
        clock, store = make_store()
        feed(clock, store, URL_A, generated_history(5, seed=4))
        save_store(store, str(tmp_path))
        assert append_store(store, str(tmp_path)) == 0
        assert not (tmp_path / JOURNAL_NAME).exists()

    def test_journal_reload_equals_full_rewrite(self, tmp_path):
        """The acceptance criterion, end to end."""
        clock, store = make_store()
        texts_a = generated_history(40, seed=11)
        texts_b = generated_history(30, seed=12, paragraphs=5)
        feed(clock, store, URL_A, texts_a[:20])
        journal_dir, full_dir = str(tmp_path / "journal"), str(tmp_path / "full")
        save_store(store, journal_dir)
        # N more check-ins across two URLs (one brand new), three
        # append-only syncs along the way.
        feed(clock, store, URL_A, texts_a[20:30])
        append_store(store, journal_dir)
        feed(clock, store, URL_B, texts_b[:15], user="tom@att.com")
        append_store(store, journal_dir)
        feed(clock, store, URL_A, texts_a[30:])
        feed(clock, store, URL_B, texts_b[15:], user="tom@att.com")
        append_store(store, journal_dir)
        # A full rewrite of the same store is the reference.
        save_store(store, full_dir)

        for directory in (journal_dir, full_dir):
            _clock2, fresh = make_store(clock)
            load_store(fresh, directory)
            assert serialized_archives(fresh) == serialized_archives(store)
            assert fresh.users.serialize() == store.users.serialize()

    def test_users_ctl_refreshed_by_append(self, tmp_path):
        clock, store = make_store()
        feed(clock, store, URL_A, generated_history(4, seed=5))
        save_store(store, str(tmp_path))
        clock.advance(HOUR)
        # A re-save of unchanged content moves only the seen marker.
        store.checkin_content("new-user@att.com", URL_A,
                              store.view(URL_A, rewrite_base=False))
        assert append_store(store, str(tmp_path)) == 0
        assert "new-user@att.com" in (tmp_path / "users.ctl").read_text()

    def test_compaction_merges_journal(self, tmp_path):
        clock, store = make_store()
        texts = generated_history(25, seed=6)
        feed(clock, store, URL_A, texts[:10])
        save_store(store, str(tmp_path))
        feed(clock, store, URL_A, texts[10:])
        append_store(store, str(tmp_path))
        assert (tmp_path / JOURNAL_NAME).exists()
        compact_store(store, str(tmp_path))
        assert not (tmp_path / JOURNAL_NAME).exists()
        _clock2, fresh = make_store(clock)
        load_store(fresh, str(tmp_path))
        assert serialized_archives(fresh) == serialized_archives(store)
        # Nothing left to append after compaction.
        assert append_store(store, str(tmp_path)) == 0

    def test_journal_only_store_loads(self, tmp_path):
        """A store never fully saved: the journal alone carries it."""
        clock, store = make_store()
        feed(clock, store, URL_A, generated_history(8, seed=7))
        appended = append_store(store, str(tmp_path))
        assert appended == 8
        assert not (tmp_path / "archives").exists()
        _clock2, fresh = make_store(clock)
        assert load_store(fresh, str(tmp_path)) == 1
        assert serialized_archives(fresh) == serialized_archives(store)

    def test_reference_options_degrade_to_full_save(self, tmp_path):
        clock, store = make_store(options=StoreOptions().reference())
        feed(clock, store, URL_A, generated_history(6, seed=8))
        save_store(store, str(tmp_path))
        feed(clock, store, URL_A, generated_history(6, seed=9)[3:])
        append_store(store, str(tmp_path))
        assert not (tmp_path / JOURNAL_NAME).exists()  # full rewrite instead
        _clock2, fresh = make_store(clock, options=StoreOptions().reference())
        load_store(fresh, str(tmp_path))
        assert serialized_archives(fresh) == serialized_archives(store)

    def test_replay_mismatch_fails_loudly(self, tmp_path):
        clock, store = make_store()
        feed(clock, store, URL_A, generated_history(4, seed=10))
        append_store(store, str(tmp_path))
        # Corrupt the journal: duplicate the last record so replay
        # produces an unchanged check-in.
        records = read_journal(str(tmp_path))
        append_records(str(tmp_path), [records[-1]])
        _clock2, fresh = make_store(clock)
        with pytest.raises(JournalError):
            load_store(fresh, str(tmp_path))
