"""End-to-end tests for the sharded diff server: identity with the
reference service, response caching, backpressure that resilient
clients can act on, operator pages, and load-generator determinism."""

import pytest

from repro.core.snapshot.service import OperationCosts, SnapshotService
from repro.core.snapshot.sharding import save_sharded
from repro.core.snapshot.store import SnapshotStore
from repro.serve import (
    ClosedLoopLoad,
    DiffServer,
    build_world,
    seed_world,
)
from repro.web.client import UserAgent
from repro.web.http import Request
from repro.web.resilience import ResilientAgent, RetryPolicy

SEED = 7


def make_server(world, **kwargs):
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("workers_per_shard", 2)
    kwargs.setdefault("queue_limit", 8)
    return DiffServer(world.clock, world.agent, **kwargs)


def get(service, query, now=0):
    request = Request("GET", f"http://aide.example.com/cgi-bin/snapshot?{query}")
    return service(request, now)


class TestServeIdentity:
    def test_seeded_responses_match_reference(self):
        world = build_world(SEED, pages=8)
        server = make_server(world)
        revisions = seed_world(server, world, seed=SEED, rounds=2)

        ref_world = build_world(SEED, pages=8)
        reference = SnapshotService(
            SnapshotStore(ref_world.clock, ref_world.agent))
        assert seed_world(reference, ref_world, seed=SEED,
                          rounds=2) == revisions

        url = world.urls[0]
        for query in (
            f"action=view&url={url}&rev=1.1",
            f"action=view&url={url}&date=0",
            f"action=diff&url={url}&user=curator0@example.com&r1=1.1&r2=1.2",
            f"action=history&url={url}&user=curator0@example.com",
            "",
        ):
            mine = get(server, query, world.clock.now)
            theirs = get(reference, query, ref_world.clock.now)
            assert (mine.status, mine.body) == (theirs.status, theirs.body)

    def test_cache_hit_is_byte_identical_and_skips_the_store(self):
        world = build_world(SEED, pages=4)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=2)
        url = world.urls[0]
        query = f"action=diff&url={url}&user=curator0@example.com&r1=1.1&r2=1.2"
        invocations_before = server.store.htmldiff_invocations
        first = get(server, query, world.clock.now)
        cached = get(server, query, world.clock.now)
        assert first.body == cached.body
        assert server.cache_hits == 1
        # The repeat never reran HtmlDiff.
        assert server.store.htmldiff_invocations == invocations_before + 1

    def test_mutation_invalidates_volatile_views(self):
        world = build_world(SEED, pages=4)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=1)
        url = world.urls[0]
        date_query = f"action=view&url={url}&date={world.clock.now}"
        stale = get(server, date_query, world.clock.now)
        # New content checks in a new revision at a later instant...
        world.origin.set_page("/page000.html", "<P>changed.</P>")
        world.clock.advance(60)
        remember = get(server,
                       f"action=remember&url={url}&user=c@example.com",
                       world.clock.now)
        assert remember.status == 200
        # ...so the date-view is recomputed, not replayed from cache.
        fresh = get(server, date_query, world.clock.now)
        assert fresh.body == stale.body  # date pins to the same revision
        cache = server.response_caches[server._shard_index(url)]
        assert cache.invalidations >= 1


class TestBackpressure:
    def test_queue_full_returns_503_with_retry_after(self):
        world = build_world(SEED, pages=4)
        server = make_server(world, shards=1, workers_per_shard=1,
                             queue_limit=0)
        seed_world(server, world, seed=SEED, rounds=1)
        now = world.clock.now
        url = world.urls[0]
        first = get(server, f"action=view&url={url}&rev=1.1", now)
        assert first.status == 200
        other = world.urls[1]
        shed = get(server, f"action=view&url={other}&rev=1.1", now)
        assert shed.status == 503
        assert int(shed.headers.get("Retry-After")) >= 1
        assert server.shed == 1

    def test_resilient_agent_recovers_via_retry_after(self):
        """The advertised wait is real advice: a client with zero
        backoff of its own succeeds exactly when told to come back."""
        world = build_world(SEED, pages=4)
        server = make_server(world, shards=1, workers_per_shard=1,
                             queue_limit=0,
                             costs=OperationCosts(fetch=20, htmldiff=30,
                                                  cheap=5))
        seed_world(server, world, seed=SEED, rounds=1)
        aide = world.network.create_server("aide.example.com")
        aide.register_cgi("/cgi-bin/snapshot",
                          lambda request, now: server(request, now))
        url = world.urls[0]
        # Occupy the only worker for 5 simulated seconds.
        busy = get(server, f"action=view&url={url}&rev=1.1",
                   world.clock.now)
        assert busy.status == 200
        resilient = ResilientAgent(
            UserAgent(world.network, world.clock),
            policy=RetryPolicy(base_delay=0, jitter=0),
        )
        before = world.clock.now
        result = resilient.get(
            f"http://aide.example.com/cgi-bin/snapshot?"
            f"action=view&url={world.urls[1]}&rev=1.1"
        )
        assert result.response.status == 200
        assert resilient.retries == 1
        assert world.clock.now == before + 5  # waited the advertised time
        assert server.shed == 1

    def test_operator_pages_bypass_the_pools(self):
        world = build_world(SEED, pages=4)
        server = make_server(world, shards=1, workers_per_shard=1,
                             queue_limit=0)
        seed_world(server, world, seed=SEED, rounds=1)
        now = world.clock.now
        get(server, f"action=view&url={world.urls[0]}&rev=1.1", now)
        # The pool is saturated, but stats still answers 200.
        stats = get(server, "action=stats", now)
        assert stats.status == 200
        assert "Snapshot store statistics" in stats.body
        assert "sharding" in stats.body


class TestOperatorSurfaces:
    def test_stats_aggregates_across_shards(self):
        world = build_world(SEED, pages=8)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=1)
        page = get(server, "action=stats", world.clock.now)
        assert page.status == 200
        assert "routed" in page.body and "response_cache" in page.body

    def test_metrics_formats(self):
        world = build_world(SEED, pages=4)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=1)
        text = get(server, "action=metrics", world.clock.now)
        assert text.status == 200
        json_page = get(server, "action=metrics&format=json",
                        world.clock.now)
        assert json_page.headers.get("Content-Type") == "application/json"
        assert get(server, "action=metrics&format=xml",
                   world.clock.now).status == 400

    def test_fsck_over_a_sharded_repository(self, tmp_path):
        world = build_world(SEED, pages=8)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=1)
        directory = str(tmp_path / "repo")
        save_sharded(server.store, directory)
        server.repository_dir = directory
        page = get(server, "action=fsck", world.clock.now)
        assert page.status == 200
        assert "Repository check: consistent" in page.body
        assert "shard-03" in page.body

    def test_fsck_without_repository_is_an_error(self):
        world = build_world(SEED, pages=4)
        server = make_server(world)
        assert get(server, "action=fsck", 0).status == 400


class TestClosedLoopLoad:
    def build(self, users=120):
        world = build_world(SEED, pages=8)
        server = make_server(world, queue_limit=4)
        revisions = seed_world(server, world, seed=SEED, rounds=2)
        load = ClosedLoopLoad(SEED, world.urls, revisions, users=users,
                              requests_per_user=2, think_time=20,
                              arrival_window=60)
        return world, server, load

    def test_every_request_completes_despite_shedding(self):
        world, server, load = self.build()
        report = load.run(server, start=world.clock.now)
        assert report.completed == report.requests == 240
        assert report.shed > 0  # backpressure was exercised
        assert report.dispatches == report.requests + report.retries

    def test_runs_are_deterministic(self):
        first_world, first_server, first_load = self.build()
        first = first_load.run(first_server, start=first_world.clock.now)
        second_world, second_server, second_load = self.build()
        second = second_load.run(second_server,
                                 start=second_world.clock.now)
        assert first.to_dict() == second.to_dict()
        assert {k: (r.status, r.body) for k, r in first.responses.items()} \
            == {k: (r.status, r.body) for k, r in second.responses.items()}

    def test_replay_against_reference_is_identical(self):
        world, server, load = self.build(users=60)
        report = load.run(server, start=world.clock.now)
        ref_world = build_world(SEED, pages=8)
        reference = SnapshotService(
            SnapshotStore(ref_world.clock, ref_world.agent))
        seed_world(reference, ref_world, seed=SEED, rounds=2)
        replayed = ClosedLoopLoad.replay(report, reference,
                                         now=ref_world.clock.now)
        for key, response in report.responses.items():
            assert (response.status, response.body) \
                == (replayed[key].status, replayed[key].body)

    def test_livelock_guard_trips(self):
        world, server, load = self.build()
        load.max_dispatches = 10
        with pytest.raises(RuntimeError, match="livelocked"):
            load.run(server, start=world.clock.now)
