"""Tests for the response cache's soundness rules: only requests whose
bytes cannot change are cacheable, date-views are volatile, and cached
responses are never shared objects."""

from repro.serve.cache import ResponseCache, cacheable_key
from repro.web.http import make_response

URL = "http://site.com/page.html"


class TestCacheableKey:
    def test_pinned_view_is_cacheable(self):
        key = cacheable_key({"action": "view", "url": URL, "rev": "1.2"})
        assert key == ("view", URL, "1.2", False)

    def test_date_view_is_cacheable_but_volatile(self):
        key = cacheable_key({"action": "view", "url": URL, "date": "3600"})
        assert key == ("view_at", URL, "3600", True)

    def test_pinned_diff_is_cacheable(self):
        key = cacheable_key({"action": "diff", "url": URL,
                             "r1": "1.1", "r2": "1.3", "user": "f@x.com"})
        assert key == ("diff", URL, "1.1", "1.3", False)

    def test_everything_else_is_not(self):
        for params in (
            {"action": "view", "url": URL},                       # head view
            {"action": "diff", "url": URL, "r1": "1.1"},          # unpinned
            {"action": "diff", "url": URL, "user": "f@x.com"},    # since-seen
            {"action": "remember", "url": URL, "user": "f@x.com"},
            {"action": "history", "url": URL, "user": "f@x.com"},
            {"action": "stats"},
            {"action": "view", "rev": "1.1"},                     # no url
            {},
        ):
            assert cacheable_key(params) is None, params


class TestResponseCache:
    def test_hit_returns_equal_but_distinct_response(self):
        cache = ResponseCache()
        key = ("view", URL, "1.1", False)
        cache.put(key, make_response(200, "<P>body</P>"))
        first, second = cache.get(key), cache.get(key)
        assert first.body == second.body == "<P>body</P>"
        assert first is not second
        # Mutating one copy (HEAD handling blanks bodies) must not
        # poison the cache.
        first.body = ""
        assert cache.get(key).body == "<P>body</P>"

    def test_only_200s_are_cached(self):
        cache = ResponseCache()
        cache.put(("view", URL, "9.9", False), make_response(404, "no"))
        assert cache.get(("view", URL, "9.9", False)) is None

    def test_lru_eviction(self):
        cache = ResponseCache(capacity=2)
        for rev in ("1.1", "1.2", "1.3"):
            cache.put(("view", URL, rev, False), make_response(200, rev))
        assert cache.get(("view", URL, "1.1", False)) is None
        assert cache.get(("view", URL, "1.3", False)).body == "1.3"
        assert cache.evictions == 1

    def test_invalidate_drops_only_volatile_entries_for_the_url(self):
        cache = ResponseCache()
        other = "http://site.com/other.html"
        cache.put(("view", URL, "1.1", False), make_response(200, "pinned"))
        cache.put(("view_at", URL, "3600", True), make_response(200, "dated"))
        cache.put(("view_at", other, "3600", True), make_response(200, "keep"))
        assert cache.invalidate_url(URL) == 1
        assert cache.get(("view", URL, "1.1", False)) is not None
        assert cache.get(("view_at", URL, "3600", True)) is None
        assert cache.get(("view_at", other, "3600", True)) is not None
        assert cache.invalidations == 1

    def test_stats(self):
        cache = ResponseCache(capacity=4)
        key = ("view", URL, "1.1", False)
        cache.get(key)
        cache.put(key, make_response(200, "x"))
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1


class TestRepairInvalidation:
    """Replication repair rewrites a replica's archive out from under
    its cache; these are the hooks that keep it from serving stale
    bytes afterwards."""

    def test_full_invalidation_drops_pinned_entries_too(self):
        cache = ResponseCache()
        other = "http://site.com/other.html"
        cache.put(("view", URL, "1.1", False), make_response(200, "pinned"))
        cache.put(("diff", URL, "1.1", "1.2", False),
                  make_response(200, "diff"))
        cache.put(("view_at", URL, "3600", True), make_response(200, "dated"))
        cache.put(("view", other, "1.1", False), make_response(200, "keep"))
        assert cache.invalidate_url(URL, volatile_only=False) == 3
        assert cache.get(("view", URL, "1.1", False)) is None
        assert cache.get(("diff", URL, "1.1", "1.2", False)) is None
        assert cache.get(("view_at", URL, "3600", True)) is None
        # Entries for other URLs are untouched.
        assert cache.get(("view", other, "1.1", False)) is not None
        assert cache.invalidations == 3

    def test_clear_empties_the_cache(self):
        cache = ResponseCache()
        cache.put(("view", URL, "1.1", False), make_response(200, "a"))
        cache.put(("view", URL, "1.2", False), make_response(200, "b"))
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.invalidations == 2
        assert cache.get(("view", URL, "1.1", False)) is None
