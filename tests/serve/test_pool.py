"""Tests for the virtual-time worker pool (admission, queueing,
shedding, and the determinism the benchmark's gates depend on)."""

import pytest

from repro.serve.pool import Admission, Rejection, WorkerPool


class TestAdmission:
    def test_idle_pool_starts_immediately(self):
        pool = WorkerPool(workers=2, queue_limit=4)
        schedule = pool.admit(cost=10, now=100)
        assert isinstance(schedule, Admission)
        assert schedule.start == 100
        assert schedule.finish == 110
        assert schedule.latency(100) == 10
        assert schedule.waited(100) == 0

    def test_busy_pool_queues_fifo(self):
        pool = WorkerPool(workers=1, queue_limit=4)
        first = pool.admit(cost=10, now=0)
        second = pool.admit(cost=10, now=0)
        third = pool.admit(cost=10, now=0)
        assert first.start == 0
        assert second.start == first.finish
        assert third.start == second.finish
        assert third.waited(0) == 20

    def test_workers_run_in_parallel(self):
        pool = WorkerPool(workers=3, queue_limit=0)
        finishes = [pool.admit(cost=10, now=0).finish for _ in range(3)]
        assert finishes == [10, 10, 10]

    def test_ties_break_to_lowest_worker(self):
        pool = WorkerPool(workers=3, queue_limit=0)
        assert pool.admit(cost=5, now=0).worker == 0
        assert pool.admit(cost=5, now=0).worker == 1
        assert pool.admit(cost=5, now=0).worker == 2


class TestShedding:
    def test_full_queue_rejects_with_retry_after(self):
        pool = WorkerPool(workers=1, queue_limit=1)
        pool.admit(cost=10, now=0)     # running until 10
        pool.admit(cost=10, now=0)     # queued (starts at 10)
        rejection = pool.admit(cost=10, now=0)
        assert isinstance(rejection, Rejection)
        # The advertised wait is when the queue slot opens: the queued
        # request starts at t=10.
        assert rejection.retry_after == 10
        assert pool.rejected == 1

    def test_zero_queue_limit_is_serve_or_shed(self):
        pool = WorkerPool(workers=1, queue_limit=0)
        assert isinstance(pool.admit(cost=5, now=0), Admission)
        assert isinstance(pool.admit(cost=5, now=0), Rejection)
        # Once the worker frees, admission resumes.
        assert isinstance(pool.admit(cost=5, now=5), Admission)

    def test_retry_after_is_at_least_one(self):
        pool = WorkerPool(workers=1, queue_limit=0)
        pool.admit(cost=0, now=0)
        pool.admit(cost=1, now=0)
        rejection = pool.admit(cost=1, now=0)
        assert isinstance(rejection, Rejection)
        assert rejection.retry_after >= 1

    def test_queue_drains_as_time_passes(self):
        pool = WorkerPool(workers=1, queue_limit=1)
        pool.admit(cost=10, now=0)
        pool.admit(cost=10, now=0)
        assert isinstance(pool.admit(cost=10, now=0), Rejection)
        # At t=15 the queued request has started; the slot is free.
        schedule = pool.admit(cost=10, now=15)
        assert isinstance(schedule, Admission)
        assert schedule.start == 20  # behind the in-flight work


class TestAccounting:
    def test_depth_and_busy_reflect_virtual_time(self):
        pool = WorkerPool(workers=2, queue_limit=8)
        pool.admit(cost=10, now=0)
        pool.admit(cost=20, now=0)
        pool.admit(cost=10, now=0)  # queued behind worker 0
        assert pool.busy_workers(0) == 2
        assert pool.queue_depth(0) == 1
        # At t=15 the queued item has started on worker 0, so both
        # workers are busy but nothing waits.
        assert pool.busy_workers(15) == 2
        assert pool.queue_depth(15) == 0
        assert pool.busy_workers(20) == 0

    def test_stats(self):
        pool = WorkerPool(workers=1, queue_limit=1)
        pool.admit(cost=10, now=0)
        pool.admit(cost=10, now=0)
        pool.admit(cost=10, now=0)
        assert pool.stats() == {
            "workers": 1, "queue_limit": 1, "admitted": 2, "rejected": 1,
            "queued": 1, "busy_seconds": 20,
        }

    def test_determinism(self):
        def run():
            pool = WorkerPool(workers=3, queue_limit=2)
            out = []
            for i in range(50):
                out.append(pool.admit(cost=(i * 7) % 13, now=i // 2))
            return out
        assert run() == run()


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0, queue_limit=1)
        with pytest.raises(ValueError):
            WorkerPool(workers=1, queue_limit=-1)
        with pytest.raises(ValueError):
            WorkerPool(workers=1, queue_limit=1).admit(cost=-1, now=0)
