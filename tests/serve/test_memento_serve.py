"""Tests for the Memento endpoints mounted on the sharded diff server:
shard routing, the cache soundness split (mementos immutable, gate and
map volatile), and out-of-band check-in invalidation."""

from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.memento.core import ACCEPT_DATETIME
from repro.serve import DiffServer, build_world, seed_world
from repro.serve.cache import cacheable_key
from repro.web.http import Headers, Request

SEED = 11


def make_server(world, **kwargs):
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("workers_per_shard", 2)
    kwargs.setdefault("queue_limit", 8)
    return DiffServer(world.clock, world.agent, **kwargs)


def get(service, query, now=0, headers=None):
    request = Request(
        "GET", f"http://aide.example.com/cgi-bin/snapshot?{query}",
        headers=Headers(headers or {}))
    return service(request, now)


class TestMementoCacheKeys:
    URL = "http://site.com/page.html"

    def test_memento_is_cacheable_and_immutable(self):
        key = cacheable_key({"action": "memento", "url": self.URL,
                             "rev": "1.2"})
        assert key == ("memento", self.URL, "1.2", False)

    def test_timegate_is_cacheable_but_volatile(self):
        key = cacheable_key({"action": "timegate", "url": self.URL,
                             "accept_datetime": "100"})
        assert key is not None
        assert key[1] == self.URL and key[-1] is True

    def test_timegate_keys_differ_by_header_and_policy(self):
        base = {"action": "timegate", "url": self.URL}
        keys = {
            cacheable_key(dict(base, accept_datetime="100")),
            cacheable_key(dict(base, accept_datetime="200")),
            cacheable_key(dict(base, accept_datetime="100",
                               policy="nearest")),
            cacheable_key(base),  # absent header: last-memento shortcut
        }
        assert len(keys) == 4

    def test_timemap_is_volatile(self):
        key = cacheable_key({"action": "timemap", "url": self.URL})
        assert key is not None and key[-1] is True

    def test_memento_without_rev_is_uncacheable(self):
        assert cacheable_key({"action": "memento", "url": self.URL}) is None


class TestShardedMemento:
    def test_responses_match_the_reference_service(self):
        world = build_world(SEED, pages=8)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=2)

        ref_world = build_world(SEED, pages=8)
        reference = SnapshotService(
            SnapshotStore(ref_world.clock, ref_world.agent))
        seed_world(reference, ref_world, seed=SEED, rounds=2)

        url = world.urls[0]
        mid = world.clock.now // 2
        for query, headers in (
            (f"action=timemap&url={url}", None),
            (f"action=timemap&url={url}&format=json", None),
            (f"action=memento&url={url}&rev=1.1", None),
            (f"action=timegate&url={url}", None),
            (f"action=timegate&url={url}", {ACCEPT_DATETIME: str(mid)}),
        ):
            mine = get(server, query, world.clock.now, headers)
            theirs = get(reference, query, ref_world.clock.now, headers)
            assert (mine.status, mine.body) == (theirs.status, theirs.body)
            assert mine.headers.get("Location") == \
                theirs.headers.get("Location")

    def test_timegate_302_is_cached_per_accept_datetime(self):
        world = build_world(SEED, pages=4)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=2)
        url = world.urls[0]
        mid = world.clock.now // 2
        dated = {ACCEPT_DATETIME: str(mid)}
        first = get(server, f"action=timegate&url={url}", world.clock.now,
                    dated)
        repeat = get(server, f"action=timegate&url={url}", world.clock.now,
                     dated)
        assert first.status == repeat.status == 302
        assert first.headers.get("Location") == repeat.headers.get("Location")
        assert server.cache_hits == 1
        # A different header misses: the key varies on Accept-Datetime.
        other = get(server, f"action=timegate&url={url}", world.clock.now,
                    {ACCEPT_DATETIME: str(world.clock.now)})
        assert other.status == 302
        assert server.cache_hits == 1

    def test_memento_body_cached_and_byte_identical(self):
        world = build_world(SEED, pages=4)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=2)
        url = world.urls[0]
        query = f"action=memento&url={url}&rev=1.1"
        first = get(server, query, world.clock.now)
        cached = get(server, query, world.clock.now)
        assert first.status == 200
        assert first.body == cached.body
        assert server.cache_hits == 1

    def test_checkin_invalidates_timegate_and_timemap(self):
        world = build_world(SEED, pages=4)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=1)
        url = world.urls[0]
        gate_q = f"action=timegate&url={url}"
        map_q = f"action=timemap&url={url}"
        stale_gate = get(server, gate_q, world.clock.now)
        stale_map = get(server, map_q, world.clock.now)
        assert stale_gate.status == 302 and stale_map.status == 200

        world.clock.advance(3600)
        server.checkin_content("curator0@example.com", url,
                               "<HTML><BODY><P>fresh state.</P></BODY></HTML>")

        fresh_gate = get(server, gate_q, world.clock.now)
        fresh_map = get(server, map_q, world.clock.now)
        # The absent-header gate now points at the new head revision...
        assert fresh_gate.headers.get("Location") != \
            stale_gate.headers.get("Location")
        # ...and the TimeMap lists one more memento.
        assert fresh_map.body != stale_map.body
        assert fresh_map.body.count('rel="memento"') + \
            fresh_map.body.count('rel="first memento"') + \
            fresh_map.body.count('rel="last memento"') > 0

    def test_pinned_memento_survives_checkin(self):
        world = build_world(SEED, pages=4)
        server = make_server(world)
        seed_world(server, world, seed=SEED, rounds=1)
        url = world.urls[0]
        query = f"action=memento&url={url}&rev=1.1"
        before = get(server, query, world.clock.now)
        world.clock.advance(3600)
        server.checkin_content("curator0@example.com", url,
                               "<HTML><BODY><P>fresh state.</P></BODY></HTML>")
        after = get(server, query, world.clock.now)
        # An immutable URI-M body is unchanged by new history, and the
        # second read was a cache hit (the entry was not invalidated).
        assert before.body == after.body
        assert server.cache_hits >= 1
