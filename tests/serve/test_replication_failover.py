"""Replicated shards under fault: failover reads, hinted handoff,
read repair, anti-entropy scrub, torn-journal recovery, and the
operator surfaces that report it all."""

import json

import pytest

from repro.core.snapshot.journal import JOURNAL_NAME
from repro.serve import (
    ClosedLoopLoad,
    DiffServer,
    HandoffJournal,
    Rejection,
    ShardFaultPlan,
    build_world,
    seed_world,
    url_fingerprint,
)
from repro.obs import Observability
from repro.web.http import Request

SEED = 7


def make_server(world, **kwargs):
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("workers_per_shard", 2)
    kwargs.setdefault("queue_limit", 16)
    kwargs.setdefault("replication", 2)
    return DiffServer(world.clock, world.agent, **kwargs)


def get(service, query, now=0):
    request = Request("GET",
                      f"http://aide.example.com/cgi-bin/snapshot?{query}")
    return service(request, now)


def seeded(world, **kwargs):
    server = make_server(world, **kwargs)
    revisions = seed_world(server, world, seed=SEED, rounds=2)
    return server, revisions


def crash_now(server, shard, now, recover_at):
    """Inject a crash transition directly through the manager (tests
    that exercise one mechanism without scripting a whole plan)."""
    plan = ShardFaultPlan().crash(shard, now, recover_at)
    mgr = server.replicator
    mgr._transitions = plan.transitions()
    mgr._next_transition = 0
    mgr.advance(now)


class TestFaultPlan:
    def test_transitions_are_time_ordered(self):
        plan = ShardFaultPlan()
        plan.crash(1, at=50, recover_at=80)
        plan.slow(0, at=10, until=60, factor=3)
        events = [(t, e, f.shard) for t, _s, e, f in plan.transitions()]
        assert events == [(10, "slow_on", 0), (50, "crash", 1),
                          (60, "slow_off", 0), (80, "recover", 1)]

    def test_kill_each_once_never_overlaps(self):
        plan = ShardFaultPlan.kill_each_once(4, start=100, downtime=50)
        windows = sorted((f.at, f.recover_at) for f in plan.faults)
        assert len(windows) == 4
        for (_a0, r0), (a1, _r1) in zip(windows, windows[1:]):
            assert a1 >= r0

    def test_kill_each_once_rejects_overlapping_spacing(self):
        with pytest.raises(ValueError):
            ShardFaultPlan.kill_each_once(4, start=0, downtime=100,
                                          spacing=50)

    def test_bad_windows_rejected(self):
        with pytest.raises(ValueError):
            ShardFaultPlan().crash(0, at=10, recover_at=10)
        with pytest.raises(ValueError):
            ShardFaultPlan().slow(0, at=10, until=20, factor=0)


class TestFailover:
    def test_reads_survive_primary_shard_loss(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world)
        mgr = server.replicator
        url = world.urls[0]
        primary = mgr.replica_set(url)[0]
        now = world.clock.now
        crash_now(server, primary, now, now + 10_000)

        response = get(server, f"action=view&url={url}&rev=1.1", now + 1)
        assert response.status == 200
        assert mgr.failovers > 0
        # Served by the surviving peer, byte-identical to the dead
        # primary's answer (same state, same rendering code).
        healthy_world = build_world(SEED, pages=8)
        healthy, _ = seeded(healthy_world)
        twin = get(healthy, f"action=view&url={url}&rev=1.1",
                   healthy_world.clock.now + 1)
        assert response.body == twin.body

    def test_whole_replica_set_down_is_shed_with_retry_after(self, tmp_path):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world, repository_dir=str(tmp_path),
                                   sync_interval=1)
        mgr = server.replicator
        url = world.urls[0]
        replicas = mgr.replica_set(url)
        now = world.clock.now
        plan = ShardFaultPlan()
        for shard in replicas:
            plan.crash(shard, now, now + 500)
        mgr._transitions = plan.transitions()
        mgr._next_transition = 0

        response, schedule = server.dispatch(
            Request("GET", "http://aide.example.com/cgi-bin/snapshot?"
                           f"action=view&url={url}&rev=1.1"), now + 10)
        assert response.status == 503
        assert isinstance(schedule, Rejection)
        # Retry-After points at the earliest scheduled recovery.
        assert schedule.retry_after == 500 - 10
        assert mgr.stats()["unavailable"] == 1
        # After recovery the same request is served again.
        ok = get(server, f"action=view&url={url}&rev=1.1", now + 600)
        assert ok.status == 200

    def test_mutations_are_fanned_out_to_live_peers(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world)
        mgr = server.replicator
        url = world.urls[0]
        a, b = mgr.replica_set(url)
        key = server.store.router.canonical(url)
        world.origin.set_page("/page000.html", "<HTML><BODY>new"
                                               "</BODY></HTML>")
        response = get(server, f"action=remember&url={url}"
                               f"&user=x@example.com", world.clock.now)
        assert response.status == 200
        fp_a = url_fingerprint(server.store.shards[a], key)
        fp_b = url_fingerprint(server.store.shards[b], key)
        assert fp_a == fp_b
        assert server.store.shards[b].archives[key].revision_count == 3


class TestHintedHandoff:
    def test_write_during_outage_queues_hint_and_replays_on_recovery(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world)
        mgr = server.replicator
        url = world.urls[0]
        key = server.store.router.canonical(url)
        a, b = mgr.replica_set(url)
        now = world.clock.now
        crash_now(server, b, now, now + 5_000)

        world.origin.set_page("/page000.html", "<HTML><BODY>while-down"
                                               "</BODY></HTML>")
        response = get(server, f"action=remember&url={url}"
                               f"&user=x@example.com", now + 100)
        assert response.status == 200
        assert mgr.handoff.depth(b) == 1
        stats = mgr.stats()["handoff"]
        assert stats["queued"] == 1 and stats["depth"] == 1

        # Recovery drains the hint; the replica converges.
        mgr.advance(now + 5_000)
        assert mgr.handoff.depth(b) == 0
        assert mgr.stats()["handoff"]["replayed"] == 1
        assert (url_fingerprint(server.store.shards[a], key)
                == url_fingerprint(server.store.shards[b], key))
        assert server.store.shards[b].archives[key].revision_count == 3

    def test_handoff_journal_persists_and_truncates_torn_tail(self, tmp_path):
        journal = HandoffJournal(str(tmp_path))
        journal.queue(2, "http://a.example.com/x.html")
        journal.queue(2, "http://a.example.com/y.html")
        journal.queue(1, "http://a.example.com/z.html")
        journal.drain(1)

        reloaded = HandoffJournal(str(tmp_path))
        assert reloaded.depths() == {2: 2}
        assert reloaded.drain(2) == ["http://a.example.com/x.html",
                                     "http://a.example.com/y.html"]

        # Tear the tail: the damaged suffix is dropped, not fatal.
        path = tmp_path / "handoff.log"
        data = path.read_bytes()
        path.write_bytes(data[:-9])
        torn = HandoffJournal(str(tmp_path))
        assert torn.torn_tail_truncations == 1


class TestReadRepair:
    def test_lagging_live_replica_is_repaired_on_read(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world)
        mgr = server.replicator
        url = world.urls[0]
        key = server.store.router.canonical(url)
        a, b = mgr.replica_set(url)
        # Knock the secondary back to an empty store without marking it
        # dead — the "replica silently lost state" shape.
        server.store.reset_shard(b)
        server._on_shard_reset(b)
        assert server.store.shards[b].archives.get(key) is None

        response = get(server, f"action=view&url={url}&rev=1.2",
                       world.clock.now)
        assert response.status == 200
        assert mgr.read_repairs >= 1
        assert (url_fingerprint(server.store.shards[a], key)
                == url_fingerprint(server.store.shards[b], key))

    def test_repair_invalidates_stale_cached_responses(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world)
        mgr = server.replicator
        url = world.urls[0]
        key = server.store.router.canonical(url)
        a, b = mgr.replica_set(url)
        # Render a response while the replicas agree, then poison
        # replica b with divergent state and cache the response as if b
        # had served it before diverging.
        response = get(server, f"action=view&url={url}&rev=1.1",
                       world.clock.now)
        stale = server.store.shards[b]
        del stale.archives[key]
        archive = stale.archive_for(key)
        archive.checkin("<HTML><BODY>impostor</BODY></HTML>", 1,
                        author="evil")
        cache = server.response_caches[b]
        cache.put(("view", key, "1.1", False), response)
        assert len(cache) == 1

        mgr.sync_url(a, b, key)
        assert mgr.divergence_rebuilds == 1
        # The repair dropped the pinned cached response too.
        assert cache._entries.get(("view", key, "1.1", False)) is None
        assert (url_fingerprint(server.store.shards[a], key)
                == url_fingerprint(server.store.shards[b], key))


class TestScrub:
    def test_scrub_converges_diverged_replicas_to_byte_identity(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world, scrub_interval=100)
        mgr = server.replicator
        url = world.urls[0]
        key = server.store.router.canonical(url)
        a, b = mgr.replica_set(url)
        # Diverge b: same revision count, different content.
        stale = server.store.shards[b]
        del stale.archives[key]
        archive = stale.archive_for(key)
        archive.checkin("<HTML><BODY>one</BODY></HTML>", 1, author="evil")
        archive.checkin("<HTML><BODY>two</BODY></HTML>", 2, author="evil")
        assert not mgr.converged(url)

        repairs = mgr.scrub(world.clock.now)
        assert repairs >= 1
        assert mgr.converged(url)
        assert (url_fingerprint(server.store.shards[a], key)
                == url_fingerprint(server.store.shards[b], key))

    def test_scrub_runs_on_the_sim_clock_via_dispatch(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world, scrub_interval=50)
        mgr = server.replicator
        before = mgr.scrub_runs
        get(server, f"action=view&url={world.urls[0]}&rev=1.1",
            world.clock.now + 10_000)
        assert mgr.scrub_runs == before + 1

    def test_converged_fleet_scrubs_clean(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world, scrub_interval=100)
        mgr = server.replicator
        assert mgr.scrub(world.clock.now) == 0
        assert mgr.scrub_repairs == 0


class TestOperatorSurfaces:
    def test_stats_and_metrics_report_replication_under_shard_loss(self):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(world, obs=Observability(world.clock))
        mgr = server.replicator
        now = world.clock.now
        crash_now(server, 0, now, now + 10_000)

        block = server.stats()["replication"]
        assert block["factor"] == 2
        assert block["live_replicas"] == 3
        assert block["dead_replicas"] == 1
        assert block["dead"] == [0]
        assert "handoff" in block and "scrub" in block

        stats_page = get(server, "action=stats", now + 1)
        assert stats_page.status == 200
        assert "replication" in stats_page.body

        metrics = get(server, "action=metrics&format=json", now + 2)
        assert metrics.status == 200
        snapshot = json.loads(metrics.body)
        flat = json.dumps(snapshot)
        assert "serve.replication" in flat

    def test_urls_with_a_live_replica_keep_serving_200s(self):
        world = build_world(SEED, pages=16)
        server, revisions = seeded(world)
        mgr = server.replicator
        now = world.clock.now
        crash_now(server, 0, now, now + 100_000)
        for url in world.urls:
            response = get(server, f"action=view&url={url}&rev=1.1",
                           now + 1)
            assert response.status == 200


class TestDiskRecovery:
    def test_torn_journal_tail_is_recovered_and_peers_refill_the_gap(
            self, tmp_path):
        world = build_world(SEED, pages=8)
        server, revisions = seeded(
            world, repository_dir=str(tmp_path), sync_interval=1)
        mgr = server.replicator
        url = world.urls[0]
        key = server.store.router.canonical(url)
        a, b = mgr.replica_set(url)
        now = world.clock.now

        plan = ShardFaultPlan().crash(a, now + 10, now + 1_000,
                                      torn_tail=True)
        mgr._transitions = plan.transitions()
        mgr._next_transition = 0
        mgr.advance(now + 10)
        assert not mgr.alive[a]
        journal = tmp_path / f"shard-{a:02d}" / JOURNAL_NAME
        assert journal.exists()

        mgr.advance(now + 1_000)
        assert mgr.alive[a]
        assert mgr.journal_truncations >= 1
        assert (url_fingerprint(server.store.shards[a], key)
                == url_fingerprint(server.store.shards[b], key))
        response = get(server, f"action=view&url={url}&rev=1.2",
                       now + 1_001)
        assert response.status == 200


class TestChaosLoadEndToEnd:
    def test_kill_each_shard_once_serves_every_request_and_converges(self):
        world = build_world(SEED, pages=12)
        # Seeding with pages=12, rounds=2 ends at t=7920; the kill
        # schedule must land inside the load window to matter.
        plan = ShardFaultPlan.kill_each_once(4, start=8_200, downtime=300,
                                             spacing=600)
        server = make_server(world, fault_plan=plan, scrub_interval=200)
        revisions = seed_world(server, world, seed=SEED, rounds=2)
        load = ClosedLoopLoad(SEED, world.urls, revisions, users=150,
                              requests_per_user=6, think_time=200,
                              arrival_window=1_200, mutation_rate=0.05)
        report = load.run(server, start=world.clock.now)
        assert report.completed == report.requests
        assert all(response.status < 500
                   for response in report.responses.values())
        mgr = server.replicator
        # Drain any transitions past the last dispatch, then scrub the
        # whole URL space to a fixed point.
        mgr.advance(10**9)
        assert mgr.crashes == 4 and mgr.recoveries == 4
        # Post-run convergence: every URL's replicas byte-identical.
        for _ in range(5):
            mgr.scrub(10**9)
        assert all(mgr.converged(url) for url in mgr.known_urls())
        # Zero lost revisions: every acknowledged seed revision is on
        # every replica.
        for url, revs in revisions.items():
            key = server.store.router.canonical(url)
            for shard in mgr.replica_set(key):
                archive = server.store.shards[shard].archives[key]
                assert archive.revision_count >= len(revs)

    def test_chaos_run_is_deterministic(self):
        def run():
            world = build_world(SEED, pages=8)
            plan = ShardFaultPlan.kill_each_once(4, start=8_000,
                                                 downtime=300, spacing=600)
            server = make_server(world, fault_plan=plan,
                                 scrub_interval=200)
            revisions = seed_world(server, world, seed=SEED, rounds=2)
            load = ClosedLoopLoad(SEED, world.urls, revisions, users=80,
                                  requests_per_user=4, think_time=200,
                                  arrival_window=800, mutation_rate=0.05)
            report = load.run(server, start=world.clock.now)
            return report, server.replicator.stats()

        first_report, first_stats = run()
        second_report, second_stats = run()
        assert first_stats == second_stats
        assert first_report.to_dict() == second_report.to_dict()
        assert all(
            first_report.responses[key].body
            == second_report.responses[key].body
            for key in first_report.responses
        )


class TestUnreplicatedPathUnchanged:
    def test_r1_server_has_no_replicator_and_matches_old_routing(self):
        world = build_world(SEED, pages=8)
        server = DiffServer(world.clock, world.agent, shards=4)
        assert server.replicator is None
        assert "replication" not in server.stats()
