"""Tests for the file-based RCS CLI commands."""

import pytest

from repro.cli import main


@pytest.fixture
def page(tmp_path):
    path = tmp_path / "page.html"
    path.write_text("<P>version one.</P>\n<P>stable paragraph.</P>\n")
    return path


class TestCi:
    def test_first_checkin_creates_archive(self, page, capsys):
        assert main(["ci", str(page), "-m", "initial"]) == 0
        err = capsys.readouterr().err
        assert "revision 1.1" in err
        assert page.with_name("page.html,v").exists()

    def test_unchanged_checkin_exits_one(self, page, capsys):
        main(["ci", str(page)])
        assert main(["ci", str(page)]) == 1
        assert "unchanged" in capsys.readouterr().err

    def test_sequence_of_revisions(self, page, capsys):
        main(["ci", str(page)])
        page.write_text("<P>version two.</P>\n<P>stable paragraph.</P>\n")
        assert main(["ci", str(page), "-m", "second"]) == 0
        assert "revision 1.2" in capsys.readouterr().err


class TestCo:
    def test_head_by_default(self, page, capsys):
        main(["ci", str(page)])
        page.write_text("<P>version two.</P>\n")
        main(["ci", str(page)])
        assert main(["co", str(page)]) == 0
        assert "version two." in capsys.readouterr().out

    def test_specific_revision(self, page, capsys):
        main(["ci", str(page)])
        page.write_text("<P>version two.</P>\n")
        main(["ci", str(page)])
        assert main(["co", str(page), "-r", "1.1"]) == 0
        assert "version one." in capsys.readouterr().out

    def test_output_file(self, page, tmp_path, capsys):
        main(["ci", str(page)])
        target = tmp_path / "restored.html"
        assert main(["co", str(page), "-o", str(target)]) == 0
        assert "version one." in target.read_text()

    def test_missing_archive(self, page, capsys):
        assert main(["co", str(page)]) == 2

    def test_unknown_revision(self, page, capsys):
        main(["ci", str(page)])
        assert main(["co", str(page), "-r", "9.9"]) == 2


class TestRlog:
    def test_history_listing(self, page, capsys):
        main(["ci", str(page), "-m", "first draft"])
        page.write_text("<P>v2</P>\n")
        main(["ci", str(page), "-m", "rewrite"])
        assert main(["rlog", str(page)]) == 0
        out = capsys.readouterr().out
        assert "revision 1.2" in out
        assert "first draft" in out
        assert "rewrite" in out


class TestRcsdiff:
    def test_two_revisions(self, page, capsys):
        main(["ci", str(page)])
        page.write_text("<P>version two.</P>\n<P>stable paragraph.</P>\n")
        main(["ci", str(page)])
        code = main(["rcsdiff", str(page), "-r", "1.1", "-r", "1.2"])
        assert code == 1
        out = capsys.readouterr().out
        assert "-<P>version one.</P>" in out
        assert "+<P>version two.</P>" in out

    def test_revision_vs_working_file(self, page, capsys):
        main(["ci", str(page)])
        page.write_text("<P>edited but not checked in.</P>\n")
        assert main(["rcsdiff", str(page)]) == 1
        assert "working file" in capsys.readouterr().out

    def test_identical_exits_zero(self, page, capsys):
        main(["ci", str(page)])
        assert main(["rcsdiff", str(page)]) == 0

    def test_html_mode(self, page, capsys):
        main(["ci", str(page)])
        page.write_text("<P>edited text now totally different.</P>\n")
        main(["ci", str(page)])
        code = main(["rcsdiff", str(page), "-r", "1.1", "-r", "1.2", "--html"])
        assert code == 1
        assert "Internet Difference Engine" in capsys.readouterr().out

    def test_corrupt_archive_reported(self, page, capsys):
        page.with_name("page.html,v").write_text("garbage")
        assert main(["rlog", str(page)]) == 2
        assert "aide:" in capsys.readouterr().err
