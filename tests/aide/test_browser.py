"""Tests for the integrated browser (§6 history fix, §8.4 form bookmarks)."""

import pytest

from repro.aide.browser import IntegratedBrowser
from repro.aide.engine import Aide
from repro.aide.postforms import PostFormRegistry
from repro.core.w3newer.hotlist import Hotlist
from repro.simclock import DAY
from repro.web.cgi import FormEchoScript


@pytest.fixture
def deployment():
    aide = Aide()
    server = aide.network.create_server("www.example.com")
    server.set_page("/news.html", "<P>bulletin one.</P>")
    user = aide.add_user(
        "fred@att.com", Hotlist.from_lines("http://www.example.com/news.html")
    )
    browser = IntegratedBrowser(user.browser, aide.clock, history=user.history)
    return aide, server, user, browser


def diff_url(url, user):
    return (
        "http://aide.research.att.com/cgi-bin/snapshot"
        f"?action=diff&url={url}&user={user}"
    )


class TestHistoryIntegration:
    def prime_changed_page(self, aide, server, user):
        user.visit("http://www.example.com/news.html", aide.clock)
        aide.remember("fred@att.com", "http://www.example.com/news.html")
        aide.clock.advance(3 * DAY)
        server.set_page("/news.html", "<P>bulletin two.</P>")
        aide.clock.advance(3 * DAY)

    def test_viewing_diff_clears_changed_flag(self, deployment):
        aide, server, user, browser = deployment
        self.prime_changed_page(aide, server, user)
        assert len(aide.run_w3newer("fred@att.com").changed) == 1
        browser.browse(diff_url("http://www.example.com/news.html", "fred@att.com"))
        # With the extension, the page itself is now recorded as seen.
        assert len(aide.run_w3newer("fred@att.com").changed) == 0

    def test_stock_browser_keeps_the_wart(self, deployment):
        aide, server, user, browser = deployment
        browser.history_integration = False
        self.prime_changed_page(aide, server, user)
        assert len(aide.run_w3newer("fred@att.com").changed) == 1
        browser.browse(diff_url("http://www.example.com/news.html", "fred@att.com"))
        # 1995 behaviour: still reported as changed.
        assert len(aide.run_w3newer("fred@att.com").changed) == 1

    def test_ordinary_pages_recorded_normally(self, deployment):
        aide, server, user, browser = deployment
        browser.browse("http://www.example.com/news.html")
        assert user.history.last_seen("http://www.example.com/news.html") is not None

    def test_remember_action_does_not_mark_seen(self, deployment):
        # Remember saves a copy; it is not the user *viewing* the page.
        aide, server, user, browser = deployment
        browser.browse(
            "http://aide.research.att.com/cgi-bin/snapshot"
            "?action=remember&url=http://www.example.com/news.html&user=fred@att.com"
        )
        assert user.history.last_seen("http://www.example.com/news.html") is None


class TestFormBookmarks:
    def test_jump_directly_to_form_output(self, deployment):
        aide, server, user, browser = deployment
        server.register_cgi("/cgi-bin/search", FormEchoScript())
        browser.bookmark_form(
            "my-search", "http://www.example.com/cgi-bin/search",
            {"q": "mobile computing"},
        )
        response = browser.open_form_bookmark("my-search")
        assert response.status == 200
        assert "mobile computing" in response.body

    def test_hand_form_to_aide(self, deployment):
        aide, server, user, browser = deployment
        echo = FormEchoScript()
        server.register_cgi("/cgi-bin/search", echo)
        registry = PostFormRegistry(aide.store)
        browser.bookmark_form(
            "my-search", "http://www.example.com/cgi-bin/search", {"q": "x"}
        )
        result = browser.hand_form_to_aide("my-search", registry, "fred@att.com")
        assert result.revision == "1.1"
        # Output changes -> AIDE can diff the POST result.
        echo.generation += 1
        aide.clock.advance(DAY)
        diff = registry.diff("fred@att.com", "my-search")
        assert not diff.identical

    def test_unknown_bookmark(self, deployment):
        aide, server, user, browser = deployment
        with pytest.raises(KeyError):
            browser.open_form_bookmark("nope")
