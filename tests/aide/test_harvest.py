"""Tests for the Harvest-style lazy notification service (§3.1)."""

import pytest

from repro.aide.harvest import ChangeNotice, DistributedRepository, RegionalCache
from repro.simclock import DAY, HOUR, CronScheduler, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("origin.com")
    server.set_page("/page.html", "<P>v1</P>")
    agent = UserAgent(network, clock)
    repo = DistributedRepository(clock, agent)
    cache = RegionalCache("nj-cache", repo, clock)
    return clock, network, server, repo, cache


class TestDiscoveryModes:
    def test_poll_mode_detects_change(self, world):
        clock, network, server, repo, cache = world
        cache.register_interest("fred", "http://origin.com/page.html")
        repo.poll_round()  # baseline already taken at subscribe
        clock.advance(DAY)
        server.set_page("/page.html", "<P>v2</P>")
        assert repo.poll_round() == 1
        notices = cache.collect("fred")
        assert len(notices) == 1
        assert notices[0].url == "http://origin.com/page.html"

    def test_provider_notify_mode(self, world):
        clock, network, server, repo, cache = world
        repo.track("http://origin.com/page.html", mode="provider-notify")
        cache.register_interest("fred", "http://origin.com/page.html")
        clock.advance(HOUR)
        server.set_page("/page.html", "<P>v2</P>")
        repo.provider_changed("http://origin.com/page.html")
        notices = cache.collect("fred")
        assert len(notices) == 1
        assert notices[0].latency == 0  # push is immediate

    def test_provider_notify_requires_mode(self, world):
        clock, network, server, repo, cache = world
        repo.track("http://origin.com/page.html", mode="poll")
        with pytest.raises(ValueError):
            repo.provider_changed("http://origin.com/page.html")

    def test_unknown_mode_rejected(self, world):
        clock, network, server, repo, cache = world
        with pytest.raises(ValueError):
            repo.track("http://origin.com/page.html", mode="telepathy")

    def test_poll_mode_excluded_from_push(self, world):
        clock, network, server, repo, cache = world
        repo.track("http://origin.com/page.html", mode="provider-notify")
        # Poll rounds skip provider-notify pages entirely.
        requests_before = repo.poll_requests
        repo.poll_round()
        assert repo.poll_requests == requests_before


class TestFanInFanOut:
    def test_many_users_one_upstream_subscription(self, world):
        clock, network, server, repo, cache = world
        for i in range(30):
            cache.register_interest(f"user{i}", "http://origin.com/page.html")
        clock.advance(DAY)
        server.set_page("/page.html", "<P>v2</P>")
        repo.poll_round()
        # One upstream notice fans out to all thirty local users.
        assert cache.notices_received == 1
        assert all(
            len(cache.collect(f"user{i}")) == 1 for i in range(30)
        )

    def test_origin_polled_once_per_round(self, world):
        clock, network, server, repo, cache = world
        other = RegionalCache("ca-cache", repo, clock)
        cache.register_interest("fred", "http://origin.com/page.html")
        other.register_interest("carol", "http://origin.com/page.html")
        origin_hits = server.get_count
        repo.poll_round()
        assert server.get_count == origin_hits + 1  # not per cache/user

    def test_replica_serves_without_origin(self, world):
        clock, network, server, repo, cache = world
        cache.register_interest("fred", "http://origin.com/page.html")
        hits = server.get_count
        body = cache.page("http://origin.com/page.html")
        assert body == "<P>v1</P>"
        assert server.get_count == hits  # served from the replica

    def test_collect_is_destructive(self, world):
        clock, network, server, repo, cache = world
        cache.register_interest("fred", "http://origin.com/page.html")
        clock.advance(DAY)
        server.set_page("/page.html", "<P>v2</P>")
        repo.poll_round()
        assert cache.collect("fred")
        assert cache.collect("fred") == []


class TestBestEffort:
    def test_drops_are_deterministic_and_bounded(self, world):
        clock, network, server, repo, cache = world
        lossy = DistributedRepository(
            clock, UserAgent(network, clock), drop_rate=0.5, seed=1,
        )
        lossy_cache = RegionalCache("lossy", lossy, clock)
        for i in range(10):
            server.set_page(f"/p{i}.html", "v1")
            lossy_cache.register_interest("fred", f"http://origin.com/p{i}.html")
        clock.advance(DAY)
        for i in range(10):
            server.set_page(f"/p{i}.html", "v2")
        lossy.poll_round()
        assert lossy.notifications_sent == 10
        assert 0 < lossy.notifications_dropped < 10
        delivered = len(lossy_cache.collect("fred"))
        assert delivered == 10 - lossy.notifications_dropped

    def test_dropped_notice_recovered_next_round(self, world):
        clock, network, server, repo, cache = world
        lossy = DistributedRepository(
            clock, UserAgent(network, clock), drop_rate=0.9, seed=3,
        )
        lossy_cache = RegionalCache("lossy", lossy, clock)
        lossy_cache.register_interest("fred", "http://origin.com/page.html")
        total = 0
        for round_index in range(12):
            clock.advance(DAY)
            server.set_page("/page.html", f"<P>v{round_index + 2}</P>")
            lossy.poll_round()
            total += len(lossy_cache.collect("fred"))
        # Over many rounds at least some notices get through.
        assert total >= 1

    def test_invalid_drop_rate(self, world):
        clock, network, server, repo, cache = world
        with pytest.raises(ValueError):
            DistributedRepository(clock, UserAgent(network, clock), drop_rate=1.0)


class TestCronIntegration:
    def test_scheduled_polling(self, world):
        clock, network, server, repo, cache = world
        cache.register_interest("fred", "http://origin.com/page.html")
        cron = CronScheduler(clock)
        repo.schedule(cron, period=DAY)
        server.set_page("/page.html", "<P>v2</P>")
        cron.run_until(3 * DAY)
        notices = cache.collect("fred")
        assert len(notices) == 1
