"""Tests for optional services mounted through the Aide facade."""

import pytest

from repro.aide.engine import Aide
from repro.core.w3newer.hotlist import Hotlist
from repro.simclock import DAY


@pytest.fixture
def aide():
    deployment = Aide()
    origin = deployment.network.create_server("www.example.com")
    origin.set_page("/doc.html", "<P>served document.</P>")
    deployment.add_user("fred@att.com",
                        Hotlist.from_lines("http://www.example.com/doc.html"))
    return deployment


class TestEnableHostedTracking:
    def test_mounted_and_reachable(self, aide):
        service = aide.enable_hosted_tracking()
        user = aide.users["fred@att.com"]
        resp = user.browser.post(
            f"http://{aide.SERVICE_HOST}/cgi-bin/w3newer",
            body="action=upload&user=fred&hotlist=http://www.example.com/doc.html",
        ).response
        assert resp.status == 200
        assert service.tracked_urls() == {"http://www.example.com/doc.html"}

    def test_report_roundtrip(self, aide):
        service = aide.enable_hosted_tracking()
        service.upload_hotlist("fred", "http://www.example.com/doc.html\n")
        service.check_cycle()
        user = aide.users["fred@att.com"]
        resp = user.browser.get(
            f"http://{aide.SERVICE_HOST}/cgi-bin/w3newer?action=report&user=fred"
        ).response
        assert resp.status == 200
        assert "doc.html" in resp.body


class TestEnableWiki:
    def test_wiki_reachable_on_aide_host(self, aide):
        weaver = aide.enable_wiki()
        weaver.edit("FrontPage", "<P>hello wiki.</P>", author="fred")
        user = aide.users["fred@att.com"]
        resp = user.browser.get(
            f"http://{aide.SERVICE_HOST}/wiki/view?page=FrontPage"
        ).response
        assert resp.status == 200
        assert "hello wiki." in resp.body


class TestEnableServerSide:
    def test_origin_gets_rcs_cgis(self, aide):
        versioning = aide.enable_server_side_versioning("www.example.com")
        versioning.publish("/doc.html", "<P>published v1.</P>")
        user = aide.users["fred@att.com"]
        resp = user.browser.get(
            "http://www.example.com/cgi-bin/rlog?file=/doc.html"
        ).response
        assert resp.status == 200
        assert "1.1" in resp.body

    def test_unknown_host_rejected(self, aide):
        with pytest.raises(ValueError):
            aide.enable_server_side_versioning("nowhere.example")
