"""Tests for WebWeaver served over HTTP."""

import pytest

from repro.aide.webweaver import WebWeaver
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("wiki.att.com")
    weaver = WebWeaver(clock)
    weaver.mount(server)
    weaver.edit("FrontPage", "<P>Welcome. See DesignNotes.</P>", author="fred")
    weaver.edit("DesignNotes", "<P>Original design notes here.</P>",
                author="fred")
    agent = UserAgent(network, clock)
    return clock, weaver, agent


BASE = "http://wiki.att.com"


class TestHttpWiki:
    def test_view_page(self, world):
        clock, weaver, agent = world
        resp = agent.get(f"{BASE}/wiki/view?page=FrontPage").response
        assert resp.status == 200
        assert "Welcome." in resp.body
        assert 'HREF="/wiki/DesignNotes"' in resp.body

    def test_view_missing_404(self, world):
        clock, weaver, agent = world
        resp = agent.get(f"{BASE}/wiki/view?page=NoSuchPage").response
        assert resp.status == 404

    def test_view_with_reader_marks_read(self, world):
        clock, weaver, agent = world
        agent.get(f"{BASE}/wiki/view?page=FrontPage&reader=alice")
        assert weaver.unseen_changes("alice") != []  # DesignNotes unread
        agent.get(f"{BASE}/wiki/view?page=DesignNotes&reader=alice")
        assert weaver.unseen_changes("alice") == []

    def test_recent_changes_page(self, world):
        clock, weaver, agent = world
        resp = agent.get(f"{BASE}/wiki/RecentChanges").response
        assert resp.status == 200
        assert "FrontPage" in resp.body and "DesignNotes" in resp.body

    def test_edit_via_post(self, world):
        clock, weaver, agent = world
        resp = agent.post(
            f"{BASE}/wiki/edit",
            body="page=DesignNotes&content=<P>Revised notes.</P>&author=tom",
        ).response
        assert resp.status == 200
        assert "revision 1.2" in resp.body
        assert "Revised notes." in weaver.raw("DesignNotes")

    def test_edit_requires_post(self, world):
        clock, weaver, agent = world
        resp = agent.get(f"{BASE}/wiki/edit?page=X&content=y").response
        assert resp.status == 405

    def test_edit_bad_wikiname_400(self, world):
        clock, weaver, agent = world
        resp = agent.post(
            f"{BASE}/wiki/edit", body="page=lowercase&content=x"
        ).response
        assert resp.status == 400

    def test_diff_over_http(self, world):
        clock, weaver, agent = world
        clock.advance(DAY)
        agent.post(
            f"{BASE}/wiki/edit",
            body="page=DesignNotes&content=<P>Original design notes here, "
                 "plus brand new thinking.</P>&author=tom",
        )
        resp = agent.get(f"{BASE}/wiki/diff?page=DesignNotes").response
        assert resp.status == 200
        assert "<STRONG><I>" in resp.body

    def test_reader_diff_over_http(self, world):
        clock, weaver, agent = world
        agent.get(f"{BASE}/wiki/view?page=DesignNotes&reader=alice")
        clock.advance(DAY)
        agent.post(
            f"{BASE}/wiki/edit",
            body="page=DesignNotes&content=<P>Totally rewritten content "
                 "nothing alike.</P>&author=tom",
        )
        resp = agent.get(
            f"{BASE}/wiki/diff?page=DesignNotes&reader=alice"
        ).response
        assert resp.status == 200
        assert "Internet Difference Engine" in resp.body

    def test_diff_missing_page_404(self, world):
        clock, weaver, agent = world
        resp = agent.get(f"{BASE}/wiki/diff?page=Nothing").response
        assert resp.status == 404
