"""Integration tests for the Aide facade (Section 6)."""

import pytest

from repro.aide.engine import Aide
from repro.core.w3newer.hotlist import Hotlist
from repro.simclock import DAY


@pytest.fixture
def deployment():
    aide = Aide()
    server = aide.network.create_server("www.example.com")
    server.set_page(
        "/news.html",
        "<HTML><BODY>\n<P>First bulletin of the season.</P>\n</BODY></HTML>",
    )
    hotlist = Hotlist.from_lines("http://www.example.com/news.html The news page")
    user = aide.add_user("fred@att.com", hotlist)
    return aide, server, user


class TestFullLoop:
    def test_report_links_into_snapshot_service(self, deployment):
        aide, server, user = deployment
        aide.clock.advance(3 * DAY)
        result = aide.run_w3newer("fred@att.com")
        assert "aide.research.att.com/cgi-bin/snapshot" in result.report_html
        assert "action=remember" in result.report_html

    def test_remember_then_diff_roundtrip(self, deployment):
        aide, server, user = deployment
        resp = aide.remember("fred@att.com", "http://www.example.com/news.html")
        assert resp.status == 200
        aide.clock.advance(DAY)
        server.set_page(
            "/news.html",
            "<HTML><BODY>\n<P>Second bulletin replaces everything.</P>\n</BODY></HTML>",
        )
        aide.remember("fred@att.com", "http://www.example.com/news.html")
        diff = aide.diff("fred@att.com", "http://www.example.com/news.html")
        assert diff.status == 200
        assert "Internet Difference Engine" in diff.body

    def test_history_page(self, deployment):
        aide, server, user = deployment
        aide.remember("fred@att.com", "http://www.example.com/news.html")
        resp = aide.history_page("fred@att.com", "http://www.example.com/news.html")
        assert "1.1" in resp.body

    def test_diff_does_not_clear_changed_flag(self, deployment):
        # Section 6: "the user must view a page directly as well as via
        # HtmlDiff in order to both remove it from the list of modified
        # pages and see the actual differences."
        aide, server, user = deployment
        user.visit("http://www.example.com/news.html", aide.clock)
        aide.remember("fred@att.com", "http://www.example.com/news.html")
        aide.clock.advance(3 * DAY)
        server.set_page("/news.html", "<P>updated.</P>")
        aide.clock.advance(3 * DAY)
        first = aide.run_w3newer("fred@att.com")
        assert len(first.changed) == 1
        aide.diff("fred@att.com", "http://www.example.com/news.html")
        second = aide.run_w3newer("fred@att.com")
        assert len(second.changed) == 1  # still reported!
        user.visit("http://www.example.com/news.html", aide.clock)
        third = aide.run_w3newer("fred@att.com")
        assert len(third.changed) == 0

    def test_proxy_shared_between_users(self, deployment):
        aide, server, user = deployment
        other = aide.add_user(
            "tom@att.com",
            Hotlist.from_lines("http://www.example.com/news.html"),
        )
        user.visit("http://www.example.com/news.html", aide.clock)
        origin_hits = server.get_count
        other.visit("http://www.example.com/news.html", aide.clock)
        assert server.get_count == origin_hits  # served from shared proxy

    def test_two_users_one_archive(self, deployment):
        aide, server, user = deployment
        aide.add_user("tom@att.com",
                      Hotlist.from_lines("http://www.example.com/news.html"))
        aide.remember("fred@att.com", "http://www.example.com/news.html")
        aide.remember("tom@att.com", "http://www.example.com/news.html")
        assert aide.store.url_count() == 1
        archive = aide.store.archive_for("http://www.example.com/news.html")
        assert archive.revision_count == 1
