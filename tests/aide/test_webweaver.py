"""Tests for the WebWeaver wiki (Section 1's collaborative case)."""

import pytest

from repro.aide.webweaver import WebWeaver, WikiError
from repro.simclock import DAY, HOUR, SimClock


@pytest.fixture
def wiki():
    clock = SimClock()
    weaver = WebWeaver(clock)
    weaver.edit("FrontPage", "<P>Welcome to WebWeaver. See ProjectIdeas.</P>",
                author="fred")
    clock.advance(HOUR)
    weaver.edit("ProjectIdeas", "<P>First idea: track the web.</P>",
                author="tom")
    return clock, weaver


class TestEditing:
    def test_edit_creates_revisions(self, wiki):
        clock, weaver = wiki
        assert weaver.exists("FrontPage")
        rev = weaver.edit("FrontPage", "<P>Welcome, edited.</P>", author="tom")
        assert rev == "1.2"

    def test_bad_wikiname_rejected(self, wiki):
        clock, weaver = wiki
        with pytest.raises(WikiError):
            weaver.edit("not a wikiname", "<P>x</P>")
        with pytest.raises(WikiError):
            weaver.edit("lowercase", "<P>x</P>")

    def test_raw_old_revision(self, wiki):
        clock, weaver = wiki
        weaver.edit("FrontPage", "<P>Second version.</P>")
        assert "Welcome" in weaver.raw("FrontPage", "1.1")
        assert "Second" in weaver.raw("FrontPage")

    def test_missing_page_raises(self, wiki):
        clock, weaver = wiki
        with pytest.raises(WikiError):
            weaver.raw("NoSuchPage")


class TestRendering:
    def test_wikinames_become_links(self, wiki):
        clock, weaver = wiki
        html = weaver.render("FrontPage")
        assert '<A HREF="/wiki/ProjectIdeas">ProjectIdeas</A>' in html

    def test_missing_wikiname_gets_create_link(self, wiki):
        clock, weaver = wiki
        weaver.edit("FrontPage", "<P>See BrandNewPage for more.</P>")
        html = weaver.render("FrontPage")
        assert "BrandNewPage<A HREF=" in html

    def test_footer_shows_revision(self, wiki):
        clock, weaver = wiki
        html = weaver.render("ProjectIdeas")
        assert "Revision 1.1" in html


class TestRecentChanges:
    def test_sorted_by_modification_date(self, wiki):
        clock, weaver = wiki
        changes = weaver.recent_changes()
        assert [info.name for info in changes] == ["ProjectIdeas", "FrontPage"]
        clock.advance(DAY)
        weaver.edit("FrontPage", "<P>bumped.</P>")
        changes = weaver.recent_changes()
        assert changes[0].name == "FrontPage"

    def test_since_filter(self, wiki):
        clock, weaver = wiki
        recent = weaver.recent_changes(since=HOUR)
        assert [info.name for info in recent] == ["ProjectIdeas"]

    def test_page_renders_with_diff_links(self, wiki):
        clock, weaver = wiki
        html = weaver.recent_changes_page()
        assert "RecentChanges" in html
        assert "[Diff]" in html


class TestWikiDiff:
    def test_default_diff_previous_to_head(self, wiki):
        clock, weaver = wiki
        weaver.edit("FrontPage",
                    "<P>Welcome to WebWeaver. See ProjectIdeas and more.</P>")
        result = weaver.diff("FrontPage")
        assert not result.identical
        assert "<STRONG><I>" in result.html

    def test_subtle_midpage_edit_visible(self, wiki):
        # The WikiWikiWeb motivation: "content can be modified anywhere
        # on the page, and those changes may be too subtle to notice."
        clock, weaver = wiki
        weaver.edit(
            "ProjectIdeas",
            "<P>Intro paragraph.</P><P>Middle thought here.</P><P>End.</P>",
        )
        weaver.edit(
            "ProjectIdeas",
            "<P>Intro paragraph.</P><P>Middle insight here.</P><P>End.</P>",
        )
        result = weaver.diff("ProjectIdeas")
        assert "<STRIKE>thought</STRIKE>" in result.html
        assert "<STRONG><I>insight</I></STRONG>" in result.html

    def test_per_reader_diff(self, wiki):
        clock, weaver = wiki
        weaver.render("FrontPage", reader="alice")  # alice reads 1.1
        weaver.edit("FrontPage", "<P>Edit after alice read, brand new words.</P>")
        weaver.edit("FrontPage", "<P>Another edit, totally different again.</P>")
        result = weaver.diff_for_reader("alice", "FrontPage")
        assert not result.identical  # everything since 1.1

    def test_unseen_changes_report(self, wiki):
        clock, weaver = wiki
        weaver.render("FrontPage", reader="alice")
        weaver.render("ProjectIdeas", reader="alice")
        assert weaver.unseen_changes("alice") == []
        weaver.edit("ProjectIdeas", "<P>Changed behind alice's back.</P>")
        unseen = weaver.unseen_changes("alice")
        assert [info.name for info in unseen] == ["ProjectIdeas"]
