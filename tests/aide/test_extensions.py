"""Tests for the Section 8 extensions: fixed pages, central tracking,
server-side versioning, POST forms, prioritization."""

import pytest

from repro.aide.fixedpages import FixedPageCollection
from repro.aide.postforms import PostFormRegistry
from repro.aide.prioritize import parse_priority_config
from repro.aide.serverside import ServerSideVersioning
from repro.aide.tracker import CentralTracker, extract_links
from repro.core.snapshot.store import SnapshotError, SnapshotStore
from repro.simclock import DAY, HOUR, CronScheduler, SimClock
from repro.web.cgi import FormEchoScript
from repro.web.client import UserAgent
from repro.web.network import Network


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    server.set_page("/a.html", "<P>page a v1.</P>")
    server.set_page("/b.html", "<P>page b v1.</P>")
    agent = UserAgent(network, clock)
    store = SnapshotStore(clock, agent)
    return clock, network, server, store


class TestFixedPages:
    def test_poll_archives_changes_automatically(self, world):
        clock, network, server, store = world
        collection = FixedPageCollection(store, clock)
        collection.add_url("http://site.com/a.html")
        collection.add_url("http://site.com/b.html")
        first = collection.poll()
        assert first.checked == 2
        assert len(first.changed) == 2  # first sighting archives both
        clock.advance(DAY)
        server.set_page("/a.html", "<P>page a v2.</P>")
        second = collection.poll()
        assert second.changed == ["http://site.com/a.html"]
        archive = store.archive_for("http://site.com/a.html")
        assert archive.revision_count == 2

    def test_whats_new_page_lists_recent_changes(self, world):
        clock, network, server, store = world
        collection = FixedPageCollection(store, clock, title="ATT What's New")
        collection.add_url("http://site.com/a.html")
        collection.poll()
        clock.advance(DAY)
        server.set_page("/a.html", "<P>fresh.</P>")
        collection.poll()
        page = collection.whats_new_page()
        assert "http://site.com/a.html" in page
        assert "[Diff]" in page and "[History]" in page

    def test_since_filter(self, world):
        clock, network, server, store = world
        collection = FixedPageCollection(store, clock)
        collection.add_url("http://site.com/a.html")
        collection.poll()
        clock.advance(DAY)
        server.set_page("/a.html", "<P>v2.</P>")
        collection.poll()
        recent_only = collection.whats_new_page(since=clock.now + HOUR)
        assert "nothing has changed" in recent_only

    def test_errors_recorded_not_fatal(self, world):
        clock, network, server, store = world
        collection = FixedPageCollection(store, clock)
        collection.add_url("http://site.com/a.html")
        collection.add_url("http://dead.example/x")
        result = collection.poll()
        assert "http://dead.example/x" in result.errors
        assert "http://site.com/a.html" in result.changed

    def test_cron_scheduling(self, world):
        clock, network, server, store = world
        cron = CronScheduler(clock)
        collection = FixedPageCollection(store, clock)
        collection.add_url("http://site.com/a.html")
        collection.schedule(cron, period=DAY)
        cron.run_until(3 * DAY)
        assert len(collection.polls) == 3


class TestExtractLinks:
    def test_absolute_and_relative(self):
        html = (
            '<A HREF="http://other.org/x">a</A> '
            '<A HREF="/local.html">b</A> <A HREF="sub/page.html">c</A>'
        )
        links = extract_links(html, "http://host.com/dir/index.html")
        assert links == [
            "http://other.org/x",
            "http://host.com/local.html",
            "http://host.com/dir/sub/page.html",
        ]

    def test_non_http_skipped_and_deduped(self):
        html = (
            '<A HREF="mailto:x@y">m</A><A HREF="/a">1</A><A HREF="/a">2</A>'
        )
        links = extract_links(html, "http://h.com/")
        assert links == ["http://h.com/a"]


class TestCentralTracker:
    def test_polls_once_regardless_of_subscribers(self, world):
        clock, network, server, store = world
        tracker = CentralTracker(store, clock)
        for i in range(10):
            tracker.subscribe(f"user{i}", "http://site.com/a.html")
        network.reset_log()
        tracker.poll()
        hits = [r for r in network.log if r.path == "/a.html"]
        assert len(hits) == 1

    def test_report_changed_since_seen(self, world):
        clock, network, server, store = world
        tracker = CentralTracker(store, clock)
        tracker.subscribe("fred", "http://site.com/a.html")
        tracker.poll()
        tracker.mark_seen("fred", "http://site.com/a.html")
        rows = tracker.report_for("fred")
        assert not rows[0].changed_since_seen
        clock.advance(DAY)
        server.set_page("/a.html", "<P>changed.</P>")
        tracker.poll()
        rows = tracker.report_for("fred")
        assert rows[0].changed_since_seen

    def test_crawler_tracks_linked_pages(self, world):
        clock, network, server, store = world
        server.set_page(
            "/library.html",
            '<UL><LI><A HREF="/a.html">A</A><LI><A HREF="/b.html">B</A></UL>',
        )
        tracker = CentralTracker(store, clock)
        tracker.add_crawl_root("fred", "http://site.com/library.html", depth=1)
        tracker.poll()
        tracked = tracker.tracked_urls()
        assert "http://site.com/a.html" in tracked
        assert "http://site.com/b.html" in tracked
        # A change in a linked page surfaces in fred's report.
        clock.advance(DAY)
        server.set_page("/b.html", "<P>b changed.</P>")
        tracker.poll()
        rows = {row.url: row for row in tracker.report_for("fred")}
        assert rows["http://site.com/b.html"].changed_since_seen
        assert "crawled from" in rows["http://site.com/b.html"].via

    def test_crawler_same_host_restriction(self, world):
        clock, network, server, store = world
        other = network.create_server("elsewhere.org")
        other.set_page("/x.html", "<P>external.</P>")
        server.set_page(
            "/links.html",
            '<A HREF="/a.html">in</A><A HREF="http://elsewhere.org/x.html">out</A>',
        )
        tracker = CentralTracker(store, clock)
        tracker.add_crawl_root("fred", "http://site.com/links.html",
                               depth=1, same_host_only=True)
        tracker.poll()
        assert "http://elsewhere.org/x.html" not in tracker.tracked_urls()


class TestServerSideVersioning:
    def test_publish_serves_page_with_history_footer(self, world):
        clock, network, server, store = world
        versioning = ServerSideVersioning(server)
        versioning.publish("/doc.html", "<P>first.</P>")
        agent = UserAgent(network, clock)
        body = agent.get("http://site.com/doc.html").response.body
        assert "first." in body
        assert "/cgi-bin/rlog?file=/doc.html" in body

    def test_rlog_cgi(self, world):
        clock, network, server, store = world
        versioning = ServerSideVersioning(server)
        versioning.publish("/doc.html", "<P>v1.</P>")
        clock.advance(DAY)
        versioning.publish("/doc.html", "<P>v2.</P>")
        agent = UserAgent(network, clock)
        resp = agent.get("http://site.com/cgi-bin/rlog?file=/doc.html").response
        assert resp.status == 200
        assert "1.1" in resp.body and "1.2" in resp.body

    def test_co_cgi_returns_old_version(self, world):
        clock, network, server, store = world
        versioning = ServerSideVersioning(server)
        versioning.publish("/doc.html", "<P>v1.</P>")
        versioning.publish("/doc.html", "<P>v2.</P>")
        agent = UserAgent(network, clock)
        resp = agent.get(
            "http://site.com/cgi-bin/co?file=/doc.html&rev=1.1"
        ).response
        assert "v1." in resp.body

    def test_rcsdiff_uses_htmldiff_for_html(self, world):
        clock, network, server, store = world
        versioning = ServerSideVersioning(server)
        versioning.publish("/doc.html", "<P>the original sentence here.</P>")
        versioning.publish("/doc.html", "<P>the modified sentence here.</P>")
        agent = UserAgent(network, clock)
        resp = agent.get(
            "http://site.com/cgi-bin/rcsdiff?file=/doc.html&r1=1.1&r2=1.2"
        ).response
        assert "Internet Difference Engine" in resp.body

    def test_rcsdiff_plain_for_text(self, world):
        clock, network, server, store = world
        versioning = ServerSideVersioning(server)
        versioning.publish("/notes.txt", "alpha\nbeta")
        versioning.publish("/notes.txt", "alpha\ngamma")
        agent = UserAgent(network, clock)
        resp = agent.get(
            "http://site.com/cgi-bin/rcsdiff?file=/notes.txt&r1=1.1&r2=1.2"
        ).response
        assert "<PRE>" in resp.body
        assert "-beta" in resp.body

    def test_missing_file_404(self, world):
        clock, network, server, store = world
        ServerSideVersioning(server)
        agent = UserAgent(network, clock)
        resp = agent.get("http://site.com/cgi-bin/rlog?file=/nope").response
        assert resp.status == 404


class TestPostForms:
    def test_remember_and_diff_post_service(self, world):
        clock, network, server, store = world
        echo = FormEchoScript()
        server.register_cgi("/cgi-bin/search", echo)
        registry = PostFormRegistry(store)
        registry.save_form("my-search", "http://site.com/cgi-bin/search",
                           {"q": "mobile computing"})
        first = registry.remember("fred", "my-search")
        assert first.revision == "1.1"
        # Service output changes (its backing data advanced).
        echo.generation += 1
        clock.advance(DAY)
        diff = registry.diff("fred", "my-search")
        assert not diff.identical

    def test_same_output_not_resaved(self, world):
        clock, network, server, store = world
        server.register_cgi("/cgi-bin/search", FormEchoScript())
        registry = PostFormRegistry(store)
        registry.save_form("f", "http://site.com/cgi-bin/search", {"q": "x"})
        registry.remember("fred", "f")
        clock.advance(DAY)
        second = registry.remember("fred", "f")
        assert not second.changed

    def test_distinct_inputs_distinct_archives(self, world):
        clock, network, server, store = world
        server.register_cgi("/cgi-bin/search", FormEchoScript())
        registry = PostFormRegistry(store)
        registry.save_form("f1", "http://site.com/cgi-bin/search", {"q": "a"})
        registry.save_form("f2", "http://site.com/cgi-bin/search", {"q": "b"})
        registry.remember("fred", "f1")
        registry.remember("fred", "f2")
        assert store.url_count() == 2

    def test_diff_without_remember_errors(self, world):
        clock, network, server, store = world
        server.register_cgi("/cgi-bin/search", FormEchoScript())
        registry = PostFormRegistry(store)
        registry.save_form("f", "http://site.com/cgi-bin/search", {"q": "x"})
        with pytest.raises(SnapshotError):
            registry.diff("fred", "f")

    def test_unknown_form_errors(self, world):
        clock, network, server, store = world
        registry = PostFormRegistry(store)
        with pytest.raises(SnapshotError):
            registry.remember("fred", "nope")


class TestPrioritize:
    def test_pattern_priorities(self):
        config = parse_priority_config(
            "Default 0\n"
            "http://.*\\.att\\.com/.* 10\n"
            "http://www\\.yahoo\\.com/.* -5\n"
        )
        fn = config.as_function()
        assert fn("http://www.research.att.com/x") == 10
        assert fn("http://www.yahoo.com/cat") == -5
        assert fn("http://elsewhere.org/") == 0

    def test_first_match_wins(self):
        config = parse_priority_config("http://a/.* 5\nhttp://a/x.* 9\n")
        assert config.priority_for("http://a/x/page") == 5

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            parse_priority_config("pattern-without-priority\n")
        with pytest.raises(ValueError):
            parse_priority_config("http://x/ not-a-number\n")

    def test_priority_reorders_report(self):
        from repro.core.w3newer.errors import CheckOutcome, UrlState
        from repro.core.w3newer.hotlist import Hotlist
        from repro.core.w3newer.report import ReportOptions, render_report

        outcomes = [
            CheckOutcome(url="http://low.org/", state=UrlState.CHANGED,
                         modification_date=500),
            CheckOutcome(url="http://www.att.com/x", state=UrlState.CHANGED,
                         modification_date=100),
        ]
        hotlist = Hotlist.from_lines("http://low.org/ Low\nhttp://www.att.com/x Work")
        config = parse_priority_config("http://.*att\\.com/.* 10\n")
        html = render_report(
            outcomes, list(hotlist),
            ReportOptions(priority=config.as_function()),
        )
        assert html.find("Work") < html.find("Low")
