"""Tests for the hosted w3newer service (§7's adoption fix)."""

import pytest

from repro.aide.hosted import HostedTrackerService
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, CronScheduler, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

CONFIG = parse_threshold_config("Default 0\nhttp://comic\\.com/.* never\n")


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    for i in range(4):
        server.set_page(f"/p{i}.html", f"<P>page {i} v1.</P>")
    comic = network.create_server("comic.com")
    comic.set_page("/daily", "<P>today's strip</P>")
    service = HostedTrackerService(clock, UserAgent(network, clock),
                                   config=CONFIG)
    aide_host = network.create_server("aide.att.com")
    aide_host.register_cgi("/cgi-bin/w3newer", service)
    client = UserAgent(network, clock, agent_name="Mozilla/1.1N")
    return clock, network, server, service, client


class TestHotlistUpload:
    def test_upload_lines(self, world):
        clock, network, server, service, client = world
        count = service.upload_hotlist(
            "fred", "http://site.com/p0.html Page zero\nhttp://site.com/p1.html\n"
        )
        assert count == 2

    def test_upload_netscape_format(self, world):
        clock, network, server, service, client = world
        count = service.upload_hotlist(
            "fred",
            '<DL><DT><A HREF="http://site.com/p0.html">Zero</A></DL>',
            fmt="netscape",
        )
        assert count == 1

    def test_bad_format_rejected(self, world):
        clock, network, server, service, client = world
        with pytest.raises(ValueError):
            service.upload_hotlist("fred", "", fmt="carrier-pigeon")

    def test_upload_via_cgi_post(self, world):
        clock, network, server, service, client = world
        body = "action=upload&user=fred&hotlist=http://site.com/p0.html"
        resp = client.post("http://aide.att.com/cgi-bin/w3newer", body=body).response
        assert resp.status == 200
        assert "1 entries" in resp.body


class TestSharedChecking:
    def test_each_url_checked_once_per_cycle(self, world):
        clock, network, server, service, client = world
        for user in ("a", "b", "c"):
            service.upload_hotlist(user, "http://site.com/p0.html\n")
        network.reset_log()
        fetched = service.check_cycle()
        assert fetched == 1
        hits = [r for r in network.log if r.path == "/p0.html"]
        assert len(hits) == 1

    def test_never_threshold_respected(self, world):
        clock, network, server, service, client = world
        service.upload_hotlist("fred", "http://comic.com/daily\n")
        service.check_cycle()
        assert not any(r.host == "comic.com" for r in network.log)

    def test_cron_cycles(self, world):
        clock, network, server, service, client = world
        service.upload_hotlist("fred", "http://site.com/p0.html\n")
        cron = CronScheduler(clock)
        service.schedule(cron, period=DAY)
        cron.run_until(3 * DAY)
        assert service.check_cycles == 3


class TestReports:
    def prime(self, world):
        clock, network, server, service, client = world
        service.upload_hotlist(
            "fred",
            "http://site.com/p0.html Page zero\n"
            "http://site.com/p1.html Page one\n",
        )
        service.check_cycle()  # baseline
        service.acknowledge("fred", "http://site.com/p0.html")
        service.acknowledge("fred", "http://site.com/p1.html")
        clock.advance(DAY)
        server.set_page("/p0.html", "<P>page 0 v2.</P>")
        service.check_cycle()
        return service

    def test_changed_page_flagged(self, world):
        clock, network, server, service, client = world
        service = self.prime(world)
        rows = service.report_rows("fred")
        by_url = {row.url: row for row in rows}
        assert by_url["http://site.com/p0.html"].changed_since_ack
        assert not by_url["http://site.com/p1.html"].changed_since_ack

    def test_ack_clears_flag(self, world):
        clock, network, server, service, client = world
        service = self.prime(world)
        service.acknowledge("fred", "http://site.com/p0.html")
        rows = {row.url: row for row in service.report_rows("fred")}
        assert not rows["http://site.com/p0.html"].changed_since_ack

    def test_report_html_shape(self, world):
        clock, network, server, service, client = world
        service = self.prime(world)
        html = service.report_html("fred")
        assert "1 changed" in html
        assert "[Mark seen]" in html
        assert html.find("Page zero") < html.find("Page one")  # changed first

    def test_report_via_cgi(self, world):
        clock, network, server, service, client = world
        self.prime(world)
        resp = client.get(
            "http://aide.att.com/cgi-bin/w3newer?action=report&user=fred"
        ).response
        assert resp.status == 200
        assert "What's new for fred" in resp.body

    def test_ack_via_cgi(self, world):
        clock, network, server, service, client = world
        self.prime(world)
        resp = client.get(
            "http://aide.att.com/cgi-bin/w3newer?action=ack&user=fred"
            "&url=http://site.com/p0.html"
        ).response
        assert resp.status == 200
        rows = {row.url: row for row in service.report_rows("fred")}
        assert not rows["http://site.com/p0.html"].changed_since_ack

    def test_unknown_user_empty_report(self, world):
        clock, network, server, service, client = world
        assert service.report_rows("stranger") == []

    def test_missing_user_400(self, world):
        clock, network, server, service, client = world
        resp = client.get("http://aide.att.com/cgi-bin/w3newer?action=report").response
        assert resp.status == 400

    def test_error_rows_surface(self, world):
        clock, network, server, service, client = world
        service.upload_hotlist("fred", "http://site.com/missing.html\n")
        service.check_cycle()
        rows = service.report_rows("fred")
        assert rows[0].error.startswith("HTTP 404")
