"""Tests for the RCS archive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcs.archive import RcsArchive, UnknownRevision


class TestCheckin:
    def test_first_checkin_is_1_1(self):
        archive = RcsArchive("page.html")
        number, changed = archive.checkin("hello\nworld", date=100)
        assert number == "1.1"
        assert changed

    def test_sequential_numbers(self):
        archive = RcsArchive()
        archive.checkin("v1", date=1)
        number, _ = archive.checkin("v2", date=2)
        assert number == "1.2"
        assert archive.head_revision == "1.2"

    def test_identical_checkin_stores_nothing(self):
        # "the RCS ci command ensures that it is not saved if it is
        # unchanged from the previous time it was stored away."
        archive = RcsArchive()
        archive.checkin("same", date=1)
        number, changed = archive.checkin("same", date=2)
        assert number == "1.1"
        assert not changed
        assert archive.revision_count == 1

    def test_metadata_recorded(self):
        archive = RcsArchive()
        archive.checkin("text", date=42, author="douglis", log="initial")
        info = archive.revisions()[0]
        assert info.author == "douglis"
        assert info.log == "initial"
        assert info.date == 42


class TestCheckout:
    def test_head_by_default(self):
        archive = RcsArchive()
        archive.checkin("v1", date=1)
        archive.checkin("v2", date=2)
        assert archive.checkout() == "v2"

    def test_old_revision_reconstructed(self):
        archive = RcsArchive()
        archive.checkin("line1\nline2\nline3", date=1)
        archive.checkin("line1\nCHANGED\nline3", date=2)
        archive.checkin("line1\nCHANGED\nline3\nline4", date=3)
        assert archive.checkout("1.1") == "line1\nline2\nline3"
        assert archive.checkout("1.2") == "line1\nCHANGED\nline3"
        assert archive.checkout("1.3") == "line1\nCHANGED\nline3\nline4"

    def test_unknown_revision(self):
        archive = RcsArchive()
        archive.checkin("x", date=1)
        with pytest.raises(UnknownRevision):
            archive.checkout("1.9")

    def test_empty_archive(self):
        with pytest.raises(UnknownRevision):
            RcsArchive().checkout()

    @given(st.lists(st.text(alphabet="ab\n x", max_size=30), min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_every_version_reconstructs(self, versions):
        archive = RcsArchive()
        stored = []  # (number, text) for versions that created revisions
        for date, text in enumerate(versions):
            number, changed = archive.checkin(text, date=date)
            if changed:
                stored.append((number, text))
        for number, text in stored:
            assert archive.checkout(number) == text


class TestDatestamps:
    def test_revision_at(self):
        archive = RcsArchive()
        archive.checkin("v1", date=100)
        archive.checkin("v2", date=200)
        archive.checkin("v3", date=300)
        assert archive.revision_at(50) is None
        assert archive.revision_at(100).number == "1.1"
        assert archive.revision_at(250).number == "1.2"
        assert archive.revision_at(9999).number == "1.3"

    def test_checkout_at(self):
        archive = RcsArchive()
        archive.checkin("old", date=100)
        archive.checkin("new", date=200)
        assert archive.checkout_at(150) == "old"
        assert archive.checkout_at(200) == "new"
        assert archive.checkout_at(50) is None

    def test_non_monotonic_dates_tolerated(self):
        # Section 4.1: "timestamps provided for a page do not increase
        # monotonically" — revision_at picks the newest revision with
        # date <= the query, by scan order (revision order).
        archive = RcsArchive()
        archive.checkin("a", date=300)
        archive.checkin("b", date=100)  # clock went backwards
        assert archive.revision_at(100).number == "1.2"

    def test_exact_policy(self):
        archive = RcsArchive()
        archive.checkin("v1", date=100)
        archive.checkin("v2", date=200)
        assert archive.revision_at(200, policy="exact").number == "1.2"
        assert archive.revision_at(150, policy="exact") is None
        assert archive.revision_at(50, policy="exact") is None

    def test_nearest_policy(self):
        archive = RcsArchive()
        archive.checkin("v1", date=100)
        archive.checkin("v2", date=200)
        # closer to the older side
        assert archive.revision_at(140, policy="nearest").number == "1.1"
        # closer to the newer side
        assert archive.revision_at(180, policy="nearest").number == "1.2"
        # equidistant: the tie goes to the *older* revision
        assert archive.revision_at(150, policy="nearest").number == "1.1"
        # before the first revision: nearest serves the first, not None
        assert archive.revision_at(10, policy="nearest").number == "1.1"

    def test_exact_hit_on_shared_stamp_returns_newest(self):
        # Two revisions checked in within the same second: the exact
        # (and past) resolution returns the newest with that stamp.
        archive = RcsArchive()
        archive.checkin("v1", date=100)
        archive.checkin("v2", date=100)
        assert archive.revision_at(100).number == "1.2"
        assert archive.revision_at(100, policy="exact").number == "1.2"

    def test_policies_on_non_monotonic_history(self):
        # The linear-scan fallback honours the same boundary semantics.
        archive = RcsArchive()
        archive.checkin("a", date=300)
        archive.checkin("b", date=100)
        archive.checkin("c", date=200)
        # past: last revision in scan order with date <= target
        assert archive.revision_at(250).number == "1.3"
        # nearest from below first date: smallest date wins
        assert archive.revision_at(10, policy="nearest").number == "1.2"
        # exact needs a precise stamp
        assert archive.revision_at(300, policy="exact").number == "1.1"
        assert archive.revision_at(150, policy="exact") is None

    def test_unknown_policy_raises(self):
        from repro.memento.core import NegotiationError

        archive = RcsArchive()
        archive.checkin("v1", date=100)
        with pytest.raises(NegotiationError):
            archive.revision_at(100, policy="fuzzy")


class TestStorage:
    def test_delta_storage_is_small(self):
        # 100 lines, one line changed per revision: archive must grow by
        # roughly one line per checkin, not one full copy.
        base = [f"line {i} of the document body" for i in range(100)]
        archive = RcsArchive()
        full_copies = 0
        for rev in range(10):
            lines = list(base)
            lines[rev] = f"revision {rev} touched this line"
            text = "\n".join(lines)
            full_copies += len(text)
            archive.checkin(text, date=rev)
        assert archive.size_bytes() < full_copies / 3

    def test_head_stored_whole(self):
        archive = RcsArchive()
        archive.checkin("abc", date=1)
        head_info = archive.revisions()[-1]
        assert head_info.stored_bytes == len("abc") + 1

    def test_size_grows_with_change_magnitude(self):
        small, large = RcsArchive(), RcsArchive()
        base = "\n".join(f"line{i}" for i in range(50))
        small.checkin(base, date=1)
        large.checkin(base, date=1)
        small.checkin(base.replace("line3", "LINE3"), date=2)
        large.checkin("\n".join(f"rewritten{i}" for i in range(50)), date=2)
        assert small.size_bytes() < large.size_bytes()
