"""Tests for the ,v file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcs.archive import RcsArchive
from repro.rcs.rcsfile import RcsParseError, parse_rcsfile, serialize_rcsfile


def make_archive():
    archive = RcsArchive("docs/status.html")
    archive.checkin("line one\nline two\nline three", date=100,
                    author="douglis", log="initial import")
    archive.checkin("line one\nline TWO\nline three\nline four", date=200,
                    author="ball", log="edits & additions")
    archive.checkin("line one\nline TWO\nline four", date=300,
                    author="douglis", log="dropped a line")
    return archive


class TestSerialize:
    def test_header_shape(self):
        text = serialize_rcsfile(make_archive())
        assert text.startswith("head\t1.3;")
        assert "access;" in text
        assert "desc" in text

    def test_revisions_newest_first(self):
        text = serialize_rcsfile(make_archive())
        assert text.index("1.3") < text.index("1.2") < text.index("1.1")

    def test_at_sign_quoting(self):
        archive = RcsArchive("mail.html")
        archive.checkin("contact douglis@research.att.com today", date=1)
        text = serialize_rcsfile(archive)
        assert "douglis@@research.att.com" in text

    def test_empty_archive(self):
        text = serialize_rcsfile(RcsArchive("empty.html"))
        assert "head\t;" in text


class TestRoundtrip:
    def test_full_roundtrip(self):
        original = make_archive()
        restored = parse_rcsfile(serialize_rcsfile(original))
        assert restored.name == original.name
        assert restored.head_revision == original.head_revision
        assert restored.revision_count == original.revision_count
        for info in original.revisions():
            assert restored.checkout(info.number) == original.checkout(info.number)
            restored_info = restored.info(info.number)
            assert restored_info.date == info.date
            assert restored_info.author == info.author
            assert restored_info.log == info.log

    def test_roundtrip_single_revision(self):
        archive = RcsArchive("one.html")
        archive.checkin("only version", date=5, author="x", log="solo")
        restored = parse_rcsfile(serialize_rcsfile(archive))
        assert restored.checkout("1.1") == "only version"

    def test_roundtrip_empty_archive(self):
        restored = parse_rcsfile(serialize_rcsfile(RcsArchive("nothing")))
        assert restored.revision_count == 0

    def test_roundtrip_continues_to_work(self):
        # A restored archive accepts further check-ins seamlessly.
        restored = parse_rcsfile(serialize_rcsfile(make_archive()))
        number, changed = restored.checkin("brand new head", date=400)
        assert number == "1.4"
        assert changed
        assert restored.checkout("1.1") == "line one\nline two\nline three"

    def test_roundtrip_content_with_tricky_lines(self):
        # Content lines that *look* like RCS structure must survive
        # (they are @-quoted, so the parser never line-scans them).
        archive = RcsArchive("tricky.html")
        archive.checkin("desc\n1.9\nlog\ntext\n@@", date=1)
        archive.checkin("desc\n1.9\nlog\nhead 1.5;\n@@ @", date=2)
        restored = parse_rcsfile(serialize_rcsfile(archive))
        assert restored.checkout("1.1") == "desc\n1.9\nlog\ntext\n@@"
        assert restored.checkout("1.2") == "desc\n1.9\nlog\nhead 1.5;\n@@ @"

    @given(
        st.lists(
            st.text(alphabet="ab@\n x.;", min_size=0, max_size=40),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, versions):
        archive = RcsArchive("prop.html")
        stored = []
        for date, content in enumerate(versions):
            number, changed = archive.checkin(content, date=date)
            if changed:
                stored.append((number, content))
        restored = parse_rcsfile(serialize_rcsfile(archive))
        for number, content in stored:
            assert restored.checkout(number) == content


class TestParseErrors:
    def test_garbage_rejected(self):
        with pytest.raises(RcsParseError):
            parse_rcsfile("this is not an rcs file")

    def test_unterminated_string(self):
        text = serialize_rcsfile(make_archive())
        with pytest.raises(RcsParseError):
            parse_rcsfile(text[: text.rindex("@")])
