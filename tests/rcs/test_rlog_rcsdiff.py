"""Tests for rlog and rcsdiff rendering."""

from repro.rcs.archive import RcsArchive
from repro.rcs.rcsdiff import rcsdiff_text
from repro.rcs.rlog import rlog_html, rlog_text


def make_archive():
    archive = RcsArchive("docs/page.html")
    archive.checkin("one\ntwo", date=100, author="ball", log="first draft")
    archive.checkin("one\nTWO\nthree", date=200, author="douglis", log="edits")
    return archive


class TestRlogText:
    def test_contains_header_and_revisions(self):
        out = rlog_text(make_archive())
        assert "RCS file: docs/page.html,v" in out
        assert "head: 1.2" in out
        assert "revision 1.2" in out
        assert "revision 1.1" in out
        assert "first draft" in out

    def test_newest_first(self):
        out = rlog_text(make_archive())
        assert out.index("revision 1.2") < out.index("revision 1.1")

    def test_empty_archive(self):
        out = rlog_text(RcsArchive("x"))
        assert "head: (empty)" in out

    def test_empty_log_message_placeholder(self):
        archive = RcsArchive("x")
        archive.checkin("text", date=1)
        assert "*** empty log message ***" in rlog_text(archive)


class TestRlogHtml:
    def test_links_to_co_and_rcsdiff(self):
        out = rlog_html(make_archive())
        assert '/cgi-bin/co?file=docs/page.html&amp;rev=1.2' in out
        assert "/cgi-bin/rcsdiff?file=docs/page.html&amp;r1=1.1&amp;r2=1.2" in out

    def test_oldest_revision_has_no_diff_link(self):
        out = rlog_html(make_archive())
        assert "r2=1.1" not in out

    def test_empty_archive(self):
        assert "(no revisions)" in rlog_html(RcsArchive("x"))


class TestRcsdiff:
    def test_diff_between_revisions(self):
        out = rcsdiff_text(make_archive(), "1.1", "1.2")
        assert "-two" in out
        assert "+TWO" in out
        assert "+three" in out

    def test_defaults_to_head(self):
        out = rcsdiff_text(make_archive(), "1.1")
        assert "1.2" in out.splitlines()[1]

    def test_identical_revisions_empty(self):
        assert rcsdiff_text(make_archive(), "1.2", "1.2") == ""
