"""Tests for RcsArchive.drop_head — the transaction-rollback primitive.

Dropping the head must leave the archive exactly as if the dropped
check-in had never happened: the previous revision becomes a full-text
head again, every older revision still reconstructs, and serialization
is byte-identical to the never-checked-in history.
"""

import pytest

from repro.rcs.archive import RcsArchive
from repro.rcs.rcsfile import serialize_rcsfile


def build(texts, keyframe_interval=16):
    archive = RcsArchive("page.html", keyframe_interval=keyframe_interval)
    for index, text in enumerate(texts):
        archive.checkin(text, date=index + 1, author="fred")
    return archive


class TestDropHead:
    def test_drop_restores_previous_head(self):
        archive = build(["one\nalpha", "two\nalpha", "three\nbeta"])
        archive.drop_head("1.3")
        assert archive.head_revision == "1.2"
        assert archive.revision_count == 2
        assert archive.checkout() == "two\nalpha"
        assert archive.checkout("1.1") == "one\nalpha"

    def test_drop_to_empty(self):
        archive = build(["only\nrevision"])
        archive.drop_head("1.1")
        assert archive.revision_count == 0
        assert archive.head_revision is None

    def test_only_the_head_can_drop(self):
        archive = build(["v1", "v2"])
        with pytest.raises(KeyError):
            archive.drop_head("1.1")
        with pytest.raises(KeyError):
            archive.drop_head("1.9")

    def test_drop_on_empty_archive_raises(self):
        archive = RcsArchive("empty")
        with pytest.raises(KeyError):
            archive.drop_head("1.1")

    def test_checkin_after_drop_reuses_the_number(self):
        archive = build(["v1", "v2"])
        archive.drop_head("1.2")
        number, changed = archive.checkin("v2 again", date=9)
        assert number == "1.2"
        assert changed
        assert archive.checkout("1.2") == "v2 again"
        assert archive.checkout("1.1") == "v1"

    def test_serialization_matches_never_checked_in(self):
        texts = [f"line a {i}\nline b\nline c {i % 3}" for i in range(6)]
        reference = build(texts[:5])
        rolled = build(texts)  # one extra check-in...
        rolled.drop_head("1.6")  # ...then rolled back
        assert serialize_rcsfile(rolled) == serialize_rcsfile(reference)

    def test_drop_with_keyframes(self):
        # A keyframe interval small enough that heads carry derived
        # acceleration state; dropping must not corrupt reconstruction.
        texts = [f"v{i}\ncommon\ntail {i % 2}" for i in range(8)]
        archive = build(texts, keyframe_interval=2)
        archive.drop_head("1.8")
        for i in range(7):
            assert archive.checkout(f"1.{i + 1}") == texts[i]

    def test_repeated_drops_unwind_in_order(self):
        texts = ["v1", "v2", "v3", "v4"]
        archive = build(texts)
        for number in ("1.4", "1.3", "1.2"):
            archive.drop_head(number)
        assert archive.revision_count == 1
        assert archive.checkout() == "v1"

    def test_stored_bytes_recomputed(self):
        archive = build(["short", "a much longer head revision text"])
        archive.drop_head("1.2")
        info = archive.revisions()[-1]
        assert info.stored_bytes == len("short") + 1
