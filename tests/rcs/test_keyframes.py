"""Keyframe checkpoints and the revision index: differential tests.

Every fast-path layer in the archive must be output-neutral: an archive
built with any keyframe interval, serialized, parsed back, and checked
out must produce byte-identical text for every revision — against both
the in-memory original and a reference archive built with the paper's
plain reverse-delta cost model.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rcs.archive import RcsArchive, UnknownRevision
from repro.rcs.rcsfile import parse_rcsfile, serialize_rcsfile
from repro.workloads.mutate import MUTATORS, MutationMix
from repro.workloads.pagegen import PageGenerator

INTERVALS = (1, 4, 16, 0)  # 0 = keyframes off (the reference path)


def generated_history(revisions, seed=7, paragraphs=8):
    """A realistic page history touching every mutate operator."""
    rng = random.Random(seed)
    page = PageGenerator(seed=seed).page(paragraphs=paragraphs, links=4)
    texts = [page]
    operators = list(MUTATORS.values())
    while len(texts) < revisions:
        # Cycle every operator, then fill randomly from the mix.
        if len(texts) <= len(operators):
            page = operators[len(texts) - 1](page, rng)
        else:
            page = MutationMix.typical(seed=rng.randrange(1 << 30)).apply(page)
        if page != texts[-1]:
            texts.append(page)
    return texts


def build(texts, interval):
    archive = RcsArchive("page.html", keyframe_interval=interval)
    for date, text in enumerate(texts):
        number, changed = archive.checkin(text, date=date)
        assert changed
    return archive


class TestKeyframeCheckouts:
    @pytest.mark.parametrize("interval", INTERVALS)
    def test_every_revision_identical_to_reference(self, interval):
        texts = generated_history(60)
        fast = build(texts, interval)
        reference = build(texts, 0)
        for index, text in enumerate(texts):
            number = f"1.{index + 1}"
            assert fast.checkout(number) == reference.checkout(number) == text

    def test_chain_length_bounded_by_interval(self):
        texts = generated_history(100)
        archive = build(texts, 8)
        for index in range(len(texts)):
            assert archive.chain_length(f"1.{index + 1}") < 8

    def test_reference_chain_length_is_distance_from_head(self):
        texts = generated_history(30)
        archive = build(texts, 0)
        assert archive.chain_length("1.1") == len(texts) - 1
        assert archive.chain_length(f"1.{len(texts)}") == 0

    def test_keyframe_walks_counted(self):
        texts = generated_history(50)
        archive = build(texts, 4)
        archive.checkout("1.2")
        assert archive.keyframe_starts == 1
        assert archive.delta_applications <= 3

    def test_keyframes_excluded_from_size_accounting(self):
        texts = generated_history(50)
        assert build(texts, 4).size_bytes() == build(texts, 0).size_bytes()
        assert build(texts, 4).keyframe_bytes() > 0
        assert build(texts, 0).keyframe_bytes() == 0

    def test_set_keyframe_interval_rebuilds(self):
        texts = generated_history(40)
        archive = build(texts, 0)
        assert archive.keyframe_count() == 0
        archive.set_keyframe_interval(4)
        assert archive.keyframe_count() > 0
        for index, text in enumerate(texts):
            assert archive.checkout(f"1.{index + 1}") == text
        archive.set_keyframe_interval(0)
        assert archive.keyframe_count() == 0
        assert archive.checkout("1.1") == texts[0]


class TestRevisionIndex:
    def test_unknown_revision_still_raises(self):
        archive = build(generated_history(5), 2)
        with pytest.raises(UnknownRevision):
            archive.checkout("1.99")
        with pytest.raises(UnknownRevision):
            archive.info("2.1")

    def test_revision_at_bisect_matches_scan(self):
        archive = RcsArchive()
        for index, date in enumerate((100, 200, 200, 300)):
            archive.checkin(f"text {index}", date=date)
        assert archive.revision_at(50) is None
        assert archive.revision_at(100).number == "1.1"
        assert archive.revision_at(250).number == "1.3"  # last of the ties
        assert archive.revision_at(9999).number == "1.4"

    def test_non_monotonic_dates_fall_back_to_scan(self):
        archive = RcsArchive()
        archive.checkin("a", date=300)
        archive.checkin("b", date=100)  # clock went backwards
        archive.checkin("c", date=200)
        # The paper-faithful semantics: last revision (in revision
        # order) whose date <= the query.
        assert archive.revision_at(100).number == "1.2"
        assert archive.revision_at(250).number == "1.3"
        assert archive.revision_at(99) is None


class TestRoundTripAtScale:
    """Satellite: serialize→parse→checkout is byte-identical to the
    in-memory archive for every revision, across keyframe intervals
    {1, 4, 16, off} and archives up to 500 revisions."""

    @pytest.mark.parametrize("interval", INTERVALS)
    def test_roundtrip_byte_identical_200(self, interval):
        texts = generated_history(200, seed=interval + 1)
        archive = build(texts, interval)
        reloaded = parse_rcsfile(serialize_rcsfile(archive))
        assert reloaded.keyframe_interval == interval
        assert reloaded.revision_count == archive.revision_count
        for index, text in enumerate(texts):
            number = f"1.{index + 1}"
            assert reloaded.checkout(number) == archive.checkout(number)
            assert reloaded.checkout(number) == text

    def test_roundtrip_500_revisions_keyframed(self):
        texts = generated_history(500, seed=42)
        archive = build(texts, 16)
        blob = serialize_rcsfile(archive)
        reloaded = parse_rcsfile(blob)
        assert reloaded.keyframe_count() == archive.keyframe_count() > 0
        for index, text in enumerate(texts):
            assert reloaded.checkout(f"1.{index + 1}") == text
        # And the reloaded serialization is stable (fixpoint).
        assert serialize_rcsfile(reloaded) == blob

    @given(
        st.lists(st.text(alphabet="ab@\n x", max_size=40),
                 min_size=1, max_size=10),
        st.sampled_from(INTERVALS),
    )
    @settings(max_examples=60)
    def test_roundtrip_arbitrary_texts(self, versions, interval):
        archive = RcsArchive("fuzz", keyframe_interval=interval)
        stored = []
        for date, text in enumerate(versions):
            number, changed = archive.checkin(text, date=date)
            if changed:
                stored.append((number, text))
        reloaded = parse_rcsfile(serialize_rcsfile(archive))
        for number, text in stored:
            assert reloaded.checkout(number) == text
            assert archive.checkout(number) == text
