"""Tests for the per-URL Poisson change-rate estimator."""

import math

from repro.core.w3newer.estimator import (
    DEFAULT_PRIOR_RATE,
    ChangeRateEstimator,
    UrlEstimate,
)
from repro.core.w3newer.statuscache import StatusCache
from repro.simclock import DAY, HOUR, WEEK

URL = "http://site.com/page.html"


class TestObservations:
    def test_first_observation_is_baseline_only(self):
        est = ChangeRateEstimator()
        est.observe(URL, 1000, changed=True)  # flag ignored on baseline
        e = est.peek(URL)
        assert e.checks == 1
        assert e.changes == 0
        assert e.first_observed_at == 1000
        assert e.last_check_at == 1000

    def test_later_observations_accumulate(self):
        est = ChangeRateEstimator()
        est.observe(URL, 0, changed=False)
        est.observe(URL, DAY, changed=True)
        est.observe(URL, 2 * DAY, changed=False)
        e = est.peek(URL)
        assert e.checks == 3
        assert e.changes == 1
        assert e.last_change_at == DAY
        assert e.span == 2 * DAY

    def test_misses_tracked_separately(self):
        est = ChangeRateEstimator()
        est.observe_miss(URL, 50)
        e = est.peek(URL)
        assert e.misses == 1
        assert e.checks == 0  # a miss teaches nothing about the page

    def test_canonicalization_merges_url_spellings(self):
        est = ChangeRateEstimator()
        est.observe("HTTP://Site.com/page.html", 0, changed=False)
        est.observe("http://site.com:80/page.html", DAY, changed=True)
        assert len(est) == 1
        assert est.peek(URL).checks == 2


class TestRates:
    def test_unknown_url_gets_prior(self):
        est = ChangeRateEstimator()
        assert est.rate("http://nowhere.com/") == DEFAULT_PRIOR_RATE

    def test_single_point_history_gets_prior(self):
        est = ChangeRateEstimator()
        est.observe(URL, 0, changed=False)
        assert est.rate(URL) == DEFAULT_PRIOR_RATE

    def test_fast_page_outranks_slow_page(self):
        est = ChangeRateEstimator()
        for day in range(10):
            est.observe("http://fast.com/", day * DAY, changed=day > 0)
        for day in range(10):
            est.observe("http://slow.com/", day * DAY, changed=day == 5)
        assert est.rate("http://fast.com/") > est.rate("http://slow.com/")

    def test_rate_approximates_true_period(self):
        # A page checked every 12h that changed every time: the
        # bias-corrected estimator must say "faster than 1/day", which
        # a naive changes/span ratio would cap at.
        est = ChangeRateEstimator()
        for k in range(20):
            est.observe(URL, k * 12 * HOUR, changed=k > 0)
        assert est.rate(URL) > 1.5 / DAY

    def test_p_changed_monotone_in_elapsed(self):
        est = ChangeRateEstimator()
        for day in range(6):
            est.observe(URL, day * DAY, changed=True)
        p1 = est.p_changed(URL, HOUR)
        p2 = est.p_changed(URL, DAY)
        p3 = est.p_changed(URL, WEEK)
        assert 0.0 < p1 < p2 < p3 < 1.0

    def test_p_changed_boundaries(self):
        est = ChangeRateEstimator()
        assert est.p_changed(URL, None) == 1.0  # never observed: explore
        assert est.p_changed(URL, 0) == 0.0
        assert est.p_changed(URL, -5) == 0.0

    def test_next_due_crosses_confidence(self):
        est = ChangeRateEstimator()
        for day in range(6):
            est.observe(URL, day * DAY, changed=True)
        due = est.next_due(URL, last_checked=10 * DAY, confidence=0.5)
        assert due is not None
        elapsed = due - 10 * DAY
        p = est.p_changed(URL, elapsed)
        assert math.isclose(p, 0.5, abs_tol=0.05)
        assert est.next_due(URL, None) is None


class TestSeeding:
    def test_seed_from_history_counts_revisions_as_changes(self):
        est = ChangeRateEstimator()
        est.seed_from_history(URL, [0, DAY, 2 * DAY, 3 * DAY])
        e = est.peek(URL)
        assert e.checks == 4
        assert e.changes == 3
        assert e.last_change_at == 3 * DAY

    def test_seed_is_idempotent(self):
        est = ChangeRateEstimator()
        est.seed_from_history(URL, [0, DAY, 2 * DAY])
        est.seed_from_history(URL, [0, DAY, 2 * DAY])
        assert est.peek(URL).changes == 2
        # New later revisions still merge in.
        est.seed_from_history(URL, [2 * DAY, 3 * DAY])
        assert est.peek(URL).changes == 3

    def test_absorb_status_cache_fills_gaps_only(self):
        cache = StatusCache()
        record = cache.record_for(URL)
        record.date_obtained_at = 5 * DAY
        record.modification_date = 6 * DAY
        record.last_http_check = 7 * DAY
        est = ChangeRateEstimator()
        est.observe("http://other.com/", 0, changed=False)
        est.absorb_status_cache(cache)
        e = est.peek(URL)
        assert e is not None
        assert e.first_observed_at == 5 * DAY
        assert e.changes == 1  # Last-Modified inside the window counts
        # Already-tracked URLs are untouched.
        before = est.peek("http://other.com/").checks
        est.absorb_status_cache(cache)
        assert est.peek("http://other.com/").checks == before


class TestSurfaces:
    def test_explain_payload(self):
        est = ChangeRateEstimator()
        for day in range(4):
            est.observe(URL, day * DAY, changed=True)
        info = est.explain(URL, now=5 * DAY)
        assert info["tracked"] is True
        assert info["checks"] == 4
        assert info["changes"] == 3
        assert 0.0 < info["p_changed_now"] <= 1.0
        assert info["next_due_at"] is not None
        untracked = est.explain("http://nowhere.com/", now=5 * DAY)
        assert untracked["tracked"] is False
        assert untracked["p_changed_now"] == 1.0

    def test_stats_aggregates(self):
        est = ChangeRateEstimator()
        est.observe(URL, 0, changed=False)
        est.observe(URL, DAY, changed=True)
        est.observe_miss(URL, 2 * DAY)
        assert est.stats() == {
            "tracked": 1, "observations": 2, "changes": 1, "misses": 1,
        }


class TestPersistence:
    def test_round_trip(self):
        est = ChangeRateEstimator()
        for day in range(5):
            est.observe(URL, day * DAY, changed=day % 2 == 1)
        est.observe_miss(URL, 6 * DAY)
        est.observe("http://other.com/x", 9, changed=False)
        text = est.serialize()
        back = ChangeRateEstimator.deserialize(text)
        assert len(back) == len(est)
        for e in est.estimates():
            b = back.peek(e.url)
            assert (b.checks, b.changes, b.misses) == (
                e.checks, e.changes, e.misses
            )
            assert b.last_check_at == e.last_check_at
            assert b.last_change_at == e.last_change_at
        assert back.rate(URL) == est.rate(URL)

    def test_deserialize_skips_garbage_lines(self):
        text = "http://ok.com/|3|1|0|0|200|100\nnot|a|line\n\n"
        back = ChangeRateEstimator.deserialize(text)
        assert len(back) == 1
        assert back.peek("http://ok.com/").checks == 3
