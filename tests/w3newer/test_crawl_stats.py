"""Tests for the crawl observability surface.

The snapshot store's layered ``stats()`` dict (and therefore the CGI
``action=stats`` operator page) always carries a ``crawl`` block, like
``wal``/``sched``: ``{"attached": False}`` until a tracker is wired in
with ``attach_crawl_stats``, and the tracker's live crawl counters
afterwards.
"""

from repro.core.snapshot.store import SnapshotStore
from repro.core.snapshot.service import SnapshotService
from repro.core.w3newer import (
    BrowserHistory,
    ChangeRateEstimator,
    CrawlOptions,
    ReportOptions,
    SchedulePolicy,
    W3Newer,
)
from repro.simclock import DAY, SimClock
from repro.web import Network, UserAgent
from repro.workloads import (
    apply_changes,
    build_crawl_hotlist,
    build_crawl_world,
    seed_estimator,
)


def build_tracker():
    clock = SimClock()
    clock.advance(100 * DAY)
    network = Network(clock)
    world = build_crawl_world(urls=30, hosts=3, seed=5,
                              clock=clock, network=network)
    agent = UserAgent(network, clock)
    history = BrowserHistory()
    for url in world.urls:
        history.visit(url, clock.now)
    estimator = ChangeRateEstimator()
    seed_estimator(world, estimator)
    tracker = W3Newer(
        clock, agent, build_crawl_hotlist(world), history=history,
        crawl=CrawlOptions(workers=4, budget=10,
                           policy=SchedulePolicy.ADAPTIVE, seed=0),
        estimator=estimator,
        report_options=ReportOptions(render=False),
    )
    return clock, network, world, agent, tracker


class TestStoreStats:
    def test_crawl_block_present_when_unattached(self):
        clock = SimClock()
        network = Network(clock)
        store = SnapshotStore(clock, UserAgent(network, clock))
        assert store.stats()["crawl"] == {"attached": False}

    def test_attached_tracker_surfaces_crawl_counters(self):
        clock, network, world, agent, tracker = build_tracker()
        store = SnapshotStore(clock, agent)
        store.attach_crawl_stats(tracker.crawl_stats)
        clock.advance(DAY)
        apply_changes(world)
        tracker.run()
        crawl = store.stats()["crawl"]
        assert crawl["attached"] is True
        assert crawl["policy"] == "adaptive"
        assert crawl["runs"] == 1
        assert crawl["last_run"]["governor"]["fetches"] == 10
        assert crawl["estimator"]["tracked"] == 30

    def test_tracker_crawl_stats_unattached_without_crawl(self):
        clock = SimClock()
        network = Network(clock)
        server = network.create_server("site.com")
        server.set_page("/x", "<P>x</P>")
        from repro.core.w3newer import Hotlist
        tracker = W3Newer(
            clock, UserAgent(network, clock),
            Hotlist.from_lines("http://site.com/x X"),
        )
        assert tracker.crawl_stats() == {"attached": False}


class TestCgiStatsPage:
    def test_action_stats_shows_the_crawl_block(self):
        clock, network, world, agent, tracker = build_tracker()
        store = SnapshotStore(clock, agent)
        store.attach_crawl_stats(tracker.crawl_stats)
        clock.advance(DAY)
        apply_changes(world)
        tracker.run()
        service = SnapshotService(store)
        aide = network.create_server("aide.att.com")
        aide.register_cgi("/cgi-bin/snapshot", service)
        client = UserAgent(network, clock)
        page = client.get(
            "http://aide.att.com/cgi-bin/snapshot?action=stats"
        ).response
        assert page.status == 200
        assert "crawl" in page.body
        assert "adaptive" in page.body
        assert "makespan" in page.body
