"""Tests for w3newer's persistent status cache."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.w3newer.statuscache import StatusCache


class TestRecords:
    def test_record_created_on_demand(self):
        cache = StatusCache()
        record = cache.record_for("http://x.com/page")
        assert record.url == "http://x.com/page"
        assert len(cache) == 1

    def test_record_reused(self):
        cache = StatusCache()
        a = cache.record_for("http://x.com/page")
        b = cache.record_for("http://x.com/page")
        assert a is b

    def test_normalization_merges_keys(self):
        cache = StatusCache()
        a = cache.record_for("HTTP://X.COM:80/page#frag")
        b = cache.record_for("http://x.com/page")
        assert a is b

    def test_peek_never_creates(self):
        cache = StatusCache()
        assert cache.peek("http://x.com/") is None
        assert len(cache) == 0

    def test_error_counting(self):
        cache = StatusCache()
        record = cache.record_for("http://x.com/")
        record.record_error("timeout")
        record.record_error("timeout")
        assert record.error_count == 2
        assert record.last_error == "timeout"
        record.record_success()
        assert record.error_count == 0
        assert record.last_error == ""

    def test_clear_robot_verdicts(self):
        cache = StatusCache()
        record = cache.record_for("http://x.com/")
        record.robot_forbidden = True
        cache.clear_robot_verdicts()
        assert not record.robot_forbidden


class TestSerialization:
    def test_roundtrip_full_record(self):
        cache = StatusCache()
        record = cache.record_for("http://x.com/page")
        record.modification_date = 100
        record.date_obtained_at = 200
        record.last_http_check = 300
        record.checksum = "abc123"
        record.checksum_obtained_at = 400
        record.robot_forbidden = True
        record.error_count = 3
        record.moved_to = "http://y.com/new"
        again = StatusCache.deserialize(cache.serialize())
        restored = again.peek("http://x.com/page")
        assert restored.modification_date == 100
        assert restored.date_obtained_at == 200
        assert restored.last_http_check == 300
        assert restored.checksum == "abc123"
        assert restored.checksum_obtained_at == 400
        assert restored.robot_forbidden
        assert restored.error_count == 3
        assert restored.moved_to == "http://y.com/new"

    def test_empty_fields_roundtrip(self):
        cache = StatusCache()
        cache.record_for("http://x.com/")
        again = StatusCache.deserialize(cache.serialize())
        restored = again.peek("http://x.com/")
        assert restored.modification_date is None
        assert restored.checksum is None
        assert not restored.robot_forbidden

    def test_garbage_lines_skipped(self):
        again = StatusCache.deserialize("not|enough|fields\n\njunk")
        assert len(again) == 0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["http://a.com/x", "http://b.org/", "http://c.net/p?q=1"]
                ),
                st.one_of(st.none(), st.integers(0, 10**6)),
                st.booleans(),
                st.integers(0, 50),
            ),
            max_size=10,
        )
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, entries):
        cache = StatusCache()
        for url, mod, robot, errors in entries:
            record = cache.record_for(url)
            record.modification_date = mod
            record.date_obtained_at = mod
            record.robot_forbidden = robot
            record.error_count = errors
        again = StatusCache.deserialize(cache.serialize())
        assert len(again) == len(cache)
        for record in cache.records():
            restored = again.peek(record.url)
            assert restored.modification_date == record.modification_date
            assert restored.robot_forbidden == record.robot_forbidden
            assert restored.error_count == record.error_count
