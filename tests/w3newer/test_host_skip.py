"""Tests for the §3.1 skip-failing-hosts improvement."""

import pytest

from repro.core.w3newer.checker import CheckerFlags, UrlChecker
from repro.core.w3newer.errors import SystemicFailureDetector, UrlState
from repro.core.w3newer.history import BrowserHistory
from repro.core.w3newer.statuscache import StatusCache
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

CONFIG = parse_threshold_config("Default 0\n")


def build(flags=None):
    clock = SimClock()
    clock.advance(DAY)
    network = Network(clock)
    dead = network.create_server("dead.com")
    for i in range(5):
        dead.set_page(f"/p{i}.html", "body")
    alive = network.create_server("alive.com")
    alive.set_page("/ok.html", "fine")
    network.refuse_connections("dead.com")
    checker = UrlChecker(
        clock=clock,
        agent=UserAgent(network, clock),
        config=CONFIG,
        history=BrowserHistory(),
        cache=StatusCache(),
        flags=flags,
        failure_detector=SystemicFailureDetector(abort_after=100),
    )
    return network, checker


class TestSkipFailingHosts:
    def test_default_retries_every_url(self):
        network, checker = build()
        for i in range(5):
            checker.check(f"http://dead.com/p{i}.html")
        attempts = [r for r in network.log
                    if r.host == "dead.com" and r.path != "/robots.txt"]
        assert len(attempts) == 5  # one transport attempt per URL

    def test_flag_skips_after_first_failure(self):
        network, checker = build(CheckerFlags(skip_failing_hosts=True))
        outcomes = [
            checker.check(f"http://dead.com/p{i}.html") for i in range(5)
        ]
        attempts = [r for r in network.log
                    if r.host == "dead.com" and r.path != "/robots.txt"]
        assert len(attempts) == 1  # only the first URL touched the wire
        assert all(o.state is UrlState.ERROR for o in outcomes)
        assert "skipped" in outcomes[1].error

    def test_other_hosts_unaffected(self):
        network, checker = build(CheckerFlags(skip_failing_hosts=True))
        checker.check("http://dead.com/p0.html")
        outcome = checker.check("http://alive.com/ok.html")
        assert outcome.state is not UrlState.ERROR

    def test_skip_resets_per_run(self):
        network, checker = build(CheckerFlags(skip_failing_hosts=True))
        checker.check("http://dead.com/p0.html")
        checker.check("http://dead.com/p1.html")  # skipped
        # A new run (new checker, same caches) retries the host.
        network.accept_connections("dead.com")
        fresh = UrlChecker(
            clock=checker.clock,
            agent=checker.agent,
            config=CONFIG,
            history=checker.history,
            cache=checker.cache,
            flags=CheckerFlags(skip_failing_hosts=True),
            failure_detector=SystemicFailureDetector(abort_after=100),
        )
        outcome = fresh.check("http://dead.com/p1.html")
        assert outcome.state is not UrlState.ERROR
