"""Tests for the concurrent crawl pipeline.

Politeness is checked as a *property over traces*: for every seed, the
governor's placed slots must respect the per-host overlap cap and
inter-request delay, and the wire-side :class:`PolitenessLog` must
account for exactly the requests the governor placed.  Resume is
checked end to end: a run paused mid-crawl and resumed must produce a
byte-identical report and spend no duplicate fetches.
"""

from repro.core.w3newer import (
    BrowserHistory,
    ChangeRateEstimator,
    CrawlCheckpoint,
    CrawlOptions,
    HostGovernor,
    ReportOptions,
    SchedulePolicy,
    W3Newer,
)
from repro.simclock import DAY, SimClock
from repro.web import Network, PolitenessLog, UserAgent
from repro.workloads import (
    apply_changes,
    build_crawl_hotlist,
    build_crawl_world,
    seed_estimator,
)

SEEDS = range(5)


def build_tracker(
    urls=60,
    hosts=3,
    workers=6,
    seed=0,
    budget=None,
    policy=SchedulePolicy.ADAPTIVE,
    max_checks=None,
    max_per_host=2,
    host_delay=2,
    render=False,
):
    """A seeded world plus a fully wired concurrent tracker."""
    clock = SimClock()
    clock.advance(100 * DAY)
    network = Network(clock)
    world = build_crawl_world(urls=urls, hosts=hosts, seed=11,
                              clock=clock, network=network)
    politeness = PolitenessLog()
    agent = UserAgent(network, clock, politeness=politeness)
    history = BrowserHistory()
    for url in world.urls:
        history.visit(url, clock.now)
    estimator = ChangeRateEstimator()
    seed_estimator(world, estimator)
    tracker = W3Newer(
        clock, agent, build_crawl_hotlist(world), history=history,
        crawl=CrawlOptions(
            workers=workers, budget=budget, policy=policy, seed=seed,
            max_checks=max_checks, max_per_host=max_per_host,
            host_delay=host_delay,
        ),
        estimator=estimator,
        report_options=ReportOptions(render=render),
    )
    return clock, world, tracker, politeness


def advance_and_run(clock, world, tracker, days=2):
    clock.advance(days * DAY)
    apply_changes(world)
    return tracker.run()


class TestPolitenessProperty:
    """The governor invariants must hold under every interleaving."""

    def check_trace(self, trace, max_per_host, host_delay):
        by_host = {}
        by_worker = {}
        for slot in trace:
            by_host.setdefault(slot.host, []).append(slot)
            by_worker.setdefault(slot.worker, []).append(slot)
        for host, slots in by_host.items():
            starts = [s.start for s in slots]
            # Per-host starts are monotone and spaced by the delay.
            for a, b in zip(starts, starts[1:]):
                assert b - a >= host_delay, (host, a, b)
            # At most max_per_host fetches overlap at any instant.
            for probe in slots:
                overlap = sum(
                    1 for s in slots
                    if s.start <= probe.start < s.finish
                )
                assert overlap <= max_per_host, (host, probe)
        # A worker never runs two fetches at once.
        for worker, slots in by_worker.items():
            ordered = sorted(slots, key=lambda s: s.start)
            for a, b in zip(ordered, ordered[1:]):
                assert b.start >= a.finish, (worker, a, b)

    def test_invariants_hold_for_every_seed(self):
        for seed in SEEDS:
            clock, world, tracker, politeness = build_tracker(seed=seed)
            advance_and_run(clock, world, tracker)
            trace = tracker.last_crawl["trace"]
            assert trace, "expected fetches to be placed"
            self.check_trace(trace, max_per_host=2, host_delay=2)

    def test_politeness_log_matches_governor_accounting(self):
        for seed in SEEDS:
            clock, world, tracker, politeness = build_tracker(seed=seed)
            advance_and_run(clock, world, tracker)
            governor = tracker.last_crawl["governor"]
            # Everything that went over the wire was placed, and
            # nothing else.
            assert politeness.total == governor["http_requests"]
            assert len(politeness.requests_by_host) == governor["hosts"]

    def test_single_host_serializes_to_the_cap(self):
        clock, world, tracker, _ = build_tracker(
            urls=20, hosts=1, workers=8, max_per_host=1, host_delay=3,
        )
        advance_and_run(clock, world, tracker)
        trace = tracker.last_crawl["trace"]
        self.check_trace(trace, max_per_host=1, host_delay=3)
        # One-at-a-time to one host: makespan is bounded below by the
        # delay between every consecutive pair of fetch starts.
        governor = tracker.last_crawl["governor"]
        assert governor["max_inflight"] == 1
        assert governor["makespan"] >= 3 * (governor["fetches"] - 1)


class TestThroughput:
    def test_more_workers_shrink_the_makespan(self):
        spans = {}
        for workers in (1, 8):
            clock, world, tracker, _ = build_tracker(
                urls=120, hosts=12, workers=workers, host_delay=1,
            )
            advance_and_run(clock, world, tracker)
            spans[workers] = tracker.last_crawl["governor"]["makespan"]
        assert spans[8] * 4 <= spans[1]

    def test_verdicts_do_not_depend_on_workers_or_seed(self):
        outcomes = []
        for workers, seed in ((1, 0), (4, 1), (8, 2)):
            clock, world, tracker, _ = build_tracker(
                workers=workers, seed=seed,
            )
            result = advance_and_run(clock, world, tracker)
            outcomes.append(
                [(o.url, o.state, o.http_requests) for o in result.outcomes]
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        reports, traces = [], []
        for _ in range(2):
            clock, world, tracker, _ = build_tracker(seed=3, render=True)
            result = advance_and_run(clock, world, tracker)
            reports.append(result.report_html)
            traces.append(tracker.last_crawl["trace"])
        assert reports[0] == reports[1]
        assert traces[0] == traces[1]
        assert reports[0]  # rendering was actually on


class TestResume:
    def test_pause_and_resume_completes_without_duplicate_fetches(self):
        # Interrupted: pause after 15 claimed checks, then finish.
        clock, world, tracker, politeness = build_tracker(
            urls=40, hosts=4, max_checks=15, render=True,
        )
        first = advance_and_run(clock, world, tracker)
        assert "paused" in first.aborted
        assert isinstance(tracker.checkpoint, CrawlCheckpoint)
        assert tracker.checkpoint.pending
        tracker.crawl.max_checks = None
        second = tracker.run()
        assert second.aborted == ""
        assert second.resumed_from is not None

        # Uninterrupted twin over an identical world.
        clock2, world2, tracker2, politeness2 = build_tracker(
            urls=40, hosts=4, render=True,
        )
        baseline = advance_and_run(clock2, world2, tracker2)

        assert second.report_html == baseline.report_html
        # No fetch ran twice: the interrupted pair spent exactly the
        # wire requests of the uninterrupted run (robots included,
        # because the checkpoint carries the robots verdicts).
        assert politeness.total == politeness2.total
        assert politeness.requests_by_host == politeness2.requests_by_host

    def test_checkpoint_ignored_when_hotlist_changes(self):
        clock, world, tracker, _ = build_tracker(
            urls=30, hosts=3, max_checks=5,
        )
        advance_and_run(clock, world, tracker)
        assert tracker.checkpoint is not None
        tracker.hotlist.add("http://crawl0.example.com/new.html",
                            title="new page")
        tracker.crawl.max_checks = None
        result = tracker.run()
        # Fresh start: the stale checkpoint must not leak outcomes.
        assert result.resumed_from is None
        assert len(result.outcomes) == 31


class TestGovernorUnit:
    def test_snapshot_restore_round_trip(self):
        governor = HostGovernor(workers=3, max_per_host=2, host_delay=2,
                                start=50)
        for i in range(7):
            governor.place("a.com" if i % 2 else "b.com", requests=2)
        snap = governor.snapshot()
        twin = HostGovernor(workers=3, max_per_host=2, host_delay=2,
                            start=50)
        twin.restore(snap)
        slot_a = governor.place("a.com", requests=1)
        slot_b = twin.place("a.com", requests=1)
        assert (slot_a.worker, slot_a.start, slot_a.finish) == (
            slot_b.worker, slot_b.start, slot_b.finish
        )
        assert governor.stats() == twin.stats()

    def test_ties_break_deterministically(self):
        governor = HostGovernor(workers=4, start=0)
        first = governor.place("x.com", requests=1)
        assert first.worker == 0  # all free: lowest index wins
        second = governor.place("y.com", requests=1)
        assert second.worker == 1
