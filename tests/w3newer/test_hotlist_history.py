"""Tests for hotlist parsing and browser history."""

from repro.core.w3newer.history import BrowserHistory
from repro.core.w3newer.hotlist import Hotlist

NETSCAPE_SAMPLE = """<!DOCTYPE NETSCAPE-Bookmark-file-1>
<TITLE>Bookmarks for Fred</TITLE>
<H1>Bookmarks</H1>
<DL><P>
<DT><A HREF="http://www.usenix.org/" ADD_DATE="812345678">USENIX Association</A>
<DT><H3>Research</H3>
<DL><P>
<DT><A HREF="http://www.research.att.com/">AT&amp;T Research</A>
<DT><A HREF="http://snapple.cs.washington.edu:600/mobile/">Mobile computing</A>
</DL><P>
<DT><A HREF="http://www.unitedmedia.com/comics/dilbert/">Dilbert</A>
</DL><P>
"""

MOSAIC_SAMPLE = """ncsa-xmosaic-hotlist-format-1
Default
http://www.yahoo.com/ Thu Sep 28 10:00:00 1995
Yahoo Directory
http://www.usenix.org/ Fri Sep 29 11:00:00 1995
USENIX
"""


class TestNetscapeParsing:
    def test_all_entries_found(self):
        hotlist = Hotlist.from_netscape_html(NETSCAPE_SAMPLE)
        assert len(hotlist) == 4
        assert hotlist.urls()[0] == "http://www.usenix.org/"

    def test_titles_with_entities(self):
        hotlist = Hotlist.from_netscape_html(NETSCAPE_SAMPLE)
        titles = [e.title for e in hotlist]
        assert "AT&T Research" in titles

    def test_add_date_parsed(self):
        hotlist = Hotlist.from_netscape_html(NETSCAPE_SAMPLE)
        assert hotlist.entries[0].added == 812345678

    def test_folders_tracked(self):
        hotlist = Hotlist.from_netscape_html(NETSCAPE_SAMPLE)
        by_url = {e.url: e for e in hotlist}
        assert by_url["http://www.research.att.com/"].folder == "Research"
        assert by_url["http://www.usenix.org/"].folder == ""

    def test_empty_file(self):
        assert len(Hotlist.from_netscape_html("")) == 0

    def test_malformed_never_raises(self):
        source = "<DT><A>no href</A><DT><A HREF='http://x/'>ok"
        hotlist = Hotlist.from_netscape_html(source)
        assert hotlist.urls() == ["http://x/"]

    def test_roundtrip_flat_list(self):
        hotlist = Hotlist()
        hotlist.add("http://a/", "Site A", added=123)
        hotlist.add("http://b/", "Site B")
        again = Hotlist.from_netscape_html(hotlist.to_netscape_html())
        assert again.urls() == ["http://a/", "http://b/"]
        assert again.entries[0].added == 123
        assert again.entries[0].title == "Site A"


class TestMosaicParsing:
    def test_entries(self):
        hotlist = Hotlist.from_mosaic(MOSAIC_SAMPLE)
        assert hotlist.urls() == ["http://www.yahoo.com/", "http://www.usenix.org/"]
        assert hotlist.entries[0].title == "Yahoo Directory"


class TestLinesParsing:
    def test_lines_with_titles(self):
        hotlist = Hotlist.from_lines(
            "# comment\nhttp://a/ Title of A\nhttp://b/\n\n"
        )
        assert len(hotlist) == 2
        assert hotlist.entries[0].title == "Title of A"
        assert hotlist.entries[1].title == ""


class TestBrowserHistory:
    def test_visit_and_lookup(self):
        history = BrowserHistory()
        history.visit("http://x.com/page", 100)
        assert history.last_seen("http://x.com/page") == 100

    def test_unknown_is_none(self):
        assert BrowserHistory().last_seen("http://x.com/") is None

    def test_normalization(self):
        history = BrowserHistory()
        history.visit("HTTP://X.COM:80/page", 100)
        assert history.last_seen("http://x.com/page") == 100

    def test_fragment_ignored(self):
        history = BrowserHistory()
        history.visit("http://x.com/page#section", 100)
        assert history.last_seen("http://x.com/page") == 100

    def test_later_visit_wins(self):
        history = BrowserHistory()
        history.visit("http://x.com/", 100)
        history.visit("http://x.com/", 50)  # out-of-order replay
        assert history.last_seen("http://x.com/") == 100
        history.visit("http://x.com/", 200)
        assert history.last_seen("http://x.com/") == 200

    def test_forget(self):
        history = BrowserHistory()
        history.visit("http://x.com/", 100)
        history.forget("http://x.com/")
        assert history.last_seen("http://x.com/") is None

    def test_serialization_roundtrip(self):
        history = BrowserHistory()
        history.visit("http://x.com/", 100)
        history.visit("http://y.com/a b", 200)
        again = BrowserHistory.deserialize(history.serialize())
        assert again.last_seen("http://x.com/") == 100
        assert len(again) == 2
