"""Tests for poison-document quarantine in the change tracker."""

from repro.core.quarantine import QuarantineJournal
from repro.core.w3newer.checker import CheckerFlags, UrlChecker
from repro.core.w3newer.errors import UrlState, quarantine_backoff
from repro.core.w3newer.history import BrowserHistory
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.localfs import LocalFiles
from repro.core.w3newer.report import ReportOptions, render_report
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.statuscache import StatusCache, UrlRecord
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, HOUR, SimClock
from repro.web.client import UserAgent
from repro.web.guards import ContentGuard, GuardLimits
from repro.web.network import Network

CONFIG = parse_threshold_config("Default 0\n")

BOMB = "<DIV>" * 200 + "boom"
CLEAN = "<P>perfectly ordinary page</P>"


class World:
    def __init__(self):
        self.clock = SimClock()
        self.network = Network(self.clock)
        self.server = self.network.create_server("site.com")
        # No Last-Modified: forces the GET-and-checksum path, the one
        # that runs bodies through the content guard.
        self.server.set_page("/bomb", BOMB, send_last_modified=False)
        self.server.set_page("/clean", CLEAN, send_last_modified=False)
        self.agent = UserAgent(self.network, self.clock)
        self.cache = StatusCache()
        self.journal = QuarantineJournal()
        self.guard = ContentGuard(GuardLimits(max_nesting_depth=64))

    def checker(self, flags=None):
        return UrlChecker(
            clock=self.clock,
            agent=self.agent,
            config=CONFIG,
            history=BrowserHistory(),
            cache=self.cache,
            local_files=LocalFiles(),
            flags=flags,
            guard=self.guard,
            quarantine=self.journal,
        )


class TestCheckerQuarantine:
    def test_guard_trip_quarantines(self):
        world = World()
        outcome = world.checker().check("http://site.com/bomb")
        assert outcome.state is UrlState.QUARANTINED
        assert "nesting-depth" in outcome.error
        record = world.cache.record_for("http://site.com/bomb")
        assert record.quarantine_count == 1
        assert record.quarantined_at == world.clock.now

    def test_evidence_journaled(self):
        world = World()
        world.checker().check("http://site.com/bomb")
        entry = world.journal.get("http://site.com/bomb")
        assert entry is not None
        assert entry.guard == "nesting-depth"
        assert entry.body == BOMB

    def test_clean_page_unaffected(self):
        world = World()
        outcome = world.checker().check("http://site.com/clean")
        assert outcome.state is not UrlState.QUARANTINED
        assert outcome.http_requests > 0

    def test_backoff_window_skips_http(self):
        world = World()
        world.checker().check("http://site.com/bomb")
        world.clock.advance(6 * HOUR)  # inside the one-day window
        outcome = world.checker().check("http://site.com/bomb")
        assert outcome.state is UrlState.QUARANTINED
        assert outcome.http_requests == 0

    def test_force_does_not_bypass_backoff(self):
        # Forcing buys a fetch, not permission: hostile content stays
        # in backoff even for an explicit re-check request.
        world = World()
        world.checker().check("http://site.com/bomb")
        world.clock.advance(HOUR)
        outcome = world.checker().check("http://site.com/bomb", force=True)
        assert outcome.state is UrlState.QUARANTINED
        assert outcome.http_requests == 0

    def test_repeated_trips_back_off_exponentially(self):
        world = World()
        world.checker().check("http://site.com/bomb")
        world.clock.advance(DAY)  # window expired: retries, trips again
        outcome = world.checker().check("http://site.com/bomb")
        assert outcome.state is UrlState.QUARANTINED
        assert outcome.http_requests > 0
        record = world.cache.record_for("http://site.com/bomb")
        assert record.quarantine_count == 2
        # Two trips: the window is now 2 days, so after one more day
        # the URL is still left alone.
        world.clock.advance(DAY)
        outcome = world.checker().check("http://site.com/bomb")
        assert outcome.http_requests == 0

    def test_clean_fetch_clears_quarantine(self):
        world = World()
        world.checker().check("http://site.com/bomb")
        world.server.set_page("/bomb", CLEAN, send_last_modified=False)
        world.clock.advance(2 * DAY)  # past the backoff window
        outcome = world.checker().check("http://site.com/bomb")
        assert outcome.state is not UrlState.QUARANTINED
        record = world.cache.record_for("http://site.com/bomb")
        assert record.quarantine_count == 0
        assert record.quarantined_at is None

    def test_backoff_function(self):
        assert quarantine_backoff(0, DAY) == 0
        assert quarantine_backoff(1, DAY) == DAY
        assert quarantine_backoff(2, DAY) == 2 * DAY
        assert quarantine_backoff(3, DAY) == 4 * DAY
        assert quarantine_backoff(99, DAY) == 16 * DAY  # capped


class TestRecordPersistence:
    def test_quarantine_fields_round_trip(self):
        cache = StatusCache()
        record = cache.record_for("http://site.com/x")
        record.record_quarantine("nesting-depth: too deep", at=1234)
        record.record_quarantine("nesting-depth: too deep", at=5678)
        restored = StatusCache.deserialize(cache.serialize())
        copy = restored.record_for("http://site.com/x")
        assert copy.quarantine_count == 2
        assert copy.quarantined_at == 5678

    def test_old_cache_lines_still_parse(self):
        cache = StatusCache()
        record = cache.record_for("http://site.com/x")
        record.record_quarantine("boom", at=9)
        line = cache.serialize().strip().splitlines()[-1]
        # Drop the two quarantine fields: a pre-upgrade cache line.
        legacy = "|".join(line.split("|")[:10])
        restored = StatusCache.deserialize(legacy + "\n")
        assert restored.record_for("http://site.com/x").quarantine_count == 0

    def test_quarantine_does_not_bump_error_count(self):
        record = UrlRecord(url="http://site.com/x")
        record.record_quarantine("boom", at=1)
        assert record.error_count == 0


class TestReportRendering:
    def test_quarantined_row_and_header(self):
        world = World()
        hotlist = Hotlist.from_lines(
            "http://site.com/bomb The bomb\nhttp://site.com/clean Fine"
        )
        tracker = W3Newer(
            world.clock, world.agent, hotlist, config=CONFIG,
            cache=world.cache, guard=world.guard,
            quarantine=world.journal,
            report_options=ReportOptions(),
        )
        run = tracker.run()
        assert len(run.quarantined) == 1
        assert "quarantined (hostile content)" in run.report_html
        assert "1 quarantined" in run.report_html
        assert "nesting-depth" in run.report_html
        assert "in backoff" in run.report_html

    def test_quarantined_groups_with_stale(self):
        outcome_rows = render_report(
            [], [], options=ReportOptions(), now=0
        )
        assert "<UL>" in outcome_rows  # renders without outcomes too
