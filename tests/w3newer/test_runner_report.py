"""Tests for W3Newer runs and the Figure 1 report."""

from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.report import ReportOptions, render_report_text
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, HOUR, CronScheduler, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

CONFIG = parse_threshold_config(
    "Default 2d\nhttp://never\\.com/.* never\n"
)


def build_world():
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("site.com")
    for i in range(4):
        server.set_page(f"/page{i}", f"<P>content {i}</P>")
    hotlist = Hotlist.from_lines(
        "http://site.com/page0 Page zero\n"
        "http://site.com/page1 Page one\n"
        "http://site.com/page2 Page two\n"
        "http://site.com/missing Dead page\n"
        "http://never.com/comic Daily comic\n"
    )
    agent = UserAgent(network, clock)
    tracker = W3Newer(clock, agent, hotlist, config=CONFIG)
    return clock, network, server, tracker


class TestRun:
    def test_run_covers_every_entry(self):
        clock, network, server, tracker = build_world()
        clock.advance(3 * DAY)
        result = tracker.run()
        assert len(result.outcomes) == 5

    def test_figure1_report_shape(self):
        clock, network, server, tracker = build_world()
        # The user saw page0 before it changed, page1 after; never saw page2.
        tracker.mark_page_viewed("http://site.com/page0")
        clock.advance(3 * DAY)
        server.set_page("/page0", "<P>changed!</P>")
        tracker.mark_page_viewed("http://site.com/page1")
        clock.advance(3 * DAY)
        result = tracker.run()
        html = result.report_html
        # Changed page in bold with Remember/Diff/History links.
        assert "[Remember]" in html
        assert "[Diff]" in html
        assert "[History]" in html
        assert "Page zero" in html
        assert "changed" in html
        # The error row explains what broke.
        assert "404" in html
        # The never-checked comic appears, marked as such.
        assert "never checked" in html

    def test_changed_pages_sorted_first(self):
        clock, network, server, tracker = build_world()
        tracker.mark_page_viewed("http://site.com/page0")
        clock.advance(3 * DAY)
        server.set_page("/page0", "changed")
        clock.advance(3 * DAY)
        html = tracker.run().report_html
        assert html.find("Page zero") < html.find("Daily comic")
        assert html.find("Page zero") < html.find("Dead page")

    def test_remember_link_carries_url_and_user(self):
        clock, network, server, tracker = build_world()
        tracker.report_options = ReportOptions(user="fred@research")
        clock.advance(3 * DAY)
        html = tracker.run().report_html
        assert "action=remember" in html
        assert "user=fred%40research" in html

    def test_run_result_accounting(self):
        clock, network, server, tracker = build_world()
        clock.advance(3 * DAY)
        result = tracker.run()
        assert result.http_requests > 0
        assert result.skipped == 1  # the never.com comic
        assert len(result.errors) == 1

    def test_second_run_uses_cache(self):
        clock, network, server, tracker = build_world()
        clock.advance(3 * DAY)
        first = tracker.run()
        second = tracker.run()  # same instant: cache still warm
        assert second.http_requests < first.http_requests

    def test_abort_on_network_outage(self):
        clock, network, server, tracker = build_world()
        tracker.abort_after_failures = 2
        clock.advance(3 * DAY)
        network.unreachable = True
        result = tracker.run()
        assert result.aborted
        assert "aborted" in result.report_html.lower()
        # Outcomes stop at the abort point.
        assert len(result.outcomes) < 5

    def test_cron_scheduling(self):
        clock, network, server, tracker = build_world()
        cron = CronScheduler(clock)
        tracker.schedule(cron, period=DAY)
        cron.run_until(3 * DAY)
        assert len(tracker.runs) == 3

    def test_htmldiff_view_does_not_update_history(self):
        # The Section 6 integration wart: viewing via HtmlDiff leaves
        # the browser history stale, so the page keeps reporting as
        # changed until visited directly.
        clock, network, server, tracker = build_world()
        tracker.mark_page_viewed("http://site.com/page0")
        clock.advance(3 * DAY)
        server.set_page("/page0", "changed")
        clock.advance(3 * DAY)
        first = tracker.run()
        assert any(o.url == "http://site.com/page0" for o in first.changed)
        # The user views the diff (NOT the page): history unchanged...
        second = tracker.run()
        assert any(o.url == "http://site.com/page0" for o in second.changed)
        # ...until a direct visit clears it.
        tracker.mark_page_viewed("http://site.com/page0")
        third = tracker.run()
        assert not any(o.url == "http://site.com/page0" for o in third.changed)


class TestTextReport:
    def test_one_line_per_outcome(self):
        clock, network, server, tracker = build_world()
        clock.advance(3 * DAY)
        result = tracker.run()
        text = render_report_text(result.outcomes)
        assert len(text.splitlines()) == len(result.outcomes)


class TestAllDatesReport:
    def test_sorted_newest_first(self):
        from repro.core.w3newer.report import render_all_dates_report

        clock, network, server, tracker = build_world()
        tracker.mark_page_viewed("http://site.com/page0")
        clock.advance(3 * DAY)
        server.set_page("/page1", "newer content")
        clock.advance(3 * DAY)
        result = tracker.run()
        html = render_all_dates_report(result.outcomes, list(tracker.hotlist))
        # page1 (modified day 3) sorts before page0 (modified day 0).
        assert html.find("Page one") < html.find("Page zero")
        # Undated rows (errors, never-checked) trail with a marker.
        assert "(no modification date)" in html
