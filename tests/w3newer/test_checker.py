"""Tests for the w3newer decision ladder."""

import pytest

from repro.core.w3newer.checker import CheckerFlags, UrlChecker, content_checksum
from repro.core.w3newer.errors import (
    CheckSource,
    RunAborted,
    SystemicFailureDetector,
    UrlState,
)
from repro.core.w3newer.history import BrowserHistory
from repro.core.w3newer.localfs import LocalFiles
from repro.core.w3newer.statuscache import StatusCache
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, HOUR, WEEK, SimClock
from repro.web.cgi import CounterScript, StaticCgiScript
from repro.web.client import UserAgent
from repro.web.http import make_response
from repro.web.network import Network
from repro.web.proxy import ProxyCache

CONFIG = parse_threshold_config(
    "Default 2d\n"
    "file:.* 0\n"
    "http://fast\\.com/.* 0\n"
    "http://never\\.com/.* never\n"
)


class World:
    def __init__(self, with_proxy=False):
        self.clock = SimClock()
        self.network = Network(self.clock)
        self.server = self.network.create_server("site.com")
        self.server.set_page("/page", "<P>content v1</P>")
        self.proxy = ProxyCache(self.network, self.clock, ttl=HOUR) if with_proxy else None
        self.agent = UserAgent(self.network, self.clock, proxy=self.proxy)
        self.history = BrowserHistory()
        self.cache = StatusCache()
        self.files = LocalFiles()

    def checker(self, flags=None, detector=None):
        return UrlChecker(
            clock=self.clock,
            agent=self.agent,
            config=CONFIG,
            history=self.history,
            cache=self.cache,
            proxy=self.proxy,
            local_files=self.files,
            flags=flags,
            failure_detector=detector,
        )


class TestThresholdSkips:
    def test_never_threshold(self):
        world = World()
        outcome = world.checker().check("http://never.com/daily-comic")
        assert outcome.state is UrlState.NEVER_CHECK
        assert outcome.http_requests == 0

    def test_recently_visited_skipped(self):
        world = World()
        world.clock.advance(10 * DAY)
        world.history.visit("http://site.com/page", world.clock.now - HOUR)
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.NOT_CHECKED
        assert outcome.http_requests == 0

    def test_visit_older_than_threshold_checks(self):
        world = World()
        world.clock.advance(10 * DAY)
        world.history.visit("http://site.com/page", world.clock.now - 3 * DAY)
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is not UrlState.NOT_CHECKED
        assert outcome.http_requests > 0

    def test_zero_threshold_always_checks(self):
        world = World()
        world.network.create_server("fast.com").set_page("/x", "body")
        world.history.visit("http://fast.com/x", world.clock.now)
        outcome = world.checker().check("http://fast.com/x")
        assert outcome.http_requests > 0

    def test_recent_http_check_rate_limited(self):
        world = World()
        world.clock.advance(10 * DAY)
        checker = world.checker()
        first = checker.check("http://site.com/page")
        assert first.http_requests > 0
        # Within the same threshold window, and the cached verdict says
        # the user has already seen the page... but the user has NOT
        # seen it (no history), so the cached date keeps reporting it.
        world.history.visit("http://site.com/page", world.clock.now)
        world.clock.advance(DAY + HOUR)  # visit now outside?? no: 2d threshold
        second = world.checker().check("http://site.com/page")
        assert second.state is UrlState.NOT_CHECKED


class TestDateLadder:
    def test_head_reports_changed_when_never_seen(self):
        world = World()
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.NEVER_SEEN
        assert outcome.source is CheckSource.HEAD
        assert outcome.modification_date == 0

    def test_head_changed_vs_seen(self):
        world = World()
        world.clock.advance(5 * DAY)
        world.server.set_page("/page", "<P>v2</P>")  # modified at day 5
        world.clock.advance(5 * DAY)
        world.history.visit("http://site.com/page", 3 * DAY)  # saw v1
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.CHANGED
        world.history.visit("http://site.com/page", world.clock.now - 3 * DAY)
        # Seen after the modification: fresh cached info, no HTTP.
        outcome2 = world.checker().check("http://site.com/page")
        assert outcome2.state is UrlState.SEEN

    def test_status_cache_avoids_http_when_known_modified(self):
        world = World()
        world.clock.advance(10 * DAY)
        checker = world.checker()
        first = checker.check("http://site.com/page")
        assert first.http_requests > 0
        # Next run: cache already knows mod date 0 > (no visit) — and
        # the user still hasn't seen it, so no HTTP is needed.
        second = world.checker().check("http://site.com/page")
        assert second.source is CheckSource.STATUS_CACHE
        assert second.http_requests == 0
        assert second.state is UrlState.NEVER_SEEN

    def test_cached_unmodified_info_expires_after_a_week(self):
        world = World()
        world.clock.advance(10 * DAY)
        world.history.visit("http://site.com/page", world.clock.now - 3 * DAY)
        checker = world.checker()
        first = checker.check("http://site.com/page")
        assert first.state is UrlState.SEEN
        requests_before = world.server.request_count
        # 6 days later the info is still fresh (under a week): no HTTP.
        world.clock.advance(6 * DAY)
        second = world.checker().check("http://site.com/page")
        assert second.state is UrlState.SEEN
        assert world.server.request_count == requests_before
        # After the staleness horizon, HTTP is spent again.
        world.clock.advance(2 * DAY)
        world.checker().check("http://site.com/page")
        assert world.server.request_count > requests_before

    def test_proxy_cache_consulted(self):
        world = World(with_proxy=True)
        world.clock.advance(10 * DAY)
        # Prime the proxy by fetching through it (as a browser would).
        world.agent.get("http://site.com/page")
        requests_before = world.server.request_count
        outcome = world.checker().check("http://site.com/page")
        assert outcome.source is CheckSource.PROXY_CACHE
        assert world.server.request_count == requests_before  # no origin hit


class TestChecksumFallback:
    def test_cgi_page_uses_checksum(self):
        world = World()
        world.server.register_cgi("/cgi-bin/static", StaticCgiScript("<P>same</P>"))
        world.clock.advance(3 * DAY)
        checker = world.checker()
        first = checker.check("http://site.com/cgi-bin/static")
        assert first.source is CheckSource.CHECKSUM
        # Unchanged content: next check (past threshold) is not a change.
        world.clock.advance(3 * DAY)
        second = world.checker().check("http://site.com/cgi-bin/static")
        assert second.state in (UrlState.SEEN, UrlState.NEVER_SEEN)

    def test_checksum_detects_change(self):
        world = World()
        script = StaticCgiScript("<P>first</P>")
        world.server.register_cgi("/cgi-bin/page", script)
        world.history.visit("http://site.com/cgi-bin/page", 0)
        world.clock.advance(3 * DAY)
        world.checker().check("http://site.com/cgi-bin/page")
        script.body = "<P>second</P>"
        world.clock.advance(3 * DAY)
        outcome = world.checker().check("http://site.com/cgi-bin/page")
        assert outcome.state is UrlState.CHANGED
        assert outcome.source is CheckSource.CHECKSUM

    def test_noisy_counter_changes_every_time(self):
        # The junk-notification problem, reproduced.
        world = World()
        world.server.register_cgi("/cgi-bin/counter", CounterScript())
        world.history.visit("http://site.com/cgi-bin/counter", 0)
        world.clock.advance(3 * DAY)
        world.checker().check("http://site.com/cgi-bin/counter")
        world.clock.advance(3 * DAY)
        outcome = world.checker().check("http://site.com/cgi-bin/counter")
        assert outcome.state is UrlState.CHANGED  # junk!

    def test_checksum_function_stable(self):
        assert content_checksum("abc") == content_checksum("abc")
        assert content_checksum("abc") != content_checksum("abd")


class TestLocalFiles:
    def test_stat_changed(self):
        world = World()
        world.files.write("/home/fred/notes.html", "v1", mtime=0)
        world.history.visit("file:/home/fred/notes.html", HOUR)
        world.clock.advance(DAY)
        world.files.write("/home/fred/notes.html", "v2", mtime=world.clock.now)
        outcome = world.checker().check("file:/home/fred/notes.html")
        assert outcome.state is UrlState.CHANGED
        assert outcome.source is CheckSource.LOCAL_STAT
        assert outcome.http_requests == 0

    def test_stat_unchanged(self):
        world = World()
        world.files.write("/home/fred/notes.html", "v1", mtime=0)
        world.clock.advance(DAY)
        world.history.visit("file:/home/fred/notes.html", world.clock.now)
        outcome = world.checker().check("file:/home/fred/notes.html")
        assert outcome.state is UrlState.SEEN

    def test_missing_file_is_error(self):
        world = World()
        outcome = world.checker().check("file:/no/such/file")
        assert outcome.state is UrlState.ERROR


class TestRobots:
    def make_world(self):
        world = World()
        world.server.set_robots_txt("User-agent: *\nDisallow: /private/\n")
        world.server.set_page("/private/page", "secret")
        world.clock.advance(3 * DAY)
        return world

    def test_forbidden_url_not_fetched(self):
        world = self.make_world()
        outcome = world.checker().check("http://site.com/private/page")
        assert outcome.state is UrlState.ROBOT_FORBIDDEN
        # Only robots.txt was fetched, not the page.
        assert all(r.path != "/private/page" for r in world.network.log)

    def test_verdict_cached_across_runs(self):
        world = self.make_world()
        world.checker().check("http://site.com/private/page")
        requests = len(world.network.log)
        outcome = world.checker().check("http://site.com/private/page")
        assert outcome.state is UrlState.ROBOT_FORBIDDEN
        assert len(world.network.log) == requests  # nothing fetched at all

    def test_ignore_robots_flag(self):
        world = self.make_world()
        world.checker().check("http://site.com/private/page")  # caches verdict
        flags = CheckerFlags(ignore_robots=True)
        outcome = world.checker(flags=flags).check("http://site.com/private/page")
        assert outcome.state is not UrlState.ROBOT_FORBIDDEN

    def test_allowed_path_proceeds(self):
        world = self.make_world()
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state in (UrlState.NEVER_SEEN, UrlState.CHANGED)

    def test_robots_fetched_once_per_host_per_run(self):
        world = self.make_world()
        world.server.set_page("/a", "a")
        world.server.set_page("/b", "b")
        checker = world.checker()
        checker.check("http://site.com/a")
        checker.check("http://site.com/b")
        robots_hits = sum(1 for r in world.network.log if r.path == "/robots.txt")
        assert robots_hits == 1


class TestErrors:
    def test_404_is_error(self):
        world = World()
        world.clock.advance(3 * DAY)
        outcome = world.checker().check("http://site.com/missing")
        assert outcome.state is UrlState.ERROR
        assert "404" in outcome.error

    def test_error_count_accumulates(self):
        world = World()
        world.clock.advance(3 * DAY)
        world.checker().check("http://site.com/missing")
        outcome = world.checker().check("http://site.com/missing")
        assert outcome.error_count == 2

    def test_moved_url_reported(self):
        world = World()
        world.server.add_redirect("/page", "http://site.com/newhome")
        world.server.set_page("/newhome", "moved here")
        world.clock.advance(3 * DAY)
        outcome = world.checker().check("http://site.com/page")
        assert outcome.moved_to == "http://site.com/newhome"

    def test_dns_error(self):
        world = World()
        world.clock.advance(3 * DAY)
        outcome = world.checker().check("http://unresolvable.example/")
        assert outcome.state is UrlState.ERROR

    def test_errors_not_treated_as_check_by_default(self):
        # Default: "errors are likely to be transient, and checking the
        # next time w3newer is run is reasonable" — last_http_check is
        # NOT updated, so the next run retries.
        world = World()
        world.clock.advance(3 * DAY)
        world.checker().check("http://site.com/missing")
        record = world.cache.peek("http://site.com/missing")
        assert record.last_http_check is None

    def test_treat_errors_as_success_flag(self):
        world = World()
        world.clock.advance(3 * DAY)
        flags = CheckerFlags(treat_errors_as_success=True)
        world.checker(flags=flags).check("http://site.com/missing")
        record = world.cache.peek("http://site.com/missing")
        assert record.last_http_check == world.clock.now

    def _register_head_only_cgi(self, world):
        """A CGI whose HEAD succeeds (no Last-Modified, forcing the
        checksum fallback) but whose GET errors — the shape that used
        to dodge ``treat_errors_as_success`` on the checksum path."""
        def flaky(request, now):
            if request.method == "HEAD":
                return make_response(200, "")
            return make_response(500, "<P>boom</P>")
        world.server.register_cgi("/cgi-bin/flaky", flaky)
        return "http://site.com/cgi-bin/flaky"

    def test_checksum_error_not_a_check_by_default(self):
        world = World()
        url = self._register_head_only_cgi(world)
        world.clock.advance(3 * DAY)
        outcome = world.checker().check(url)
        assert outcome.state is UrlState.ERROR
        assert outcome.source is CheckSource.CHECKSUM
        assert world.cache.peek(url).last_http_check is None

    def test_checksum_error_honors_treat_errors_as_success(self):
        # Regression: the HEAD path recorded the check under -e but the
        # checksum GET path forgot to, so erroring CGI pages were
        # re-polled every run regardless of the flag.
        world = World()
        url = self._register_head_only_cgi(world)
        world.clock.advance(3 * DAY)
        flags = CheckerFlags(treat_errors_as_success=True)
        outcome = world.checker(flags=flags).check(url)
        assert outcome.state is UrlState.ERROR
        assert outcome.source is CheckSource.CHECKSUM
        assert world.cache.peek(url).last_http_check == world.clock.now
        # And the record now keeps the URL quiet until the threshold.
        world.clock.advance(DAY)
        followup = world.checker(flags=flags).check(url)
        assert followup.state is UrlState.NOT_CHECKED

    def test_systemic_failure_aborts(self):
        world = World()
        world.clock.advance(3 * DAY)
        world.network.unreachable = True
        detector = SystemicFailureDetector(abort_after=3)
        checker = world.checker(detector=detector)
        urls = [f"http://site.com/p{i}" for i in range(10)]
        with pytest.raises(RunAborted):
            for url in urls:
                checker.check(url)
        assert detector.total_failures == 3

    def test_success_resets_consecutive_count(self):
        world = World()
        for i in range(5):
            world.server.set_page(f"/p{i}", f"body {i}")
        world.clock.advance(3 * DAY)
        detector = SystemicFailureDetector(abort_after=3)
        checker = world.checker(detector=detector)
        world.network.refuse_connections("site.com")
        checker.check("http://site.com/p0")
        checker.check("http://site.com/p1")
        world.network.accept_connections("site.com")
        checker.check("http://site.com/p2")  # success resets
        world.network.refuse_connections("site.com")
        checker.check("http://site.com/p3")
        checker.check("http://site.com/p4")  # still under 3
        assert detector.consecutive_failures == 2


class TestMovedState:
    def test_unchanged_moved_page_reports_moved(self):
        world = World()
        world.server.set_page("/newhome", "<P>same content</P>")
        world.server.add_redirect("/page", "http://site.com/newhome")
        world.clock.advance(3 * DAY)
        world.history.visit("http://site.com/page", world.clock.now)
        world.clock.advance(3 * DAY)
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.MOVED
        assert outcome.moved_to == "http://site.com/newhome"

    def test_changed_and_moved_reports_changed(self):
        # A content change outranks the address change.
        world = World()
        world.history.visit("http://site.com/page", world.clock.now)
        world.clock.advance(3 * DAY)
        world.server.set_page("/newhome", "<P>brand new content</P>")
        world.server.add_redirect("/page", "http://site.com/newhome")
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.CHANGED
        assert outcome.moved_to == "http://site.com/newhome"
