"""Degraded-mode w3newer: STALE verdicts, checkpointed aborts, and the
differential guarantee (resilience off == resilience never existed)."""

import pytest

from repro.core.w3newer.errors import UrlState
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.runner import W3Newer
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import FaultPlan, Network
from repro.web.resilience import ResilientAgent, RetryPolicy

CONFIG = parse_threshold_config("Default 0\n")


def build_world(plan=None, hosts=1, resilient=False, **agent_kwargs):
    clock = SimClock()
    network = Network(clock, fault_plan=plan)
    for h in range(hosts):
        server = network.create_server(f"site{h}.com")
        server.set_page("/page.html", f"<P>content of host {h}</P>")
    agent = UserAgent(network, clock)
    if resilient:
        agent = ResilientAgent(agent, **agent_kwargs)
    return clock, network, agent


def make_tracker(clock, agent, hosts=1, **kwargs):
    hotlist = Hotlist.from_lines(
        "\n".join(f"http://site{h}.com/page.html" for h in range(hosts))
    )
    return W3Newer(clock, agent, hotlist, config=CONFIG, **kwargs)


class TestStaleFallback:
    def test_stale_verdict_from_status_cache(self):
        plan = FaultPlan()
        clock, network, agent = build_world(
            plan, resilient=True,
            policy=RetryPolicy(max_attempts=2, jitter=0))
        tracker = make_tracker(clock, agent)
        first = tracker.run()
        assert first.outcomes[0].state is UrlState.NEVER_SEEN
        # Visiting the page forces later runs to re-check over HTTP (a
        # zero threshold never trusts a cached unmodified verdict).
        tracker.mark_page_viewed("http://site0.com/page.html")
        # The host goes dark; the next run serves the cached verdict.
        plan.outage("site0.com", kind="timeout")
        clock.advance(DAY)
        second = tracker.run()
        outcome = second.outcomes[0]
        assert outcome.state is UrlState.STALE
        assert "degraded" in outcome.error
        assert not second.aborted
        assert agent.stats()["fallbacks"] >= 1
        assert "1 stale" in second.report_html
        assert "stale (last known state)" in second.report_html

    def test_no_cached_verdict_means_error_not_stale(self):
        plan = FaultPlan()
        plan.outage("site0.com", kind="timeout")
        clock, network, agent = build_world(
            plan, resilient=True,
            policy=RetryPolicy(max_attempts=2, jitter=0))
        tracker = make_tracker(clock, agent)
        result = tracker.run()
        assert result.outcomes[0].state is UrlState.ERROR

    def test_short_circuited_host_costs_no_wire_traffic(self):
        plan = FaultPlan()
        clock, network, agent = build_world(
            plan, resilient=True,
            policy=RetryPolicy(max_attempts=1, jitter=0),
            breaker_threshold=1, breaker_reset=10 * DAY)
        tracker = make_tracker(clock, agent)
        tracker.run()  # populates the status cache
        tracker.mark_page_viewed("http://site0.com/page.html")
        plan.outage("site0.com", kind="timeout")
        clock.advance(DAY)
        tracker.run()  # trips the breaker
        wire_before = len(network.log)
        clock.advance(DAY)
        third = tracker.run()
        assert third.outcomes[0].state is UrlState.STALE
        assert third.outcomes[0].http_requests == 0
        assert len(network.log) == wire_before

    def test_stale_rows_do_not_trip_the_abort_detector(self):
        plan = FaultPlan()
        clock, network, agent = build_world(
            plan, hosts=10, resilient=True,
            policy=RetryPolicy(max_attempts=1, jitter=0))
        tracker = make_tracker(clock, agent, hosts=10,
                               abort_after_failures=3)
        tracker.run()
        for h in range(10):
            tracker.mark_page_viewed(f"http://site{h}.com/page.html")
        plan.outage("*", kind="timeout")
        clock.advance(DAY)
        result = tracker.run()
        assert not result.aborted
        assert len(result.stale) == 10


class TestCheckpointResume:
    def build_aborting_world(self, outage_end):
        # Every host dark until ``outage_end``: a plain agent's failures
        # span distinct hosts, so the detector aborts mid-list.
        plan = FaultPlan()
        plan.outage("*", kind="timeout", end=outage_end)
        clock, network, agent = build_world(plan, hosts=10)
        tracker = make_tracker(clock, agent, hosts=10,
                               abort_after_failures=3)
        return clock, tracker

    def test_abort_parks_a_checkpoint(self):
        clock, tracker = self.build_aborting_world(outage_end=2 * DAY)
        result = tracker.run()
        assert result.aborted
        assert tracker.checkpoint is not None
        assert tracker.checkpoint.next_index == len(result.outcomes)
        assert tracker.checkpoint.hotlist_size == 10

    def test_resume_covers_the_rest_of_the_hotlist(self):
        clock, tracker = self.build_aborting_world(outage_end=2 * DAY)
        first = tracker.run()
        done_first = len(first.outcomes)
        clock.advance(3 * DAY)  # past the outage
        second = tracker.run()
        assert second.resumed_from == done_first
        assert not second.aborted
        assert tracker.checkpoint is None
        # The resumed run's report covers the whole hotlist: carried
        # outcomes plus the remainder checked now.
        assert len(second.outcomes) == 10
        states = {o.state for o in second.outcomes[done_first:]}
        assert states == {UrlState.NEVER_SEEN}

    def test_edited_hotlist_invalidates_the_checkpoint(self):
        clock, tracker = self.build_aborting_world(outage_end=2 * DAY)
        tracker.run()
        tracker.hotlist.add("http://site0.com/extra.html")
        clock.advance(3 * DAY)
        result = tracker.run()
        assert result.resumed_from is None
        assert len(result.outcomes) == 11

    def test_fresh_run_has_no_checkpoint(self):
        clock, network, agent = build_world()
        tracker = make_tracker(clock, agent)
        result = tracker.run()
        assert result.resumed_from is None
        assert tracker.checkpoint is None


class TestDifferentialGuarantee:
    """Zero-fault plan + default policy == the wrapper never existed."""

    def run_scenario(self, resilient):
        plan = FaultPlan()  # trivial: guaranteed inert
        clock, network, agent = build_world(plan, hosts=5,
                                            resilient=resilient)
        tracker = make_tracker(clock, agent, hosts=5)
        for _ in range(3):
            clock.advance(DAY)
            tracker.run()
        return network, tracker

    def test_reports_and_traffic_are_byte_identical(self):
        plain_net, plain = self.run_scenario(resilient=False)
        wrapped_net, wrapped = self.run_scenario(resilient=True)
        for mine, theirs in zip(plain.runs, wrapped.runs):
            assert mine.report_html == theirs.report_html
        assert plain_net.log == wrapped_net.log

    def test_wrapper_counters_stay_zero(self):
        _net, tracker = self.run_scenario(resilient=True)
        stats = tracker.agent.stats()
        assert stats["retries"] == 0
        assert stats["breaker_opens"] == 0
        assert stats["short_circuits"] == 0
        assert stats["fallbacks"] == 0


class TestSnapshotStoreComposition:
    def test_archives_identical_with_and_without_wrapper(self):
        from repro.core.snapshot.store import SnapshotStore
        from repro.rcs.rcsfile import serialize_rcsfile

        def archive_bytes(resilient):
            clock, network, agent = build_world(resilient=resilient)
            store = SnapshotStore(clock, agent)
            store.remember("alice", "http://site0.com/page.html")
            (archive,) = store.archives.values()
            return serialize_rcsfile(archive)

        assert archive_bytes(False) == archive_bytes(True)

    def test_store_stats_expose_resilience_counters(self):
        from repro.core.snapshot.store import SnapshotStore

        clock, network, agent = build_world(resilient=True)
        store = SnapshotStore(clock, agent)
        store.remember("alice", "http://site0.com/page.html")
        assert store.stats()["resilience"]["retries"] == 0

    def test_remember_retries_transient_fetch_failures(self):
        from repro.core.snapshot.store import SnapshotStore

        plan = FaultPlan()
        plan.flaky_until("site0.com", recover_at=5, probability=1.0)
        clock, network, agent = build_world(
            plan, resilient=True,
            policy=RetryPolicy(base_delay=10, jitter=0))
        store = SnapshotStore(clock, agent)
        result = store.remember("alice", "http://site0.com/page.html")
        assert result.changed
        assert store.stats()["resilience"]["retries"] == 1
