"""Tests for the Table 1 threshold configuration."""

import pytest

from repro.simclock import DAY, HOUR, NEVER
from repro.core.w3newer.thresholds import (
    TABLE1_CONFIG,
    ThresholdConfig,
    parse_threshold_config,
)


class TestTable1:
    """The configuration printed as Table 1, rule by rule."""

    @pytest.fixture
    def config(self):
        return parse_threshold_config(TABLE1_CONFIG)

    def test_default_is_two_days(self, config):
        assert config.threshold_for("http://random.site.org/page.html") == 2 * DAY

    def test_local_files_every_run(self, config):
        assert config.threshold_for("file:/home/user/notes.html") == 0

    def test_yahoo_weekly(self, config):
        # "Things on Yahoo are checked only every seven days in order to
        # reduce unnecessary load on that server."
        assert config.threshold_for("http://www.yahoo.com/Science/") == 7 * DAY

    def test_att_every_run(self, config):
        # "anything in the att.com domain is checked upon every execution"
        assert config.threshold_for("http://www.research.att.com/people/") == 0
        assert config.threshold_for("http://info.att.com/") == 0

    def test_mosaic_whats_new_12h(self, config):
        url = "http://www.ncsa.uiuc.edu/SDG/Software/Mosaic/Docs/whats-new.html"
        assert config.threshold_for(url) == 12 * HOUR

    def test_mobile_page_daily(self, config):
        assert config.threshold_for(
            "http://snapple.cs.washington.edu:600/mobile/"
        ) == DAY

    def test_dilbert_never(self, config):
        # "Dilbert is never checked because it will always be different."
        assert config.threshold_for(
            "http://www.unitedmedia.com/comics/dilbert/"
        ) == NEVER

    def test_default_config_classmethod(self):
        config = ThresholdConfig.default_config()
        assert config.threshold_for("http://anything.example/") == 2 * DAY


class TestParsing:
    def test_first_match_wins(self):
        config = parse_threshold_config(
            "http://a\\.com/special.* 0\nhttp://a\\.com/.* 7d\n"
        )
        assert config.threshold_for("http://a.com/special/page") == 0
        assert config.threshold_for("http://a.com/other") == 7 * DAY

    def test_order_sensitivity(self):
        # Swapping the rules shadows the specific one — the documented
        # footgun of first-match-wins.
        config = parse_threshold_config(
            "http://a\\.com/.* 7d\nhttp://a\\.com/special.* 0\n"
        )
        assert config.threshold_for("http://a.com/special/page") == 7 * DAY

    def test_comments_and_blanks_ignored(self):
        config = parse_threshold_config("# comment\n\nhttp://x\\.com/.* 1d\n")
        assert len(config.rules) == 1

    def test_default_keyword(self):
        config = parse_threshold_config("Default 12h\n")
        assert config.threshold_for("http://anything/") == 12 * HOUR

    def test_escaped_dots_match_literally(self):
        config = parse_threshold_config(r"http://www\.yahoo\.com/.* 7d")
        # The unescaped-dot URL "wwwXyahoo" must not match... but the
        # rule has escaped dots so it matches only the literal.
        assert config.threshold_for("http://wwwxyahoo.com/") == 2 * DAY

    def test_bad_regex_rejected(self):
        with pytest.raises(ValueError):
            parse_threshold_config("http://[oops 1d\n")

    def test_bad_line_shape_rejected(self):
        with pytest.raises(ValueError):
            parse_threshold_config("just-one-field\n")

    def test_rule_for_returns_matching_rule(self):
        config = parse_threshold_config("http://a\\.com/.* 1d\n")
        rule = config.rule_for("http://a.com/x")
        assert rule is not None
        assert rule.threshold == DAY
        assert config.rule_for("http://b.com/") is None

    def test_match_is_anchored_at_start(self):
        config = parse_threshold_config("http://a\\.com/.* 0\n")
        # A URL merely *containing* the pattern elsewhere must not match.
        assert config.threshold_for("http://evil.com/?u=http://a.com/") == 2 * DAY


def perl_reference_threshold(text, url):
    """What the paper's perl script would decide for ``url``.

    Reference implementation of the semantics pinned by the Table 1
    comment: the file is an ordered pattern list, each ``Default``
    line is literally a ``.*`` rule appended after all explicit
    patterns (in encounter order, so the first ``Default`` shadows any
    later one), and the first matching pattern wins.  Kept naive on
    purpose — it must be obviously correct, not fast.
    """
    import re as _re

    from repro.simclock import parse_duration

    explicit, defaults = [], []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        pattern, spec = line.split()
        threshold = parse_duration(spec)
        if pattern.lower() == "default":
            defaults.append((".*", threshold))
        else:
            explicit.append((pattern, threshold))
    for pattern, threshold in explicit + defaults:
        if _re.match(pattern, url):
            return threshold
    return parse_duration("2d")


class TestPerlDifferential:
    """parse_threshold_config vs the reference perl evaluator."""

    CONFIGS = [
        TABLE1_CONFIG,
        # Default first (Table 1's own layout).
        "Default 3d\nhttp://a\\.com/.* 0\nhttp://b\\.com/.* never\n",
        # Default in the middle: explicit rules after it still win.
        "http://a\\.com/.* 12h\nDefault 1d\nhttp://b\\.com/.* 7d\n",
        # Default last.
        "http://a\\.com/special.* never\nhttp://a\\.com/.* 2d\nDefault 4d\n",
        # Two Defaults: the first one must win.
        "Default 12h\nhttp://a\\.com/.* 0\nDefault 7d\n",
        # No Default at all: the built-in 2d fallback.
        "http://a\\.com/.* 1d\n",
        # Overlapping patterns, specific first and specific last.
        "http://a\\.com/x/.* 0\nhttp://a\\.com/.* 7d\n",
        "http://a\\.com/.* 7d\nhttp://a\\.com/x/.* 0\n",
    ]

    URLS = [
        "http://a.com/x/deep/page.html",
        "http://a.com/special/today",
        "http://a.com/other",
        "http://b.com/index.html",
        "http://c.org/unmatched",
        "file:/home/user/notes.html",
        "http://www.yahoo.com/Science/",
        "http://www.unitedmedia.com/comics/dilbert/",
        "http://info.att.com/",
    ]

    def test_parser_matches_perl_reference(self):
        for config_text in self.CONFIGS:
            config = parse_threshold_config(config_text)
            for url in self.URLS:
                expected = perl_reference_threshold(config_text, url)
                actual = config.threshold_for(url)
                assert actual == expected, (config_text, url)

    def test_first_default_wins(self):
        config = parse_threshold_config("Default 12h\nDefault 7d\n")
        assert config.default == 12 * HOUR


class TestDefaultEquivalence:
    def test_default_equals_trailing_catchall(self):
        # The Table 1 comment: "Default is equivalent to ending the
        # file with '.*'".
        with_default = parse_threshold_config(
            "Default 3d\nhttp://a\\.com/.* 0\n"
        )
        with_catchall = parse_threshold_config(
            "http://a\\.com/.* 0\n.* 3d\n"
        )
        for url in (
            "http://a.com/x", "http://b.org/", "file:/etc/motd",
            "http://a.com.evil/", "gopher://old.school/",
        ):
            assert (with_default.threshold_for(url)
                    == with_catchall.threshold_for(url)), url
