"""Checker behaviour when servers misreport Last-Modified.

1995 servers lied in both directions: files got touched without
changing (re-uploads, permission fixes — spurious new stamps) and got
edited without a new stamp (clock problems, caches).  Date-based
checking inherits those errors faithfully; the checksum path does not.
These tests pin down exactly which errors w3newer makes, and why the
paper's checksum fallback matters.
"""

import pytest

from repro.core.w3newer.checker import UrlChecker
from repro.core.w3newer.errors import CheckSource, SystemicFailureDetector, UrlState
from repro.core.w3newer.history import BrowserHistory
from repro.core.w3newer.statuscache import StatusCache
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

CONFIG = parse_threshold_config("Default 0\n")


class World:
    def __init__(self):
        self.clock = SimClock()
        self.network = Network(self.clock)
        self.server = self.network.create_server("site.com")
        self.history = BrowserHistory()
        self.cache = StatusCache()

    def checker(self):
        return UrlChecker(
            clock=self.clock,
            agent=UserAgent(self.network, self.clock),
            config=CONFIG,
            history=self.history,
            cache=self.cache,
            failure_detector=SystemicFailureDetector(abort_after=100),
        )


class TestTouchWithoutChange:
    def test_date_checking_false_positive(self):
        # The server re-stamps identical content; a date-based checker
        # must (wrongly but faithfully) report a change.
        world = World()
        world.server.set_page("/page", "<P>same content.</P>")
        world.history.visit("http://site.com/page", world.clock.now)
        world.clock.advance(DAY)
        world.server.set_page("/page", "<P>same content.</P>")  # touch!
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.CHANGED  # the junk-mail case
        assert outcome.source is CheckSource.HEAD

    def test_checksum_page_immune(self):
        # The same touch on a page WITHOUT Last-Modified goes through
        # the checksum path, which sees identical bytes.
        world = World()
        world.server.set_page("/page", "<P>same content.</P>",
                              send_last_modified=False)
        world.history.visit("http://site.com/page", world.clock.now)
        world.checker().check("http://site.com/page")  # checksum baseline
        world.clock.advance(DAY)
        world.server.set_page("/page", "<P>same content.</P>",
                              send_last_modified=False)
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.SEEN
        assert outcome.source is CheckSource.CHECKSUM


class TestChangeWithoutTouch:
    def test_date_checking_false_negative(self):
        # Content changed, stamp frozen: HEAD-based checking misses it.
        world = World()
        world.server.set_page("/page", "<P>version one.</P>")
        world.history.visit("http://site.com/page", world.clock.now)
        world.clock.advance(DAY)
        world.server.set_page("/page", "<P>version two.</P>", touch=False)
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.SEEN  # wrong, but faithful

    def test_checksum_page_catches_it(self):
        world = World()
        world.server.set_page("/page", "<P>version one.</P>",
                              send_last_modified=False)
        world.history.visit("http://site.com/page", world.clock.now)
        world.checker().check("http://site.com/page")
        world.clock.advance(DAY)
        world.server.set_page("/page", "<P>version two.</P>",
                              send_last_modified=False, touch=False)
        outcome = world.checker().check("http://site.com/page")
        assert outcome.state is UrlState.CHANGED
        assert outcome.source is CheckSource.CHECKSUM
