"""Tests for budgeted crawl scheduling (static and adaptive policies)."""

import pytest

from repro.core.w3newer.errors import UrlState
from repro.core.w3newer.estimator import ChangeRateEstimator
from repro.core.w3newer.history import BrowserHistory
from repro.core.w3newer.hotlist import Hotlist
from repro.core.w3newer.scheduler import SchedulePolicy, build_schedule
from repro.core.w3newer.statuscache import StatusCache
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, HOUR

CONFIG = parse_threshold_config(
    "http://never\\.com/.* never\nDefault 2d\n"
)
NOW = 100 * DAY


def entries_for(*urls):
    hotlist = Hotlist()
    for url in urls:
        hotlist.add(url, title=url)
    return list(hotlist)


def schedule(urls, policy=SchedulePolicy.STATIC, **kwargs):
    kwargs.setdefault("history", BrowserHistory())
    kwargs.setdefault("cache", StatusCache())
    if policy is SchedulePolicy.ADAPTIVE:
        kwargs.setdefault("estimator", ChangeRateEstimator())
    return build_schedule(
        entries_for(*urls), now=NOW, config=CONFIG, policy=policy, **kwargs
    )


class TestScreening:
    def test_never_threshold_wins_unconditionally(self):
        sched = schedule(["http://never.com/comic", "http://a.com/x"])
        assert [c.url for c in sched.checks] == ["http://a.com/x"]
        synthesized = {o.url: o.state for _, o in sched.synthesized}
        assert synthesized["http://never.com/comic"] is UrlState.NEVER_CHECK
        assert sched.counters["never"] == 1

    def test_duplicates_coalesce_onto_first_owner(self):
        sched = schedule([
            "http://a.com/x", "HTTP://A.com:80/x", "http://b.com/y",
        ])
        assert len(sched.checks) == 2
        owner = sched.checks[0]
        assert owner.url == "http://a.com/x"
        assert owner.coalesced == (1,)
        assert sched.counters["coalesced"] == 1

    def test_static_recently_visited_not_due(self):
        history = BrowserHistory()
        history.visit("http://a.com/x", NOW - HOUR)
        sched = schedule(["http://a.com/x"], history=history)
        assert sched.checks == []
        ((_, outcome),) = sched.synthesized
        assert outcome.state is UrlState.NOT_CHECKED
        assert sched.counters["not_due"] == 1

    def test_adaptive_ignores_visit_rate_limit(self):
        # The adaptive policy has no "not due" notion: a recently
        # visited page simply gets a low probability and competes.
        history = BrowserHistory()
        history.visit("http://a.com/x", NOW - HOUR)
        sched = schedule(["http://a.com/x"], policy=SchedulePolicy.ADAPTIVE,
                         history=history)
        assert len(sched.checks) == 1
        assert sched.checks[0].force is True
        assert 0.0 <= sched.checks[0].priority < 0.05

    def test_cached_changed_verdict_is_free(self):
        cache = StatusCache()
        record = cache.record_for("http://a.com/x")
        record.modification_date = NOW - DAY
        record.date_obtained_at = NOW - DAY
        history = BrowserHistory()
        history.visit("http://a.com/x", NOW - 3 * DAY)
        sched = schedule(["http://a.com/x"], cache=cache, history=history,
                         budget=0)
        # Free checks run even with a zero fetch budget.
        assert len(sched.checks) == 1
        assert sched.checks[0].expects_http is False
        assert sched.counters["free"] == 1

    def test_adaptive_requires_estimator(self):
        with pytest.raises(ValueError):
            build_schedule(
                entries_for("http://a.com/x"), now=NOW, config=CONFIG,
                history=BrowserHistory(), cache=StatusCache(),
                policy=SchedulePolicy.ADAPTIVE,
            )


class TestBudget:
    URLS = [f"http://h{i}.com/p" for i in range(6)]

    def test_static_budget_truncates_in_hotlist_order(self):
        sched = schedule(self.URLS, budget=2)
        assert [c.url for c in sched.checks] == self.URLS[:2]
        deferred = [o for _, o in sched.synthesized
                    if o.state is UrlState.DEFERRED]
        assert len(deferred) == 4
        assert sched.counters["deferred"] == 4

    def test_adaptive_budget_picks_highest_probability(self):
        est = ChangeRateEstimator()
        history = BrowserHistory()
        # h0 is a known fast page, h1 a known slow one; both last
        # verified 2 days ago.  h2..h5 have never been observed by
        # anything -> must-explore, p=1.0, they outrank both.
        for url in self.URLS[:2]:
            history.visit(url, NOW - 2 * DAY)
        for day in range(10):
            est.observe(self.URLS[0], NOW - 20 * DAY + day * DAY, changed=True)
            est.observe(self.URLS[1], NOW - 20 * DAY + day * DAY,
                        changed=day == 5)
        sched = schedule(self.URLS, policy=SchedulePolicy.ADAPTIVE,
                         estimator=est, history=history, budget=5)
        chosen = [c.url for c in sched.checks]
        deferred = [o.url for _, o in sched.synthesized
                    if o.state is UrlState.DEFERRED]
        assert deferred == [self.URLS[1]]  # the slow page loses
        assert self.URLS[0] in chosen
        explore = [c for c in sched.checks if c.url in self.URLS[2:]]
        assert all(c.priority == 1.0 for c in explore)

    def test_checks_emitted_in_hotlist_order(self):
        est = ChangeRateEstimator()
        sched = schedule(self.URLS, policy=SchedulePolicy.ADAPTIVE,
                         estimator=est, budget=4)
        indexes = [c.index for c in sched.checks]
        assert indexes == sorted(indexes)

    def test_deferred_owner_fans_out_to_duplicates(self):
        urls = ["http://a.com/x", "http://b.com/y", "http://a.com/x"]
        sched = schedule(urls, budget=1)
        assert [c.url for c in sched.checks] == ["http://a.com/x"]
        deferred = sorted(
            index for index, o in sched.synthesized
            if o.state is UrlState.DEFERRED
        )
        assert deferred == [1]
        # The duplicate rides with its owner (selected), not deferred.
        assert sched.checks[0].coalesced == (2,)

    def test_duplicate_of_deferred_owner_is_deferred_too(self):
        urls = ["http://a.com/x", "http://b.com/y", "http://b.com/y"]
        sched = schedule(urls, budget=1)
        deferred = sorted(
            index for index, o in sched.synthesized
            if o.state is UrlState.DEFERRED
        )
        assert deferred == [1, 2]


class TestDecisions:
    def test_decisions_recorded_by_default(self):
        sched = schedule(["http://a.com/x", "http://never.com/c"])
        assert sched.decisions["http://a.com/x"].action == "fetch"
        assert sched.decisions["http://never.com/c"].action == "never"

    def test_recording_can_be_disabled(self):
        sched = schedule(["http://a.com/x"], record_decisions=False)
        assert sched.decisions == {}

    def test_policy_parse(self):
        assert SchedulePolicy.parse(" Adaptive ") is SchedulePolicy.ADAPTIVE
        assert SchedulePolicy.parse("static") is SchedulePolicy.STATIC
        with pytest.raises(ValueError):
            SchedulePolicy.parse("greedy")
