"""The metrics registry: instruments, collectors, exporters."""

import json

import pytest

from repro.obs import (
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    MetricsRegistry,
    to_json,
    to_prometheus,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("w3newer.checks")
        c.inc()
        c.inc(4)
        assert registry.snapshot()["w3newer.checks"] == 5

    def test_gauge_sets(self):
        registry = MetricsRegistry()
        g = registry.gauge("snapshot.archives")
        g.set(7)
        assert registry.snapshot()["snapshot.archives"] == 7

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        h = registry.histogram("wait", buckets=(1, 10, 100))
        for value in (0, 5, 50, 500):
            h.observe(value)
        snap = registry.snapshot()["wait"]
        assert snap["kind"] == "histogram"
        assert snap["count"] == 4
        assert snap["sum"] == 555
        # Cumulative counts: <=1 -> 1, <=10 -> 2, <=100 -> 3, +Inf -> 4.
        assert [pair[1] for pair in snap["buckets"]] == [1, 2, 3, 4]

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.gauge("a.b")

    def test_disabled_registry_hands_out_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NOOP_COUNTER
        assert registry.gauge("y") is NOOP_GAUGE
        assert registry.histogram("z") is NOOP_HISTOGRAM
        NOOP_COUNTER.inc(100)
        NOOP_GAUGE.set(5)
        NOOP_HISTOGRAM.observe(3)
        assert registry.snapshot() == {}


class TestCollectors:
    def test_collector_dict_is_flattened(self):
        registry = MetricsRegistry()
        registry.register_collector(
            "store", lambda: {"cache": {"hits": 3, "misses": 1}, "total": 4}
        )
        snap = registry.snapshot()
        assert snap["store.cache.hits"] == 3
        assert snap["store.cache.misses"] == 1
        assert snap["store.total"] == 4

    def test_collector_polled_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.register_collector("live", lambda: {"n": state["n"]})
        assert registry.snapshot()["live.n"] == 0
        state["n"] = 9
        assert registry.snapshot()["live.n"] == 9

    def test_collector_wins_on_name_collision(self):
        registry = MetricsRegistry()
        registry.counter("a.n").inc(1)
        registry.register_collector("a", lambda: {"n": 99})
        assert registry.snapshot()["a.n"] == 99

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        assert list(registry.snapshot()) == sorted(registry.snapshot())


class TestExporters:
    def test_prometheus_sanitizes_names(self):
        text = to_prometheus({"snapshot.wal.commits": 3})
        assert "snapshot_wal_commits 3" in text

    def test_prometheus_expands_histograms(self):
        registry = MetricsRegistry()
        h = registry.histogram("wait", buckets=(1, 10))
        h.observe(5)
        text = to_prometheus(registry.snapshot())
        assert 'wait_bucket{le="1"} 0' in text
        assert 'wait_bucket{le="10"} 1' in text
        assert 'wait_bucket{le="+Inf"} 1' in text
        assert "wait_sum 5" in text
        assert "wait_count 1" in text

    def test_prometheus_skips_non_numerics(self):
        text = to_prometheus({"a.note": "hello", "a.n": 1})
        assert "hello" not in text
        assert "a_n 1" in text

    def test_json_round_trips(self):
        snap = {"a.n": 1, "a.note": "hello", "a.rate": 0.5}
        assert json.loads(to_json(snap)) == snap
