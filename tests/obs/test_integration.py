"""Differential and surface tests for the observability layer.

The contract: telemetry is *pure observation*.  A deployment run with
a full Observability attached must produce byte-identical reports,
diffs, and archives to the same deployment run with the no-op default
— and the telemetry itself must be deterministic (same seed, same
scenario, same bytes).
"""

import json

from repro.aide.engine import Aide
from repro.core.w3newer.hotlist import Hotlist
from repro.obs import NOOP, Observability
from repro.rcs.rcsfile import serialize_rcsfile
from repro.simclock import DAY, SimClock

URL = "http://www.example.com/news.html"
SERVICE = "http://aide.research.att.com/cgi-bin/snapshot"


def _page(version: int) -> str:
    return (
        "<HTML><HEAD><TITLE>News</TITLE></HEAD><BODY>"
        f"<H1>News</H1><P>Bulletin number {version} is out today.</P>"
        "<P>Contact the secretary with questions.</P></BODY></HTML>"
    )


def run_deployment(obs):
    """One fixed scenario: remember, change, w3newer run, diff."""
    clock = SimClock()
    aide = Aide(clock=clock, obs=obs)
    server = aide.network.create_server("www.example.com")
    server.set_page("/news.html", _page(1))
    user = aide.add_user(
        "you@example.com", Hotlist.from_lines(f"{URL} Example news")
    )
    user.visit(URL, clock)
    aide.remember("you@example.com", URL)
    clock.advance(3 * DAY)
    server.set_page("/news.html", _page(2))
    clock.advance(3 * DAY)
    run = aide.run_w3newer("you@example.com")
    diff = aide.diff("you@example.com", URL)
    history = aide.history_page("you@example.com", URL)
    return aide, run, diff, history


class TestByteIdentity:
    def test_outputs_identical_with_and_without_obs(self):
        aide_on, run_on, diff_on, hist_on = run_deployment(
            Observability(seed=3)
        )
        aide_off, run_off, diff_off, hist_off = run_deployment(NOOP)
        assert run_on.report_html == run_off.report_html
        assert diff_on.body == diff_off.body
        assert hist_on.body == hist_off.body
        archives_on = {
            key: serialize_rcsfile(a)
            for key, a in aide_on.store.archives.items()
        }
        archives_off = {
            key: serialize_rcsfile(a)
            for key, a in aide_off.store.archives.items()
        }
        assert archives_on == archives_off

    def test_telemetry_deterministic_across_runs(self):
        first = run_deployment(Observability(seed=9))[0]
        second = run_deployment(Observability(seed=9))[0]
        assert (first.obs.journal.to_jsonl()
                == second.obs.journal.to_jsonl())
        assert first.obs.journal.to_jsonl() != ""

    def test_run_summary_block_is_opt_in(self):
        obs = Observability(seed=4)
        aide, run, _diff, _hist = run_deployment(obs)
        assert "Run summary" not in run.report_html
        user = aide.users["you@example.com"]
        user.tracker.report_options.run_summary = True
        second = aide.run_w3newer("you@example.com")
        assert "Run summary" in second.report_html
        assert "http_requests" in second.report_html


class TestFiveLayerExposure:
    def test_snapshot_names_every_layer(self):
        aide, _run, _diff, _hist = run_deployment(Observability(seed=5))
        snap = aide.obs.snapshot()
        prefixes = {name.split(".")[0] for name in snap}
        assert "w3newer" in prefixes          # checker/runner layer
        assert "htmldiff" in prefixes         # diff engine layer
        assert "snapshot" in prefixes         # store/WAL/locking layer
        # RCS archives surface through the store collector.
        assert any(name.startswith("snapshot.store.archives.")
                   for name in snap)
        # The locking layer exports both the legacy counters and the
        # wait histogram.
        assert "snapshot.locking.wait_seconds" in snap
        assert "snapshot.store.locks.acquisitions" in snap

    def test_resilience_layer_registers_when_used(self):
        from repro.obs import Observability as Obs
        from repro.simclock import SimClock as Clock
        from repro.web.client import UserAgent
        from repro.web.network import Network
        from repro.web.resilience import ResilientAgent

        clock = Clock()
        network = Network(clock)
        network.create_server("slow.com").set_page("/x", "<P>hi.</P>")
        obs = Obs(clock=clock, seed=1)
        agent = ResilientAgent(UserAgent(network, clock), obs=obs)
        agent.get("http://slow.com/x")
        snap = obs.snapshot()
        assert any(name.startswith("web.resilience.") for name in snap)


class TestCgiSurfaces:
    def test_metrics_action_prometheus_text(self):
        aide, _run, _diff, _hist = run_deployment(Observability(seed=6))
        browser = aide.users["you@example.com"].browser
        response = browser.get(f"{SERVICE}?action=metrics").response
        assert response.status == 200
        assert response.headers.get("Content-Type") == "text/plain"
        assert "w3newer_checks 1" in response.body
        assert "snapshot_remember_requests" in response.body

    def test_metrics_action_json(self):
        aide, _run, _diff, _hist = run_deployment(Observability(seed=6))
        browser = aide.users["you@example.com"].browser
        response = browser.get(
            f"{SERVICE}?action=metrics&format=json"
        ).response
        assert response.status == 200
        assert response.headers.get("Content-Type") == "application/json"
        snap = json.loads(response.body)
        assert snap["w3newer.checks"] == 1

    def test_metrics_action_unknown_format(self):
        aide, _run, _diff, _hist = run_deployment(Observability(seed=6))
        browser = aide.users["you@example.com"].browser
        response = browser.get(f"{SERVICE}?action=metrics&format=xml").response
        assert response.status == 400

    def test_metrics_action_works_without_obs(self):
        # A NOOP deployment still answers the scrape — empty registry.
        aide, _run, _diff, _hist = run_deployment(NOOP)
        browser = aide.users["you@example.com"].browser
        response = browser.get(f"{SERVICE}?action=metrics").response
        assert response.status == 200

    def test_stats_action_reports_wal_locking_sched(self):
        aide, _run, _diff, _hist = run_deployment(NOOP)
        browser = aide.users["you@example.com"].browser
        response = browser.get(f"{SERVICE}?action=stats").response
        assert response.status == 200
        for key in ("wal", "locking", "sched", "attached"):
            assert key in response.body


class TestStoreStats:
    def test_wal_and_sched_always_present(self):
        aide, _run, _diff, _hist = run_deployment(NOOP)
        stats = aide.store.stats()
        assert stats["wal"] == {
            "attached": False, "begun": 0, "committed": 0, "aborted": 0,
        }
        assert stats["sched"] == {"attached": False}
        assert stats["locking"] == stats["locks"]

    def test_wal_stats_reflect_transactions(self, tmp_path):
        from repro.core.snapshot.store import SnapshotStore
        from repro.core.snapshot.wal import WriteAheadLog
        from repro.web.client import UserAgent
        from repro.web.network import Network

        clock = SimClock()
        network = Network(clock)
        network.create_server("a.com").set_page("/p", "<P>hello there.</P>")
        obs = Observability(clock=clock, seed=2)
        store = SnapshotStore(clock, UserAgent(network, clock), obs=obs)
        store.attach_wal(WriteAheadLog(store, str(tmp_path)))
        store.remember("alice", "http://a.com/p")
        stats = store.stats()
        assert stats["wal"]["attached"] is True
        assert stats["wal"]["committed"] == 1
        assert obs.snapshot()["snapshot.wal.commits"] == 1
        kinds = {r["kind"] for r in obs.journal.records}
        assert "snapshot.txn.begin" in kinds
        assert "snapshot.txn.commit" in kinds
