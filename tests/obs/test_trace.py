"""The tracer: deterministic ids, nesting, sim-clock timestamps."""

import pytest

from repro.obs import NOOP_SPAN, EventJournal, Observability, Tracer
from repro.simclock import SimClock


def _run_scenario(seed: int) -> str:
    clock = SimClock()
    obs = Observability(clock=clock, seed=seed)
    with obs.span("outer", urls=2):
        clock.advance(10)
        with obs.span("inner", url="http://a/"):
            obs.event("fetch", bytes=100)
        clock.advance(5)
        with obs.span("inner", url="http://b/"):
            obs.event("fetch", bytes=200)
    return obs.journal.to_jsonl()


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        assert _run_scenario(seed=42) == _run_scenario(seed=42)

    def test_different_seed_different_ids(self):
        assert _run_scenario(seed=1) != _run_scenario(seed=2)

    def test_no_wall_clock_leaks(self):
        # Every timestamp in the journal is simulation time, so a run
        # played twice at different wall-clock moments stays identical.
        first = _run_scenario(seed=7)
        import time

        time.sleep(0.01)
        assert _run_scenario(seed=7) == first


class TestNesting:
    def test_child_records_parent(self):
        tracer = Tracer(seed=0)
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.parent_id == parent.span_id
        assert parent.parent_id == ""

    def test_current_tracks_stack(self):
        tracer = Tracer(seed=0)
        assert tracer.current() is None
        with tracer.span("a") as a:
            assert tracer.current() is a
        assert tracer.current() is None

    def test_sim_clock_duration(self):
        clock = SimClock()
        tracer = Tracer(clock=clock, seed=0)
        with tracer.span("wait") as span:
            clock.advance(30)
        assert span.start == 0
        assert span.end == 30


class TestErrors:
    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(seed=0)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed") as span:
                raise RuntimeError("boom")
        assert span.error == "RuntimeError"
        assert tracer.finished[-1] is span

    def test_stack_unwinds_after_error(self):
        tracer = Tracer(seed=0)
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current() is None


class TestDisabled:
    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer(seed=0, enabled=False)
        assert tracer.span("anything") is NOOP_SPAN
        with tracer.span("x") as span:
            span.set(a=1)
        assert tracer.finished == []

    def test_disabled_observability_journal_stays_empty(self):
        obs = Observability(enabled=False)
        with obs.span("x"):
            obs.event("y", n=1)
        obs.counter("c").inc()
        assert len(obs.journal) == 0
        assert obs.snapshot() == {}


class TestJournal:
    def test_jsonl_is_sorted_and_compact(self):
        journal = EventJournal()
        journal.emit("z", b=2, a=1)
        line = journal.to_jsonl().strip()
        assert line == '{"a":1,"b":2,"kind":"z","seq":0,"t":0}'

    def test_spans_emit_in_completion_order(self):
        journal = EventJournal()
        tracer = Tracer(seed=0, journal=journal)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [r["name"] for r in journal.by_kind("span")]
        assert names == ["inner", "outer"]
