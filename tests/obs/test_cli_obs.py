"""The ``aide metrics`` and ``aide trace`` subcommands."""

import json

import pytest

from repro.cli import main
from repro.obs import Observability
from repro.simclock import SimClock


@pytest.fixture
def run_dir(tmp_path):
    """A saved run directory with spans, events, and metrics."""
    clock = SimClock()
    obs = Observability(clock=clock, seed=11)
    obs.counter("w3newer.checks").inc(3)
    obs.histogram("snapshot.locking.wait_seconds", buckets=(1, 10)).observe(4)
    with obs.span("w3newer.run", urls=3):
        clock.advance(20)
        with obs.span("w3newer.check", url="http://a/") as span:
            span.set(state="changed")
        obs.event("w3newer.degraded_stale", url="http://b/", reason="DnsError")
    obs.save(str(tmp_path))
    return tmp_path


class TestMetricsCommand:
    def test_prometheus_text_from_directory(self, run_dir, capsys):
        assert main(["metrics", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "w3newer_checks 3" in out
        assert 'snapshot_locking_wait_seconds_bucket{le="10"} 1' in out

    def test_json_format(self, run_dir, capsys):
        assert main(["metrics", str(run_dir), "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["w3newer.checks"] == 3

    def test_explicit_file_path(self, run_dir, capsys):
        path = run_dir / "metrics.json"
        assert main(["metrics", str(path)]) == 0
        assert "w3newer_checks 3" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path):
        assert main(["metrics", str(tmp_path / "nope.json")]) == 2


class TestTraceCommand:
    def test_span_tree_nests_children(self, run_dir, capsys):
        assert main(["trace", str(run_dir)]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        run_line = next(l for l in lines if "w3newer.run" in l)
        check_line = next(l for l in lines if "w3newer.check" in l)
        assert not run_line.startswith(" ")
        assert check_line.startswith("  ")
        assert "urls=3" in run_line
        assert "state=changed" in check_line

    def test_events_listed_after_spans(self, run_dir, capsys):
        assert main(["trace", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "w3newer.degraded_stale" in out
        assert "reason=DnsError" in out

    def test_spans_only_omits_events(self, run_dir, capsys):
        assert main(["trace", str(run_dir), "--spans-only"]) == 0
        out = capsys.readouterr().out
        assert "degraded_stale" not in out

    def test_missing_journal_exits_2(self, tmp_path):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
