"""Memento interop layer tests."""
