"""Tests for the Memento protocol core: negotiation, links, TimeMaps."""

import pytest

from repro.memento.core import (
    LINK_FORMAT,
    LinkEntry,
    Memento,
    NegotiationError,
    TimeMap,
    format_link_header,
    format_timemap,
    memento_uri,
    parse_link_header,
    parse_timemap,
    resolve_datetime,
    timegate_uri,
    timemap_uri,
    validate_policy,
)


class TestResolveDatetime:
    DATES = [100, 200, 300]

    def test_past_policy(self):
        assert resolve_datetime(self.DATES, 250, "past") == 1
        assert resolve_datetime(self.DATES, 300, "past") == 2
        assert resolve_datetime(self.DATES, 99, "past") is None
        assert resolve_datetime(self.DATES, 10**9, "past") == 2

    def test_exact_policy(self):
        assert resolve_datetime(self.DATES, 200, "exact") == 1
        assert resolve_datetime(self.DATES, 201, "exact") is None

    def test_nearest_policy_ties_go_older(self):
        assert resolve_datetime(self.DATES, 150, "nearest") == 0
        assert resolve_datetime(self.DATES, 151, "nearest") == 1
        assert resolve_datetime(self.DATES, 50, "nearest") == 0

    def test_empty_dates(self):
        for policy in ("past", "nearest", "exact"):
            assert resolve_datetime([], 100, policy) is None

    def test_shared_stamp_returns_newest(self):
        assert resolve_datetime([100, 100, 200], 100, "past") == 1
        assert resolve_datetime([100, 100, 200], 100, "exact") == 1

    def test_non_monotonic_matches_linear_semantics(self):
        dates = [300, 100, 200]
        assert resolve_datetime(dates, 250, "past") == 2
        assert resolve_datetime(dates, 300, "exact") == 0
        assert resolve_datetime(dates, 10, "nearest") == 1

    def test_monotonic_and_scan_agree_on_sorted_input(self):
        dates = [10, 20, 30, 40]
        for target in range(0, 55, 5):
            for policy in ("past", "nearest", "exact"):
                fast = resolve_datetime(dates, target, policy,
                                        monotonic=True)
                slow = resolve_datetime(dates, target, policy,
                                        monotonic=False)
                assert fast == slow, (target, policy)

    def test_unknown_policy(self):
        with pytest.raises(NegotiationError):
            resolve_datetime(self.DATES, 100, "fuzzy")
        with pytest.raises(NegotiationError):
            validate_policy("whenever")


class TestLinkHeaders:
    def test_round_trip(self):
        entries = [
            LinkEntry("http://a/", "original"),
            LinkEntry("/tm?u=a", "timemap", type=LINK_FORMAT),
            LinkEntry("/m?rev=1.1", "memento", datetime=100),
        ]
        parsed = parse_link_header(format_link_header(entries))
        assert [e.target for e in parsed] == ["http://a/", "/tm?u=a",
                                              "/m?rev=1.1"]
        assert parsed[2].datetime == 100
        assert parsed[1].type == LINK_FORMAT

    def test_multi_token_rel_splits(self):
        parsed = parse_link_header('</m>; rel="first last memento"')
        assert [e.rel for e in parsed] == ["first", "last", "memento"]

    def test_commas_inside_quoted_datetimes(self):
        header = ('</a>; rel="memento"; '
                  'datetime="Fri, 01 Sep 1995 00:01:40 GMT", '
                  '</b>; rel="memento"; '
                  'datetime="Fri, 01 Sep 1995 00:03:20 GMT"')
        parsed = parse_link_header(header)
        assert [(e.target, e.datetime) for e in parsed] == [
            ("/a", 100), ("/b", 200)]

    def test_garbage_tolerated(self):
        assert parse_link_header("") == []
        assert parse_link_header("no angle brackets") == []
        assert parse_link_header("<target-no-rel>; type=x") == []


class TestTimeMaps:
    def _timemap(self):
        script = "/cgi-bin/snapshot"
        url = "http://site/page.html"
        return TimeMap(
            original=url,
            timegate=timegate_uri(script, url),
            timemap=timemap_uri(script, url),
            mementos=[
                Memento(datetime=200, uri=memento_uri(script, url, "1.2"),
                        revision="1.2"),
                Memento(datetime=100, uri=memento_uri(script, url, "1.1"),
                        revision="1.1"),
            ],
        )

    def test_format_parse_round_trip(self):
        original = self._timemap()
        body = format_timemap(original)
        parsed = parse_timemap(body, source="peer")
        assert parsed.original == original.original
        assert parsed.timegate == original.timegate
        assert [(m.datetime, m.revision) for m in parsed.mementos] == [
            (100, "1.1"), (200, "1.2")]
        assert all(m.source == "peer" for m in parsed.mementos)

    def test_first_last_rels_serialized(self):
        body = format_timemap(self._timemap())
        assert 'rel="first memento"' in body
        assert 'rel="last memento"' in body

    def test_single_memento_gets_both_rels(self):
        timemap = self._timemap()
        timemap.mementos = timemap.mementos[:1]
        body = format_timemap(timemap)
        assert 'rel="first last memento"' in body

    def test_at_uses_shared_resolver(self):
        timemap = self._timemap()
        assert timemap.at(150).revision == "1.1"
        assert timemap.at(150, "nearest").revision == "1.1"
        assert timemap.at(151, "nearest").revision == "1.2"
        assert timemap.at(50) is None
        assert timemap.at(50, "nearest").revision == "1.1"

    def test_neighbours(self):
        timemap = self._timemap().sorted()
        first, second = timemap.mementos
        assert timemap.neighbours(first) == (None, second)
        assert timemap.neighbours(second) == (first, None)
