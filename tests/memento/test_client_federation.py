"""Tests for the Memento client and the cross-archive federation layer."""

import pytest

from repro.core.htmldiff.api import html_diff
from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.memento.client import MementoClient, MementoClientError
from repro.memento.endpoints import MementoEndpoints
from repro.memento.federation import ArchiveFederation
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

URL = "http://site.com/page.html"
REMOTE = "http://archive.example.org/cgi-bin/snapshot"


def _make_archive(network, clock, host, bodies_and_dates):
    """A SnapshotStore behind a CGI service on ``host``."""
    agent = UserAgent(network, clock)
    store = SnapshotStore(clock, agent)
    for body, date in bodies_and_dates:
        while clock.now < date:
            clock.advance(date - clock.now)
        store.checkin_content("u@e", URL, body)
    service = SnapshotService(store)
    network.create_server(host).register_cgi("/cgi-bin/snapshot", service)
    return store


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    # Remote archive holds the early history; local the late one.
    remote_store = _make_archive(
        network, clock, "archive.example.org",
        [("<HTML><BODY>remote v1</BODY></HTML>", 100),
         ("<HTML><BODY>remote v2</BODY></HTML>", 200)])
    local_store = _make_archive(
        network, clock, "aide.att.com",
        [("<HTML><BODY>local v1</BODY></HTML>", 300)])
    client_agent = UserAgent(network, clock)
    peer = MementoClient(client_agent, REMOTE, source="example.org")
    endpoints = MementoEndpoints(local_store)
    federation = ArchiveFederation(endpoints, [peer])
    return clock, network, local_store, remote_store, peer, federation


class TestMementoClient:
    def test_timemap_walk(self, world):
        clock, network, local, remote, peer, federation = world
        timemap = peer.timemap(URL)
        assert [m.datetime for m in timemap.mementos] == [100, 200]
        assert all(m.source == "example.org" for m in timemap.mementos)
        # URI-Ms come back absolute, fetchable directly.
        assert all(m.uri.startswith("http://archive.example.org/")
                   for m in timemap.mementos)

    def test_negotiation_follows_the_302(self, world):
        clock, network, local, remote, peer, federation = world
        fetch = peer.memento_at(URL, 150)
        assert fetch.datetime == 100
        assert "remote v1" in fetch.body
        # The TimeGate hop is on the redirect trail.
        assert any("timegate" in hop for hop in fetch.redirects)

    def test_newest_without_header(self, world):
        clock, network, local, remote, peer, federation = world
        fetch = peer.newest(URL)
        assert fetch.datetime == 200
        assert "remote v2" in fetch.body

    def test_fetch_listed_uri_m(self, world):
        clock, network, local, remote, peer, federation = world
        timemap = peer.timemap(URL)
        fetch = peer.fetch(timemap.mementos[0].uri, original=URL)
        assert fetch.datetime == 100
        assert fetch.original == URL

    def test_406_and_404_surface_with_status(self, world):
        clock, network, local, remote, peer, federation = world
        with pytest.raises(MementoClientError) as exc:
            peer.memento_at(URL, 5)  # before the remote's first capture
        assert exc.value.status == 406
        with pytest.raises(MementoClientError) as exc:
            peer.timemap("http://site.com/never.html")
        assert exc.value.status == 404


class TestFederation:
    def test_merged_timemap_spans_archives(self, world):
        clock, network, local, remote, peer, federation = world
        merged = federation.merged_timemap(URL)
        assert [m.datetime for m in merged.mementos] == [100, 200, 300]
        sources = {m.datetime: m.source for m in merged.mementos}
        assert sources[100] == "example.org"
        assert sources[300] == "local"

    def test_merged_timemap_deduplicates(self, world):
        clock, network, local, remote, peer, federation = world
        federation.add_peer(MementoClient(
            peer.agent, REMOTE, source="example.org"))  # same archive twice
        merged = federation.merged_timemap(URL)
        assert [m.datetime for m in merged.mementos] == [100, 200, 300]

    def test_best_at_negotiates_over_merged_timeline(self, world):
        clock, network, local, remote, peer, federation = world
        # 250: the local store alone has nothing ≤ 250; the remote does.
        best = federation.best_at(URL, 250)
        assert best.datetime == 200
        assert best.source == "example.org"
        assert federation.best_at(URL, 9999).source == "local"
        assert federation.best_at(URL, 5) is None

    def test_down_peer_degrades_to_local(self, world):
        clock, network, local, remote, peer, federation = world
        dead = MementoClient(peer.agent,
                             "http://gone.example.net/cgi-bin/snapshot",
                             source="gone")
        federation.peers = [dead]
        merged = federation.merged_timemap(URL)
        assert [m.datetime for m in merged.mementos] == [300]

    def test_cross_diff_byte_identical_to_direct(self, world):
        clock, network, local, remote, peer, federation = world
        diff = federation.cross_diff(URL, "1.1", target=150)
        direct = html_diff(local.view(URL, "1.1"),
                           remote.view(URL, "1.1"),
                           options=local.diff_options)
        assert diff.html == direct.html
        assert diff.source == "example.org"
        assert diff.remote.datetime == 100

    def test_cross_diff_no_peer_answers(self, world):
        clock, network, local, remote, peer, federation = world
        federation.peers = []
        with pytest.raises(MementoClientError):
            federation.cross_diff(URL, "1.1", target=150)
