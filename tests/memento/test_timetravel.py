"""Tests for datetime-pinned browsing (TimeTravelSession)."""

import pytest

from repro.aide.browser import TimeTravelSession
from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.memento.client import MementoClientError
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.network import Network

ENDPOINT = "http://aide.att.com/cgi-bin/snapshot"

HOME = "http://site.com/home.html"
NEWS = "http://site.com/news.html"
LATE = "http://site.com/late.html"


def _page(text, *hrefs):
    links = "".join(f'<A HREF="{h}">link</A>' for h in hrefs)
    return f"<HTML><BODY><P>{text}</P>{links}</BODY></HTML>"


@pytest.fixture
def world():
    clock = SimClock()
    network = Network(clock)
    agent = UserAgent(network, clock)
    store = SnapshotStore(clock, agent)
    network.create_server("aide.att.com").register_cgi(
        "/cgi-bin/snapshot", SnapshotService(store))
    clock.advance(100)
    store.checkin_content("u@e", HOME, _page("home v1", "news.html",
                                             "late.html"))
    store.checkin_content("u@e", NEWS, _page("news v1", "home.html"))
    clock.advance(100)  # t=200
    store.checkin_content("u@e", HOME, _page("home v2", "news.html"))
    clock.advance(100)  # t=300: LATE only exists after the pin below
    store.checkin_content("u@e", LATE, _page("late arrival"))
    browser = UserAgent(network, clock, agent_name="Mozilla/1.1N")
    return clock, store, browser


class TestPinnedBrowsing:
    def test_browse_serves_the_pinned_state(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=150)
        page = session.browse(HOME)
        assert page.served
        assert "home v1" in page.memento.body
        assert page.datetime == 100

    def test_links_are_original_web_urls(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=150)
        page = session.browse(HOME)
        assert NEWS in page.links and LATE in page.links

    def test_follow_renegotiates_at_the_pin(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=150)
        session.browse(HOME)
        index = session.current.links.index(NEWS)
        page = session.follow(index)
        assert "news v1" in page.memento.body
        assert page.datetime == 100
        assert len(session.trail) == 2

    def test_never_serves_newer_than_pin(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=150)
        session.browse(HOME)
        for index in range(len(session.current.links)):
            session.browse(HOME)
            session.follow(index)
        for page in session.trail:
            if page.served:
                assert page.datetime <= session.pin

    def test_link_captured_after_pin_is_a_miss(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=150)
        session.browse(HOME)
        miss = session.browse(LATE)  # captured at 300, pin is 150
        assert not miss.served
        assert miss.memento is None
        assert miss in session.trail

    def test_uncaptured_link_is_a_miss_not_a_crash(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=150)
        miss = session.browse("http://site.com/never.html")
        assert not miss.served

    def test_follow_from_miss_raises(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=150)
        session.browse(LATE)
        with pytest.raises(MementoClientError):
            session.follow(0)

    def test_later_pin_sees_later_world(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=250)
        page = session.browse(HOME)
        assert "home v2" in page.memento.body
        assert page.datetime == 200

    def test_pin_string_is_http_date(self, world):
        clock, store, browser = world
        session = TimeTravelSession(browser, ENDPOINT, pin=100)
        assert session.pin_string == "Fri, 01 Sep 1995 00:01:40 GMT"
