"""Tests for the server-side Memento endpoints (TimeGate edge cases)."""

import json

import pytest

from repro.core.quarantine import QuarantineJournal
from repro.core.snapshot.service import SnapshotService
from repro.core.snapshot.store import SnapshotStore
from repro.memento.core import ACCEPT_DATETIME, MEMENTO_DATETIME
from repro.simclock import SimClock
from repro.web.client import UserAgent
from repro.web.guards import ContentGuard, GuardLimits
from repro.web.http import Headers, Request, format_http_date
from repro.web.network import Network

URL = "http://site.com/page.html"


@pytest.fixture
def world(tmp_path):
    clock = SimClock()
    network = Network(clock)
    agent = UserAgent(network, clock)
    quarantine = QuarantineJournal(str(tmp_path / "quarantine.jsonl"))
    store = SnapshotStore(clock, agent, quarantine=quarantine)
    service = SnapshotService(store)
    clock.advance(100)
    store.checkin_content("u@e", URL, "<HTML><BODY>v1</BODY></HTML>")
    clock.advance(100)
    store.checkin_content("u@e", URL, "<HTML><BODY>v2</BODY></HTML>")
    return clock, store, service


def call(service, clock, query, headers=None):
    request = Request("GET", f"http://aide/cgi-bin/snapshot?{query}",
                      headers=Headers(headers or {}))
    return service(request, clock.now)


class TestTimeGate:
    def test_redirects_to_negotiated_memento(self, world):
        clock, store, service = world
        response = call(service, clock, f"action=timegate&url={URL}",
                        {ACCEPT_DATETIME: format_http_date(150)})
        assert response.status == 302
        assert "rev=1.1" in response.headers.get("Location")
        assert response.headers.get("Vary") == "accept-datetime"
        assert 'rel="original"' in response.headers.get("Link")

    def test_absent_accept_datetime_serves_last_memento(self, world):
        clock, store, service = world
        response = call(service, clock, f"action=timegate&url={URL}")
        assert response.status == 302
        assert "rev=1.2" in response.headers.get("Location")

    def test_malformed_datetime_is_400(self, world):
        clock, store, service = world
        response = call(service, clock, f"action=timegate&url={URL}",
                        {ACCEPT_DATETIME: "three days ago"})
        assert response.status == 400

    def test_before_first_revision_is_406_under_past(self, world):
        clock, store, service = world
        response = call(service, clock, f"action=timegate&url={URL}",
                        {ACCEPT_DATETIME: format_http_date(5)})
        assert response.status == 406
        assert "Not Acceptable" in response.reason

    def test_before_first_revision_nearest_serves_first(self, world):
        clock, store, service = world
        response = call(service, clock,
                        f"action=timegate&url={URL}&policy=nearest",
                        {ACCEPT_DATETIME: format_http_date(5)})
        assert response.status == 302
        assert "rev=1.1" in response.headers.get("Location")

    def test_exact_policy_miss_is_406(self, world):
        clock, store, service = world
        response = call(service, clock,
                        f"action=timegate&url={URL}&policy=exact",
                        {ACCEPT_DATETIME: format_http_date(150)})
        assert response.status == 406

    def test_empty_archive_is_404(self, world):
        clock, store, service = world
        response = call(service, clock,
                        "action=timegate&url=http://site.com/nothing.html")
        assert response.status == 404

    def test_unknown_policy_is_400(self, world):
        clock, store, service = world
        response = call(service, clock,
                        f"action=timegate&url={URL}&policy=fuzzy",
                        {ACCEPT_DATETIME: format_http_date(150)})
        assert response.status == 400

    def test_integer_accept_datetime_accepted(self, world):
        # Sim tools speak raw timestamps; the gate accepts them too.
        clock, store, service = world
        response = call(service, clock, f"action=timegate&url={URL}",
                        {ACCEPT_DATETIME: "150"})
        assert response.status == 302
        assert "rev=1.1" in response.headers.get("Location")

    def test_quarantined_url_is_422(self, world):
        clock, store, service = world
        bad_url = "http://site.com/poison.html"
        store.guard = ContentGuard(GuardLimits(max_nesting_depth=64))
        with pytest.raises(Exception):
            store.checkin_content("u@e", bad_url, "<DIV>" * 200 + "boom")
        response = call(service, clock, f"action=timegate&url={bad_url}")
        assert response.status == 422


class TestMementoEndpoint:
    def test_body_byte_identical_to_dated_view(self, world):
        clock, store, service = world
        gate = call(service, clock, f"action=timegate&url={URL}",
                    {ACCEPT_DATETIME: format_http_date(150)})
        location = gate.headers.get("Location")
        query = location.split("?", 1)[1]
        memento = call(service, clock, query)
        view = call(service, clock, f"action=view&url={URL}&date=150")
        assert memento.status == 200
        assert memento.body == view.body

    def test_memento_datetime_and_navigation_links(self, world):
        clock, store, service = world
        response = call(service, clock, f"action=memento&url={URL}&rev=1.1")
        assert response.headers.get(MEMENTO_DATETIME) == format_http_date(100)
        link = response.headers.get("Link")
        assert 'rel="timegate"' in link
        assert 'rel="next memento"' in link
        assert "prev" not in link  # first revision has no predecessor

    def test_missing_rev_is_400(self, world):
        clock, store, service = world
        assert call(service, clock,
                    f"action=memento&url={URL}").status == 400

    def test_unknown_rev_is_404(self, world):
        clock, store, service = world
        assert call(service, clock,
                    f"action=memento&url={URL}&rev=9.9").status == 404


class TestTimeMapEndpoint:
    def test_link_format_lists_every_revision(self, world):
        clock, store, service = world
        response = call(service, clock, f"action=timemap&url={URL}")
        assert response.status == 200
        assert response.content_type == "application/link-format"
        assert "rev=1.1" in response.body and "rev=1.2" in response.body
        assert 'rel="first memento"' in response.body
        assert 'rel="last memento"' in response.body

    def test_json_format(self, world):
        clock, store, service = world
        response = call(service, clock,
                        f"action=timemap&url={URL}&format=json")
        payload = json.loads(response.body)
        assert [m["revision"] for m in payload["mementos"]] == ["1.1", "1.2"]
        assert payload["original"] == URL

    def test_unknown_format_is_400(self, world):
        clock, store, service = world
        assert call(service, clock,
                    f"action=timemap&url={URL}&format=xml").status == 400

    def test_empty_archive_is_404(self, world):
        clock, store, service = world
        assert call(service, clock,
                    "action=timemap&url=http://site.com/none.html"
                    ).status == 404


class TestObservability:
    def test_counters_move(self, tmp_path):
        from repro.obs import Observability

        clock = SimClock()
        network = Network(clock)
        agent = UserAgent(network, clock)
        store = SnapshotStore(clock, agent, obs=Observability(clock=clock))
        service = SnapshotService(store)
        clock.advance(100)
        store.checkin_content("u@e", URL, "<HTML><BODY>v1</BODY></HTML>")
        clock.advance(100)
        store.checkin_content("u@e", URL, "<HTML><BODY>v2</BODY></HTML>")
        call(service, clock, f"action=timegate&url={URL}",
             {ACCEPT_DATETIME: "150"})
        call(service, clock, f"action=timemap&url={URL}")
        call(service, clock, f"action=memento&url={URL}&rev=1.1")
        call(service, clock, f"action=timegate&url={URL}",
             {ACCEPT_DATETIME: "5"})  # refused (406)
        snapshot = store.obs.snapshot()
        counters = snapshot.get("counters", snapshot)
        flat = json.dumps(counters)
        assert "memento.timegate.requests" in flat
        assert "memento.timegate.refused" in flat
