"""Documentation discipline: every module and public class is documented.

A reproduction repo lives or dies by its docs; this meta-test keeps the
docstring coverage from regressing.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__ for module in iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export; documented at home
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_every_public_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []
