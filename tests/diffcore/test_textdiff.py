"""Tests for edit scripts (RCS delta machinery) and unified diffs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffcore.textdiff import (
    EditCommand,
    apply_edit_script,
    make_edit_script,
    script_size,
    unified_diff,
)

lines_strategy = st.lists(st.sampled_from(["alpha", "beta", "gamma", "", "x"]),
                          max_size=25)


class TestEditCommand:
    def test_append_serialization(self):
        cmd = EditCommand("a", 3, 2, ("one", "two"))
        assert cmd.serialize() == "a3 2\none\ntwo"

    def test_delete_serialization(self):
        assert EditCommand("d", 5, 3).serialize() == "d5 3"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            EditCommand("x", 1, 1)

    def test_append_count_must_match_payload(self):
        with pytest.raises(ValueError):
            EditCommand("a", 1, 2, ("only-one",))

    def test_delete_must_not_carry_payload(self):
        with pytest.raises(ValueError):
            EditCommand("d", 1, 1, ("payload",))


class TestEditScriptRoundtrip:
    def test_no_change_is_empty_script(self):
        lines = ["a", "b", "c"]
        assert make_edit_script(lines, lines) == []

    def test_pure_append(self):
        script = make_edit_script(["a"], ["a", "b"])
        assert len(script) == 1
        assert script[0].kind == "a"
        assert apply_edit_script(["a"], script) == ["a", "b"]

    def test_pure_delete(self):
        script = make_edit_script(["a", "b"], ["a"])
        assert len(script) == 1
        assert script[0].kind == "d"
        assert apply_edit_script(["a", "b"], script) == ["a"]

    def test_replace_line(self):
        old = ["keep", "old", "keep2"]
        new = ["keep", "new", "keep2"]
        script = make_edit_script(old, new)
        assert apply_edit_script(old, script) == new

    def test_insert_at_head(self):
        old = ["b"]
        new = ["a", "b"]
        assert apply_edit_script(old, make_edit_script(old, new)) == new

    def test_total_rewrite(self):
        old = ["1", "2", "3"]
        new = ["x", "y"]
        assert apply_edit_script(old, make_edit_script(old, new)) == new

    def test_empty_to_content(self):
        assert apply_edit_script([], make_edit_script([], ["a", "b"])) == ["a", "b"]

    def test_content_to_empty(self):
        assert apply_edit_script(["a", "b"], make_edit_script(["a", "b"], [])) == []

    @given(lines_strategy, lines_strategy)
    @settings(max_examples=200)
    def test_roundtrip_property(self, old, new):
        script = make_edit_script(old, new)
        assert apply_edit_script(old, script) == new

    @given(lines_strategy, lines_strategy)
    @settings(max_examples=100)
    def test_reverse_script_roundtrip(self, old, new):
        # The RCS reverse-delta property: a script can run either way
        # if computed in the opposite direction.
        forward = make_edit_script(old, new)
        backward = make_edit_script(new, old)
        assert apply_edit_script(apply_edit_script(old, forward), backward) == old

    def test_identity_script_is_free(self):
        assert script_size(make_edit_script(["a"] * 10, ["a"] * 10)) == 0


class TestApplyValidation:
    def test_delete_out_of_range(self):
        with pytest.raises(ValueError):
            apply_edit_script(["a"], [EditCommand("d", 5, 1)])

    def test_append_out_of_range(self):
        with pytest.raises(ValueError):
            apply_edit_script(["a"], [EditCommand("a", 9, 1, ("x",))])

    def test_overlapping_commands_rejected(self):
        script = [EditCommand("d", 1, 1), EditCommand("d", 1, 1)]
        with pytest.raises(ValueError):
            apply_edit_script(["a", "b"], script)


class TestUnifiedDiff:
    def test_no_difference_is_empty(self):
        assert unified_diff(["same"], ["same"]) == ""

    def test_headers_and_markers(self):
        out = unified_diff(["a", "b"], ["a", "c"], "v1", "v2")
        assert out.startswith("--- v1\n+++ v2\n")
        assert "@@" in out
        assert "-b" in out
        assert "+c" in out

    def test_context_lines_present(self):
        old = [f"line{i}" for i in range(10)]
        new = list(old)
        new[5] = "CHANGED"
        out = unified_diff(old, new)
        assert " line4" in out
        assert " line8" in out
        assert "-line5" in out
        assert "+CHANGED" in out
        # Far-away lines stay out of the hunk.
        assert "line0" not in out

    def test_nearby_changes_merge_into_one_hunk(self):
        old = [f"l{i}" for i in range(10)]
        new = list(old)
        new[3] = "X"
        new[6] = "Y"
        out = unified_diff(old, new)
        hunks = [ln for ln in out.splitlines() if ln.startswith("@@")]
        assert len(hunks) == 1

    def test_distant_changes_get_separate_hunks(self):
        old = [f"l{i}" for i in range(40)]
        new = list(old)
        new[2] = "X"
        new[35] = "Y"
        out = unified_diff(old, new)
        hunks = [ln for ln in out.splitlines() if ln.startswith("@@")]
        assert len(hunks) == 2
