"""Tests for the Myers edit-distance / pair-recovery implementation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffcore.myers import myers_edit_distance, myers_pairs


def brute_lcs_length(a, b):
    table = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            if a[i - 1] == b[j - 1]:
                table[i][j] = table[i - 1][j - 1] + 1
            else:
                table[i][j] = max(table[i - 1][j], table[i][j - 1])
    return table[-1][-1]


class TestMyersDistance:
    def test_identical(self):
        assert myers_edit_distance("abc", "abc") == 0

    def test_empty(self):
        assert myers_edit_distance("", "") == 0
        assert myers_edit_distance("abc", "") == 3
        assert myers_edit_distance("", "xy") == 2

    def test_classic(self):
        # ABCABBA -> CBABAC is the worked example in Myers's paper: D=5.
        assert myers_edit_distance("ABCABBA", "CBABAC") == 5

    @given(st.text(alphabet="abc", max_size=20), st.text(alphabet="abc", max_size=20))
    @settings(max_examples=150)
    def test_distance_equals_lengths_minus_twice_lcs(self, a, b):
        lcs = brute_lcs_length(a, b)
        assert myers_edit_distance(a, b) == len(a) + len(b) - 2 * lcs


class TestMyersPairs:
    def test_identical(self):
        assert myers_pairs("ab", "ab") == [(0, 0), (1, 1)]

    def test_empty(self):
        assert myers_pairs("", "abc") == []

    @given(
        st.lists(st.integers(0, 3), max_size=25),
        st.lists(st.integers(0, 3), max_size=25),
    )
    @settings(max_examples=150)
    def test_pairs_form_optimal_lcs(self, a, b):
        pairs = myers_pairs(a, b)
        assert len(pairs) == brute_lcs_length(a, b)
        for (i1, j1), (i2, j2) in zip(pairs, pairs[1:]):
            assert i2 > i1 and j2 > j1
        for i, j in pairs:
            assert a[i] == b[j]

    def test_large_core_takes_split_path(self):
        # Force the Hirschberg-split branch (core > 4096 cells).
        a = [i % 7 for i in range(120)]
        b = [(i * 3) % 7 for i in range(120)]
        pairs = myers_pairs(a, b)
        assert len(pairs) == brute_lcs_length(a, b)
