"""Tests for the weighted/unweighted Hirschberg LCS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffcore.lcs import (
    lcs_length,
    lcs_pairs,
    similarity_ratio,
    trim_common_affixes,
    weighted_lcs_pairs,
    weighted_lcs_score,
)


def brute_lcs_length(a, b):
    """Reference quadratic DP used as an oracle."""
    table = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            if a[i - 1] == b[j - 1]:
                table[i][j] = table[i - 1][j - 1] + 1
            else:
                table[i][j] = max(table[i - 1][j], table[i][j - 1])
    return table[-1][-1]


class TestTrimCommonAffixes:
    def test_disjoint(self):
        assert trim_common_affixes("abc", "xyz", lambda x, y: x == y) == (0, 0)

    def test_identical(self):
        assert trim_common_affixes("abc", "abc", lambda x, y: x == y) == (3, 0)

    def test_prefix_and_suffix(self):
        prefix, suffix = trim_common_affixes("aXc", "aYc", lambda x, y: x == y)
        assert (prefix, suffix) == (1, 1)

    def test_suffix_never_overlaps_prefix(self):
        # "aa" vs "aaa": naive trimming would double-count the middle 'a'.
        prefix, suffix = trim_common_affixes("aa", "aaa", lambda x, y: x == y)
        assert prefix + suffix <= 2


class TestLcsLength:
    def test_classic_example(self):
        assert lcs_length("ABCBDAB", "BDCABA") == 4

    def test_empty(self):
        assert lcs_length("", "") == 0
        assert lcs_length("abc", "") == 0

    def test_identical(self):
        assert lcs_length("hello", "hello") == 5

    @given(
        st.lists(st.integers(0, 5), max_size=25),
        st.lists(st.integers(0, 5), max_size=25),
    )
    @settings(max_examples=150)
    def test_matches_reference_dp(self, a, b):
        assert lcs_length(a, b) == brute_lcs_length(a, b)


class TestSimilarityRatio:
    def test_identical(self):
        assert similarity_ratio("abc", "abc") == 1.0

    def test_disjoint(self):
        assert similarity_ratio("abc", "xyz") == 0.0

    def test_both_empty_defined_identical(self):
        assert similarity_ratio("", "") == 1.0

    def test_half_overlap(self):
        # LCS("ab", "ax") = 1, L = 4 -> 2*1/4 = 0.5
        assert similarity_ratio("ab", "ax") == 0.5

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=100)
    def test_bounded(self, a, b):
        assert 0.0 <= similarity_ratio(a, b) <= 1.0

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=100)
    def test_symmetric(self, a, b):
        assert similarity_ratio(a, b) == similarity_ratio(b, a)


def assert_valid_matching(pairs, a, b, weight):
    """Matches must be strictly increasing in both indices and positive."""
    last_i, last_j = -1, -1
    for i, j, w in pairs:
        assert i > last_i and j > last_j
        assert 0 <= i < len(a) and 0 <= j < len(b)
        assert w == weight(a[i], b[j]) > 0
        last_i, last_j = i, j


class TestLcsPairs:
    def test_classic_example(self):
        pairs = lcs_pairs("ABCBDAB", "BDCABA")
        assert len(pairs) == 4
        assert_valid_matching(pairs, "ABCBDAB", "BDCABA",
                              lambda x, y: 1.0 if x == y else 0.0)

    def test_empty_inputs(self):
        assert lcs_pairs("", "abc") == []
        assert lcs_pairs("abc", "") == []

    def test_identical_full_match(self):
        pairs = lcs_pairs("abcd", "abcd")
        assert [(i, j) for i, j, _ in pairs] == [(0, 0), (1, 1), (2, 2), (3, 3)]

    @given(
        st.lists(st.integers(0, 4), max_size=20),
        st.lists(st.integers(0, 4), max_size=20),
    )
    @settings(max_examples=150)
    def test_optimal_and_valid(self, a, b):
        pairs = lcs_pairs(a, b)
        assert_valid_matching(pairs, a, b, lambda x, y: 1.0 if x == y else 0.0)
        assert len(pairs) == brute_lcs_length(a, b)


class TestWeightedLcs:
    @staticmethod
    def parity_weight(x, y):
        """Tokens match when congruent mod 3; heavier for exact equality."""
        if x == y:
            return 2.0
        if x % 3 == y % 3:
            return 1.0
        return 0.0

    def test_prefers_heavier_matches(self):
        # 4 matches 4 exactly (weight 2) rather than 1 (parity weight 1).
        pairs = weighted_lcs_pairs([4], [1, 4], self.parity_weight)
        assert pairs == [(0, 1, 2.0)]

    def test_score_agrees_with_pairs(self):
        a = [1, 2, 3, 4, 5, 6]
        b = [4, 2, 6, 1, 5]
        score = weighted_lcs_score(a, b, self.parity_weight)
        pairs = weighted_lcs_pairs(a, b, self.parity_weight)
        assert score == pytest.approx(sum(w for _, _, w in pairs))

    def brute_weighted_score(self, a, b, weight):
        table = [[0.0] * (len(b) + 1) for _ in range(len(a) + 1)]
        for i in range(1, len(a) + 1):
            for j in range(1, len(b) + 1):
                best = max(table[i - 1][j], table[i][j - 1])
                w = weight(a[i - 1], b[j - 1])
                if w > 0:
                    best = max(best, table[i - 1][j - 1] + w)
                table[i][j] = best
        return table[-1][-1]

    @given(
        st.lists(st.integers(0, 8), max_size=15),
        st.lists(st.integers(0, 8), max_size=15),
    )
    @settings(max_examples=120)
    def test_hirschberg_is_optimal(self, a, b):
        expected = self.brute_weighted_score(a, b, self.parity_weight)
        pairs = weighted_lcs_pairs(a, b, self.parity_weight)
        assert_valid_matching(pairs, a, b, self.parity_weight)
        assert sum(w for _, _, w in pairs) == pytest.approx(expected)

    @given(
        st.lists(st.integers(0, 8), max_size=15),
        st.lists(st.integers(0, 8), max_size=15),
    )
    @settings(max_examples=80)
    def test_score_matches_reference(self, a, b):
        assert weighted_lcs_score(a, b, self.parity_weight) == pytest.approx(
            self.brute_weighted_score(a, b, self.parity_weight)
        )

    def test_zero_weight_means_no_match(self):
        pairs = weighted_lcs_pairs([1, 2], [3, 5], lambda x, y: 0.0)
        assert pairs == []
