"""Tests for the Hunt–McIlroy candidate-chain diff."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffcore.huntmcilroy import hunt_mcilroy_length, hunt_mcilroy_pairs


def brute_lcs_length(a, b):
    table = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            if a[i - 1] == b[j - 1]:
                table[i][j] = table[i - 1][j - 1] + 1
            else:
                table[i][j] = max(table[i - 1][j], table[i][j - 1])
    return table[-1][-1]


class TestHuntMcilroy:
    def test_classic(self):
        assert hunt_mcilroy_length("ABCBDAB", "BDCABA") == 4

    def test_empty(self):
        assert hunt_mcilroy_pairs([], ["x"]) == []
        assert hunt_mcilroy_pairs(["x"], []) == []

    def test_identical_lines(self):
        lines = ["a", "b", "c"]
        assert hunt_mcilroy_pairs(lines, lines) == [(0, 0), (1, 1), (2, 2)]

    def test_pure_insertion(self):
        old = ["a", "c"]
        new = ["a", "b", "c"]
        assert hunt_mcilroy_pairs(old, new) == [(0, 0), (1, 2)]

    def test_pure_deletion(self):
        old = ["a", "b", "c"]
        new = ["a", "c"]
        assert hunt_mcilroy_pairs(old, new) == [(0, 0), (2, 1)]

    def test_pairs_strictly_increasing(self):
        pairs = hunt_mcilroy_pairs(list("AXBYCZ"), list("ABXCYZ"))
        for (i1, j1), (i2, j2) in zip(pairs, pairs[1:]):
            assert i2 > i1 and j2 > j1

    def test_repeated_lines(self):
        # Blank-line-heavy inputs exercise the multi-occurrence path.
        old = ["", "x", "", "y", ""]
        new = ["", "y", "", "x", ""]
        pairs = hunt_mcilroy_pairs(old, new)
        assert len(pairs) == brute_lcs_length(old, new)

    @given(
        st.lists(st.sampled_from(["a", "b", "c", ""]), max_size=30),
        st.lists(st.sampled_from(["a", "b", "c", ""]), max_size=30),
    )
    @settings(max_examples=150)
    def test_optimal_length(self, a, b):
        pairs = hunt_mcilroy_pairs(a, b)
        assert len(pairs) == brute_lcs_length(a, b)
        for (i1, j1), (i2, j2) in zip(pairs, pairs[1:]):
            assert i2 > i1 and j2 > j1
        for i, j in pairs:
            assert a[i] == b[j]
