"""Tests for anchor decomposition: the patience-style LCS speedup."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffcore.anchor import anchor_chain, anchored_lcs_pairs, unique_anchors
from repro.diffcore.lcs import (
    canonicalize_pairs,
    weighted_lcs_pairs,
    weighted_lcs_score,
)


def eq_weight(x, y):
    return 1.0 if x == y else 0.0


def assert_valid_matching(a, b, pairs, weight):
    """Pairs must be strictly monotone with truthful positive weights."""
    prev_i = prev_j = -1
    for i, j, w in pairs:
        assert i > prev_i and j > prev_j
        assert w == weight(a[i], b[j]) and w > 0.0
        prev_i, prev_j = i, j


class TestUniqueAnchors:
    def test_empty(self):
        assert unique_anchors([], []) == []

    def test_all_unique(self):
        assert unique_anchors("abc", "cab") == [(0, 1), (1, 2), (2, 0)]

    def test_repeats_excluded(self):
        # 'a' repeats in A, 'b' repeats in B: neither can anchor.
        assert unique_anchors("aba", "bcb") == []

    def test_one_side_repeat_excluded(self):
        assert unique_anchors("abc", "abca") == [(1, 1), (2, 2)]

    def test_key_function(self):
        anchors = unique_anchors(["A", "b"], ["a", "B"], key=str.lower)
        assert anchors == [(0, 0), (1, 1)]


class TestAnchorChain:
    def test_empty(self):
        assert anchor_chain([]) == []

    def test_already_monotone(self):
        cands = [(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]
        assert anchor_chain(cands) == cands

    def test_crossing_pair_keeps_heavier(self):
        # (0, 5) and (1, 2) cross; the heavier one must survive.
        assert anchor_chain([(0, 5, 3.0), (1, 2, 1.0)]) == [(0, 5, 3.0)]
        assert anchor_chain([(0, 5, 1.0), (1, 2, 3.0)]) == [(1, 2, 3.0)]

    def test_weight_beats_count(self):
        # Two light monotone anchors vs one heavy crossing both.
        cands = [(0, 4, 1.0), (2, 5, 1.0), (3, 1, 5.0)]
        assert anchor_chain(cands) == [(3, 1, 5.0)]

    def test_long_monotone_chain(self):
        cands = [(i, i, 1.0) for i in range(100)]
        assert anchor_chain(cands) == cands


class TestAnchoredLcsPairs:
    def test_empty_sides(self):
        assert anchored_lcs_pairs([], "abc", eq_weight) == []
        assert anchored_lcs_pairs("abc", [], eq_weight) == []

    def test_identical(self):
        pairs = anchored_lcs_pairs("abcdef", "abcdef", eq_weight)
        assert pairs == [(i, i, 1.0) for i in range(6)]

    def test_localized_edit(self):
        a = list("abcdefghij")
        b = list("abcXefghij")
        pairs = anchored_lcs_pairs(a, b, eq_weight)
        assert_valid_matching(a, b, pairs, eq_weight)
        assert sum(w for _, _, w in pairs) == 9.0

    def test_matches_plain_solver_weight(self):
        a = list("the quick brown fox jumps over the lazy dog".split())
        b = list("the quick red fox leaps over one lazy dog".split())
        anchored = anchored_lcs_pairs(a, b, eq_weight)
        plain = weighted_lcs_pairs(a, b, eq_weight)
        assert sum(w for *_, w in anchored) == sum(w for *_, w in plain)

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.integers(0, 12), max_size=40),
        st.lists(st.integers(0, 12), max_size=40),
    )
    def test_property_valid_and_bounded(self, a, b):
        """On arbitrary streams anchoring always returns a *valid*
        matching and never claims more weight than the true optimum.
        (It is a heuristic: adversarial transpositions around an
        anchor may cost weight — the revision-shaped cases where it
        must agree exactly are covered below and in the htmldiff
        differential tests.)"""
        anchored = anchored_lcs_pairs(a, b, eq_weight)
        assert_valid_matching(a, b, anchored, eq_weight)
        assert sum(w for *_, w in anchored) <= weighted_lcs_score(a, b, eq_weight)

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_property_revision_shaped_edits_agree_exactly(self, data):
        """Two revisions of a shared backbone (distinct tokens, with
        independent fresh insertions and deletions — the shape real
        page revisions have) give identical canonical alignments and
        full reference weight."""
        n = data.draw(st.integers(5, 30))
        backbone = list(range(n))

        def revise(fresh_base):
            seq = list(backbone)
            for _ in range(data.draw(st.integers(0, 4))):
                if data.draw(st.booleans()) and seq:
                    # Delete a slice.
                    start = data.draw(st.integers(0, len(seq) - 1))
                    stop = data.draw(st.integers(start, len(seq)))
                    del seq[start:stop]
                else:
                    # Insert fresh tokens no other revision shares.
                    at = data.draw(st.integers(0, len(seq)))
                    count = data.draw(st.integers(1, 5))
                    seq[at:at] = [fresh_base + k for k in range(count)]
                    fresh_base += count
            return seq

        a = revise(1000)
        b = revise(2000)
        anchored = canonicalize_pairs(a, b, anchored_lcs_pairs(a, b, eq_weight))
        plain = canonicalize_pairs(a, b, weighted_lcs_pairs(a, b, eq_weight))
        assert anchored == plain
        assert sum(w for *_, w in anchored) == weighted_lcs_score(a, b, eq_weight)


class TestCanonicalizePairs:
    def test_empty(self):
        assert canonicalize_pairs("ab", "ab", []) == []

    def test_slides_to_earliest_occurrence(self):
        a, b = "xayaz", "a"
        # A solver may have matched the second 'a' (index 3).
        assert canonicalize_pairs(a, b, [(3, 0, 1.0)]) == [(1, 0, 1.0)]

    def test_respects_previous_pair(self):
        a, b = "aa", "aa"
        pairs = [(0, 0, 1.0), (1, 1, 1.0)]
        assert canonicalize_pairs(a, b, pairs) == pairs

    def test_weight_preserved(self):
        a, b = "abab", "ab"
        out = canonicalize_pairs(a, b, [(2, 0, 1.0), (3, 1, 1.0)])
        assert out == [(0, 0, 1.0), (1, 1, 1.0)]

    def test_key_function(self):
        a, b = ["X", "x"], ["x"]
        out = canonicalize_pairs(a, b, [(1, 0, 1.0)], key=str.lower)
        assert out == [(0, 0, 1.0)]
