"""Run the doctest examples embedded in module docstrings.

The usage examples in docstrings are documentation that executes; this
collector keeps them honest without needing --doctest-modules flags.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = ["repro"] + [
    info.name
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


@pytest.mark.parametrize("name", MODULES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {name}"
