#!/usr/bin/env python3
"""Quickstart: track a page, see what changed, marked up.

The smallest end-to-end AIDE loop:

1. stand up a simulated web with one page;
2. add a user whose hotlist contains it;
3. Remember the page through the snapshot service;
4. let a week pass while the page changes;
5. run w3newer — the report flags the change;
6. follow the report's Diff link — HtmlDiff shows WHAT changed.

Run:  python examples/quickstart.py
"""

from repro import Aide, DAY, Hotlist


def main() -> None:
    aide = Aide()

    # --- a tiny web ---------------------------------------------------
    server = aide.network.create_server("www.example.com")
    server.set_page(
        "/status.html",
        "<HTML><HEAD><TITLE>Project status</TITLE></HEAD>\n"
        "<BODY>\n"
        "<H1>Project status</H1>\n"
        "<P>The prototype parser is complete. Testing begins next month.</P>\n"
        "<P>Contact the team for access to the repository.</P>\n"
        "</BODY></HTML>\n",
    )

    # --- a user -------------------------------------------------------
    hotlist = Hotlist.from_lines(
        "http://www.example.com/status.html Project status page"
    )
    user = aide.add_user("fred@research.att.com", hotlist)

    # The user reads the page today and asks AIDE to remember it.
    user.visit("http://www.example.com/status.html", aide.clock)
    response = aide.remember("fred@research.att.com",
                             "http://www.example.com/status.html")
    print("== Remember ==")
    print(response.body.strip()[:200], "...\n")

    # --- a week passes; the page changes ------------------------------
    aide.clock.advance(4 * DAY)
    server.set_page(
        "/status.html",
        "<HTML><HEAD><TITLE>Project status</TITLE></HEAD>\n"
        "<BODY>\n"
        "<H1>Project status</H1>\n"
        "<P>The prototype parser is complete. Testing is underway now.</P>\n"
        "<P>A public beta is planned for the spring.</P>\n"
        "</BODY></HTML>\n",
    )
    aide.clock.advance(3 * DAY)

    # --- w3newer flags it ----------------------------------------------
    result = aide.run_w3newer("fred@research.att.com")
    print("== w3newer report ==")
    print(f"{len(result.changed)} page(s) changed; "
          f"{result.http_requests} HTTP request(s) spent")
    assert len(result.changed) == 1

    # --- the report's Diff link: what changed since MY saved copy? -----
    diff = aide.diff("fred@research.att.com", "http://www.example.com/status.html")
    print("\n== HtmlDiff merged page ==")
    print(diff.body)
    assert "<STRIKE>" in diff.body          # deleted text, struck out
    assert "<STRONG><I>" in diff.body       # added text, emphasized
    print("\nquickstart: OK")


if __name__ == "__main__":
    main()
