#!/usr/bin/env python3
"""Personal tracking: a month of w3newer over a hundred-page hotlist.

Recreates the paper's personal-use deployment (Section 7): a user with
a large hotlist, a Table-1-style threshold configuration, a shared
proxy cache, and a daily cron run.  Shows the report after the first
and last runs and the HTTP economy the thresholds buy.

Run:  python examples/personal_tracking.py
"""

from repro import DAY, WEEK, Hotlist
from repro.aide.engine import Aide
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import format_duration
from repro.workloads.scenario import build_hotlist, build_web


def main() -> None:
    # A synthetic web of 20 sites x 10 pages with realistic change rates.
    web = build_web(sites=20, pages_per_site=10, seed=1996)
    aide = Aide(clock=web.clock, network=web.network)

    hotlist = build_hotlist(web, size=100, seed=29)
    config = parse_threshold_config(
        "Default 2d\n"
        "http://www\\.site0\\.com/.* 0\n"      # the user's own project site
        "http://www\\.site1\\.com/.* 7d\n"     # a big directory, be polite
        "http://www\\.site2\\.com/.* never\n"  # changes daily, not worth it
    )
    user = aide.add_user("fred@research.att.com", hotlist, config=config)

    # One month of daily runs.  Each morning the cron-driven page edits
    # land first (run_until advances the world), then w3newer reports,
    # then the user reads up to ten of the changed pages — which is what
    # clears them from the next report (browser history, Section 6).
    for day in range(1, 4 * 7 + 1):
        web.cron.run_until(day * DAY)
        run = user.tracker.run()
        for outcome in run.changed[:10]:
            user.visit(outcome.url, aide.clock)

    runs = user.tracker.runs
    print(f"runs executed:        {len(runs)}")
    first, last = runs[0], runs[-1]
    for label, run in (("first run", first), ("last run", last)):
        print(f"\n== {label} (day {run.started_at // DAY}) ==")
        print(f"  URLs checked via HTTP: {run.checked_via_http}")
        print(f"  HTTP requests:         {run.http_requests}")
        print(f"  changed:               {len(run.changed)}")
        print(f"  skipped by threshold:  {run.skipped}")
        print(f"  errors:                {len(run.errors)}")

    total_requests = sum(run.http_requests for run in runs)
    no_threshold_cost = len(runs) * len(hotlist)
    print(f"\ntotal HTTP requests over the month: {total_requests}")
    print(f"poll-everything cost would be:      >= {no_threshold_cost}")
    print(f"savings factor:                     "
          f"{no_threshold_cost / max(1, total_requests):.1f}x")

    # Show a slice of the final report.
    print("\n== report excerpt ==")
    for line in last.report_html.splitlines():
        if "changed" in line and "<LI>" in line:
            print(line[:120])
            break
    print("\npersonal_tracking: OK")


if __name__ == "__main__":
    main()
