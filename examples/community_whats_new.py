#!/usr/bin/env python3
"""Community tracking: fixed pages, a central tracker, and a crawler.

Recreates the Section 8.2/8.3 extensions:

* a **fixed-page collection** auto-archives a set of community URLs the
  moment they change and publishes a "What's New" page;
* a **central tracker** polls each page once no matter how many users
  subscribed (the economy-of-scale argument);
* a **crawl root** turns one virtual-library bookmark into tracking of
  every page it links to.

Run:  python examples/community_whats_new.py
"""

from repro import DAY, WEEK, SimClock
from repro.aide.fixedpages import FixedPageCollection
from repro.aide.tracker import CentralTracker
from repro.core.snapshot.store import SnapshotStore
from repro.simclock import CronScheduler
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.web.sites import build_virtual_library
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator
from repro.workloads.schedule import WebEvolver


def main() -> None:
    clock = SimClock()
    network = Network(clock)
    cron = CronScheduler(clock)
    generator = PageGenerator(seed=5)

    # A small intranet of project pages that change at different rates.
    server = network.create_server("projects.att.com")
    evolver = WebEvolver(cron, seed=5)
    urls = []
    for index, period in enumerate((DAY, 2 * DAY, WEEK, 0, 0)):
        path = f"/project{index}.html"
        server.set_page(path, generator.page(title=f"Project {index}"))
        urls.append(f"http://projects.att.com{path}")
        if period:
            evolver.evolve(server, path, period,
                           mix=MutationMix.typical(seed=index))

    # A virtual-library page linking to the projects.
    server.set_page(
        "/library.html",
        "<HTML><BODY><H1>Project library</H1><UL>\n"
        + "\n".join(f'<LI><A HREF="/project{i}.html">Project {i}</A>'
                    for i in range(5))
        + "\n</UL></BODY></HTML>",
    )

    agent = UserAgent(network, clock, agent_name="AIDE-snapshot/1.0")
    store = SnapshotStore(clock, agent)

    # --- fixed pages (8.2) ---------------------------------------------
    collection = FixedPageCollection(store, clock, title="ATT What's New")
    for url in urls:
        collection.add_url(url)
    collection.schedule(cron, period=DAY)

    # --- central tracker with a crawl root (8.3) ------------------------
    tracker = CentralTracker(store, clock)
    for member in ("alice", "bob", "carol"):
        tracker.subscribe(member, urls[0])
    tracker.add_crawl_root("dave", "http://projects.att.com/library.html",
                           depth=1)
    tracker.schedule(cron, period=DAY)

    # Two weeks pass.
    cron.run_until(2 * WEEK)

    print("== What's New page (excerpt) ==")
    page = collection.whats_new_page()
    for line in page.split("<LI>")[1:4]:
        print("  *", line.split("&#183;")[0].strip()[:70])

    print("\n== Central tracker economy of scale ==")
    head_hits = [r for r in network.log if r.path == "/project0.html"
                 and r.method == "GET"]
    print(f"  subscribers to project0: 3 (+ fixed pages + crawler)")
    print(f"  total fetches of project0 over 14 days: {len(head_hits)}")

    print("\n== Dave's crawled report ==")
    for row in tracker.report_for("dave"):
        flag = "CHANGED" if row.changed_since_seen else "ok     "
        print(f"  [{flag}] {row.url}  ({row.via})")

    print("\n== Archive growth ==")
    print(f"  URLs archived: {store.url_count()}")
    print(f"  total bytes:   {store.total_bytes()}")
    print(f"  vs full copies: {store.full_copy_bytes()}")
    print("\ncommunity_whats_new: OK")


if __name__ == "__main__":
    main()
