#!/usr/bin/env python3
"""Error conditions: everything Section 3.1 says can go wrong, going wrong.

One hotlist, one run, every failure mode: a moved URL (with forwarding
pointer), a vanished page, a dead host, a robot-excluded area, a noisy
CGI counter, and finally a total network outage that aborts the run.

Run:  python examples/error_conditions.py
"""

from repro import DAY, Hotlist, SimClock, W3Newer
from repro.core.w3newer.errors import UrlState
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.web.cgi import CounterScript
from repro.web.client import UserAgent
from repro.web.network import Network


def main() -> None:
    clock = SimClock()
    network = Network(clock)
    server = network.create_server("flaky.com")
    server.set_page("/fine.html", "<P>perfectly healthy page.</P>")
    server.set_page("/old-home.html", "<P>x</P>")
    server.add_redirect("/old-home.html", "http://flaky.com/new-home.html")
    server.set_page("/new-home.html", "<P>moved here.</P>")
    server.set_page("/doomed.html", "<P>soon gone.</P>")
    server.remove_page("/doomed.html", status=410)
    server.set_robots_txt("User-agent: *\nDisallow: /private/\n")
    server.set_page("/private/secret.html", "<P>no robots.</P>")
    server.register_cgi("/cgi-bin/hits", CounterScript())

    hotlist = Hotlist.from_lines(
        "http://flaky.com/fine.html A fine page\n"
        "http://flaky.com/old-home.html Moved page\n"
        "http://flaky.com/doomed.html Deleted page\n"
        "http://flaky.com/private/secret.html Robot-excluded page\n"
        "http://flaky.com/cgi-bin/hits Noisy counter\n"
        "http://dead.example/ Dead host\n"
    )
    agent = UserAgent(network, clock)
    tracker = W3Newer(
        clock, agent, hotlist,
        config=parse_threshold_config("Default 0\n"),
        # During the outage most URLs still answer from the status
        # cache without HTTP; only two need the wire, so abort after 2.
        abort_after_failures=2,
    )

    clock.advance(DAY)
    print("== run 1: individual failures ==")
    result = tracker.run()
    for outcome in result.outcomes:
        detail = outcome.error or outcome.moved_to or ""
        print(f"  {outcome.state.value:28s} {outcome.url}  {detail}")
    assert any(o.moved_to for o in result.outcomes), "redirect must surface"
    assert any(o.state is UrlState.ERROR and "410" in o.error
               for o in result.outcomes)
    assert any(o.state is UrlState.ROBOT_FORBIDDEN for o in result.outcomes)

    # The noisy counter: checked twice, "changes" every time (junk).
    clock.advance(DAY)
    second = tracker.run()
    counter = next(o for o in second.outcomes if "hits" in o.url)
    print(f"\nnoisy counter on run 2: {counter.state.value} (junk-mail problem)")

    # Run 3: the network goes away entirely -> abort, not a hang.
    clock.advance(DAY)
    network.unreachable = True
    print("\n== run 3: total outage ==")
    aborted = tracker.run()
    print(f"  aborted: {aborted.aborted}")
    assert aborted.aborted
    network.unreachable = False

    # Run 4: the world is back; the tracker recovers by itself.
    clock.advance(DAY)
    recovered = tracker.run()
    print(f"\nrun 4 after recovery: {len(recovered.errors)} hard errors "
          f"(dead host + deleted page)")
    print("\nerror_conditions: OK")


if __name__ == "__main__":
    main()
