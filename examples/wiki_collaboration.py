#!/usr/bin/env python3
"""WebWeaver: collaborative editing with per-reader diffs.

The paper's Section 1 scenario: a WikiWikiWeb clone where "content can
be modified anywhere on the page, and those changes may be too subtle
to notice" — unless HtmlDiff points them out.  Three collaborators edit
a design page; each reader gets differences relative to what *they*
last read, the "natural and simple extension" the paper proposes.

Run:  python examples/wiki_collaboration.py
"""

from repro import DAY, HOUR, SimClock
from repro.aide.webweaver import WebWeaver


def main() -> None:
    clock = SimClock()
    wiki = WebWeaver(clock)

    # Day 0: fred writes the design page.
    wiki.edit(
        "CacheDesign",
        "<H2>Goals</H2>\n"
        "<P>The cache must hold one thousand pages. Eviction is LRU.</P>\n"
        "<H2>OpenQuestions</H2>\n"
        "<P>Should robots bypass the cache entirely?</P>\n",
        author="fred",
    )
    # Alice reads it on day 0.
    wiki.render("CacheDesign", reader="alice")

    # Day 1: tom makes a subtle mid-page edit (LRU -> LFU!).
    clock.advance(DAY)
    wiki.edit(
        "CacheDesign",
        "<H2>Goals</H2>\n"
        "<P>The cache must hold one thousand pages. Eviction is LFU.</P>\n"
        "<H2>OpenQuestions</H2>\n"
        "<P>Should robots bypass the cache entirely?</P>\n",
        author="tom",
    )

    # Day 2: carol appends a resolved question and starts a new page.
    clock.advance(DAY)
    wiki.edit(
        "CacheDesign",
        "<H2>Goals</H2>\n"
        "<P>The cache must hold one thousand pages. Eviction is LFU.</P>\n"
        "<H2>OpenQuestions</H2>\n"
        "<P>Should robots bypass the cache entirely?</P>\n"
        "<P>Resolved: consistency checks happen once per session. "
        "See BenchmarkPlan for numbers.</P>\n",
        author="carol",
    )
    clock.advance(HOUR)
    wiki.edit("BenchmarkPlan", "<P>Measure hit rate under the trace.</P>",
              author="carol")

    # --- RecentChanges --------------------------------------------------
    print("== RecentChanges ==")
    for info in wiki.recent_changes():
        print(f"  {info.name:15s} rev {info.revision} by {info.author}")

    # --- what changed since ALICE read it (day 0)? ----------------------
    print("\n== Changes for alice (read rev 1.1) ==")
    diff = wiki.diff_for_reader("alice", "CacheDesign")
    assert "<STRIKE>LRU.</STRIKE>" in diff.html, "the subtle edit must show"
    assert "<STRONG><I>LFU.</I></STRONG>" in diff.html
    for line in diff.html.splitlines():
        if "STRIKE" in line or "STRONG" in line:
            print(" ", line.strip()[:110])

    # Alice catches up; nothing is unseen afterwards.
    wiki.render("CacheDesign", reader="alice")
    wiki.render("BenchmarkPlan", reader="alice")
    assert wiki.unseen_changes("alice") == []

    # --- default diff: last edit only ------------------------------------
    print("\n== Last edit to CacheDesign (rev 1.2 -> 1.3) ==")
    last = wiki.diff("CacheDesign")
    assert "Resolved:" in last.html
    print("  additions:",
          sum(1 for _ in last.html.split("<STRONG><I>")) - 1)

    print("\nwiki_collaboration: OK")


if __name__ == "__main__":
    main()
