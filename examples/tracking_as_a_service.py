#!/usr/bin/env python3
"""Tracking as a service: hosted w3newer and Harvest-style notification.

Section 7's adoption lesson ("it is too time-consuming to install
w3newer on one's own machine") and Section 3.1's architectural sketch,
running side by side:

* three users upload their hotlists to the AIDE server's hosted
  tracker — no local installation, one shared check per page per cycle;
* the same pages are wired into a Harvest-style distributed repository
  with a regional cache, showing the push path and the replica serving.

Run:  python examples/tracking_as_a_service.py
"""

from repro.aide.harvest import DistributedRepository, RegionalCache
from repro.aide.hosted import HostedTrackerService
from repro.core.w3newer.thresholds import parse_threshold_config
from repro.simclock import DAY, CronScheduler, SimClock
from repro.web.client import UserAgent
from repro.web.network import Network
from repro.workloads.mutate import MutationMix
from repro.workloads.pagegen import PageGenerator
from repro.workloads.schedule import WebEvolver


def main() -> None:
    clock = SimClock()
    network = Network(clock)
    cron = CronScheduler(clock)
    generator = PageGenerator(seed=17)
    server = network.create_server("docs.org")
    evolver = WebEvolver(cron, seed=17)
    urls = []
    for index in range(6):
        path = f"/doc{index}.html"
        server.set_page(path, generator.page(title=f"Document {index}"))
        urls.append(f"http://docs.org{path}")
        if index < 4:  # four of six pages change every few days
            evolver.evolve(server, path, (index + 1) * DAY,
                           mix=MutationMix.typical(seed=index))

    # --- the hosted tracker (Section 7) --------------------------------
    service = HostedTrackerService(
        clock, UserAgent(network, clock),
        config=parse_threshold_config("Default 1d\n"),
    )
    aide_host = network.create_server("aide.att.com")
    aide_host.register_cgi("/cgi-bin/w3newer", service)
    browser = UserAgent(network, clock, agent_name="Mozilla/1.1N")

    # Users upload hotlists through the CGI — no local install.
    for user, picks in (("alice", urls[:4]), ("bob", urls[2:]),
                        ("carol", urls)):
        hotlist = "\n".join(picks).replace("&", "%26")
        browser.post(
            "http://aide.att.com/cgi-bin/w3newer",
            body=f"action=upload&user={user}&hotlist={hotlist}",
        )
    service.schedule(cron, period=DAY)

    # --- the Harvest repository (Section 3.1) --------------------------
    repo = DistributedRepository(clock, UserAgent(network, clock))
    cache = RegionalCache("nj-cache", repo, clock)
    for url in urls:
        cache.register_interest("alice", url)
    repo.schedule(cron, period=DAY)

    # Two weeks pass.
    cron.run_until(14 * DAY)

    print("== hosted tracker ==")
    print(f"  check cycles run:      {service.check_cycles}")
    print(f"  distinct URLs tracked: {len(service.tracked_urls())}")
    report = browser.get(
        "http://aide.att.com/cgi-bin/w3newer?action=report&user=alice"
    ).response
    changed_rows = report.body.count("[changed]")
    print(f"  alice's report: {changed_rows} changed entries")
    assert report.status == 200 and changed_rows >= 1

    print("\n== harvest notifications for alice ==")
    notices = cache.collect("alice")
    print(f"  notices waiting: {len(notices)}")
    assert notices
    replica = cache.page(urls[0])
    assert replica is not None
    print(f"  replica of {urls[0]}: {len(replica)} bytes, "
          "served without touching docs.org")

    print("\n== origin economy ==")
    origin_requests = sum(1 for r in network.log if r.host == "docs.org")
    users = 3
    naive = 14 * users * len(urls)
    print(f"  origin requests over two weeks: {origin_requests}")
    print(f"  naive per-user polling would be: {naive}")
    assert origin_requests < naive
    print("\ntracking_as_a_service: OK")


if __name__ == "__main__":
    main()
