#!/usr/bin/env python3
"""HtmlDiff gallery: every presentation mode over the Figure 2 pages.

Runs HtmlDiff on the two USENIX-home-page versions from Figure 2 and
writes each presentation variant (merged, only-differences, reversed,
new-only) plus a line-diff baseline to ``/tmp/aide-gallery/`` so they
can be opened in a browser.

Run:  python examples/htmldiff_gallery.py
"""

import os

from repro import HtmlDiffOptions, PresentationMode, html_diff
from repro.baselines.linediff import line_diff_html, render_as_page
from repro.web.sites import usenix_home_v1, usenix_home_v2

OUT_DIR = "/tmp/aide-gallery"


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    old, new = usenix_home_v1(), usenix_home_v2()

    outputs = {}
    for mode in PresentationMode:
        options = HtmlDiffOptions(mode=mode)
        result = html_diff(old, new, options)
        outputs[mode.value] = result
        path = os.path.join(OUT_DIR, f"usenix-{mode.value}.html")
        with open(path, "w") as handle:
            handle.write(result.html)
        print(f"{mode.value:18s} -> {path}  "
              f"({result.difference_count} differences, "
              f"density {result.change_density:.0%})")

    # The line-diff baseline, for contrast.
    report = line_diff_html(old, new)
    baseline_path = os.path.join(OUT_DIR, "usenix-linediff.html")
    with open(baseline_path, "w") as handle:
        handle.write(render_as_page(report))
    print(f"{'unix-diff':18s} -> {baseline_path}  "
          f"({report.deleted_lines} del / {report.added_lines} add lines)")

    merged = outputs["merged"]
    assert "<STRIKE>" in merged.html
    assert "<STRONG><I>" in merged.html
    assert "aidediff1" in merged.html
    print("\nhtmldiff_gallery: OK")


if __name__ == "__main__":
    main()
