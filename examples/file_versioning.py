#!/usr/bin/env python3
"""File versioning with the aide CLI: §8.1 on your own documents.

The paper's server-side interface (rlog/co/rcsdiff CGIs over RCS files)
works just as well on local documents.  This example drives the ``aide``
command-line tool programmatically over a temp directory: check a page
in three times, list its history, retrieve an old revision, and render
the HtmlDiff between two revisions — the exact workflow the §8.1 CGIs
expose over HTTP.

Run:  python examples/file_versioning.py
"""

import io
import os
import sys
import tempfile
from contextlib import redirect_stderr, redirect_stdout

from repro.cli import main

VERSIONS = [
    "<HTML><BODY>\n"
    "<H1>Release notes</H1>\n"
    "<P>Version 1.0 ships the tracker and the snapshot service.</P>\n"
    "</BODY></HTML>\n",
    "<HTML><BODY>\n"
    "<H1>Release notes</H1>\n"
    "<P>Version 1.0 ships the tracker and the snapshot service.</P>\n"
    "<P>Version 1.1 adds the HTML-aware comparator.</P>\n"
    "</BODY></HTML>\n",
    "<HTML><BODY>\n"
    "<H1>Release notes</H1>\n"
    "<P>Version 1.0 ships the tracker and the snapshot facility.</P>\n"
    "<P>Version 1.1 adds the HTML-aware comparator.</P>\n"
    "<P>Version 1.2 adds hosted tracking.</P>\n"
    "</BODY></HTML>\n",
]


def run(argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


def main_example() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        page = os.path.join(tmp, "notes.html")

        # --- three check-ins -------------------------------------------
        for index, contents in enumerate(VERSIONS, start=1):
            with open(page, "w") as handle:
                handle.write(contents)
            code, _, err = run(["ci", page, "-m", f"edit {index}",
                                "--author", "fred"])
            assert code == 0, err
            print(err.strip())

        # An unchanged check-in is refused, like real ci.
        code, _, err = run(["ci", page])
        assert code == 1
        print(err.strip())

        # --- history -----------------------------------------------------
        code, out, _ = run(["rlog", page])
        assert code == 0
        print("\n== rlog ==")
        for line in out.splitlines()[:8]:
            print(" ", line)
        assert "revision 1.3" in out

        # --- retrieve an old revision -------------------------------------
        code, out, _ = run(["co", page, "-r", "1.1"])
        assert code == 0
        assert "snapshot service" in out
        assert "comparator" not in out
        print("\n== co -r 1.1 == (first revision retrieved)")

        # --- text diff and HtmlDiff ---------------------------------------
        code, out, _ = run(["rcsdiff", page, "-r", "1.1", "-r", "1.3"])
        assert code == 1  # differences found
        print("\n== rcsdiff 1.1 -> 1.3 (unified) ==")
        for line in out.splitlines():
            if line.startswith(("+", "-")) and not line.startswith(("+++", "---")):
                print(" ", line[:76])

        code, out, _ = run(["rcsdiff", page, "-r", "1.1", "-r", "1.3", "--html"])
        assert code == 1
        assert "<STRIKE>" in out and "<STRONG><I>" in out
        print("\n== rcsdiff --html == (merged page generated, "
              f"{len(out)} bytes)")

    print("\nfile_versioning: OK")


if __name__ == "__main__":
    main_example()
