"""Sentence segmentation of HTML text runs.

The paper's unit of comparison is the *sentence*: "a sequence of words
and certain (non-sentence-breaking) markups... A 'sentence' contains at
most one English sentence, but may be a fragment of an English
sentence."  Text between markups is therefore split on sentence-final
punctuation, and each piece contributes its whitespace-separated words.

Inside ``<PRE>`` whitespace is content, so preformatted text is split
into *lines*, each line one "sentence" whose words include the exact
spacing (we keep each line as a single word so indentation changes are
detected).
"""

from __future__ import annotations

import re
from typing import List

from .entities import decode_entities

__all__ = ["split_sentences", "split_words", "split_preformatted"]

# A sentence ends at . ! or ? (possibly followed by closing quotes or
# parens) when followed by whitespace.  Abbreviation detection is
# deliberately absent: the paper's matcher tolerates fragments, so an
# over-split costs little.
_SENTENCE_END_RE = re.compile(r"(?<=[.!?])[\"')\]]*\s+")
_WS_RE = re.compile(r"\s+")


def split_words(text: str) -> List[str]:
    """Whitespace-separated words of a text run, entities decoded.

    Words compare exactly (weight 1 in the sentence LCS), so decoding
    entities first makes ``&amp;`` equal to ``&``.
    """
    return [w for w in _WS_RE.split(decode_entities(text)) if w]


def split_sentences(text: str) -> List[List[str]]:
    """Split a text run into sentences, each a list of words.

    >>> split_sentences("One two. Three!")
    [['One', 'two.'], ['Three!']]
    """
    sentences: List[List[str]] = []
    for piece in _SENTENCE_END_RE.split(text):
        words = split_words(piece)
        if words:
            sentences.append(words)
    return sentences


def split_preformatted(text: str) -> List[List[str]]:
    """Split ``<PRE>`` content into per-line single-word sentences.

    Each non-empty line is one sentence holding one word: the entire
    line, whitespace intact, so that indentation edits inside code
    listings are visible to the comparison.
    """
    out: List[List[str]] = []
    for line in decode_entities(text).split("\n"):
        if line.strip():
            out.append([line])
    return out
