"""Markup rectification.

Paper Section 5.3: "HtmlDiff can parse an HTML document and rectify
certain syntactic problems, such as mismatched or missing markups".
Hand-written 1995 HTML routinely omitted ``</P>`` and ``</LI>``, closed
elements in the wrong order, or closed elements never opened.  The
merged-page renderer needs balanced markup to splice highlight tags in
safely, so documents pass through this normalizer first.

The repair is purely stack-based (no grammar): implicit closes from
:data:`repro.html.model.AUTO_CLOSE`, out-of-order end tags close the
intervening elements, stray end tags are dropped, and everything still
open at end-of-document is closed.
"""

from __future__ import annotations

from typing import List, Sequence

from .lexer import Node, Tag
from .model import AUTO_CLOSE, is_empty_tag

__all__ = ["repair_nodes", "RepairStats"]


class RepairStats:
    """Counts of the fixes applied, for diagnostics and tests."""

    def __init__(self) -> None:
        self.implicit_closes = 0
        self.stray_end_tags_dropped = 0
        self.unclosed_at_eof = 0
        self.out_of_order_closes = 0

    @property
    def total(self) -> int:
        return (
            self.implicit_closes
            + self.stray_end_tags_dropped
            + self.unclosed_at_eof
            + self.out_of_order_closes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RepairStats(implicit={self.implicit_closes}, "
            f"stray={self.stray_end_tags_dropped}, "
            f"eof={self.unclosed_at_eof}, "
            f"reorder={self.out_of_order_closes})"
        )


def _synthetic_close(name: str) -> Tag:
    return Tag(name=name, closing=True, raw=f"</{name}>")


def repair_nodes(nodes: Sequence[Node], stats: RepairStats = None,
                 budget=None) -> List[Node]:
    """Return a balanced copy of ``nodes``.

    Every start tag of a non-empty element ends up with exactly one
    matching end tag, properly nested.  Text, comments and declarations
    pass through untouched.

    An optional hardening ``budget`` (``HtmlBudget`` from
    ``repro.web.guards``) caps the open-element stack depth: a tag bomb
    raises the nesting-depth guard error instead of building a
    million-entry stack and a doubled output list.
    """
    if stats is None:
        stats = RepairStats()
    out: List[Node] = []
    stack: List[str] = []  # open element names, innermost last

    for node in nodes:
        if not isinstance(node, Tag):
            out.append(node)
            continue
        name = node.name
        if not node.closing:
            implicit = AUTO_CLOSE.get(name)
            if implicit:
                while stack and stack[-1] in implicit:
                    out.append(_synthetic_close(stack[-1]))
                    stack.pop()
                    stats.implicit_closes += 1
            out.append(node)
            if not is_empty_tag(name):
                stack.append(name)
                if budget is not None:
                    budget.check_depth(len(stack))
            continue
        # End tag.
        if is_empty_tag(name) or name not in stack:
            stats.stray_end_tags_dropped += 1
            continue
        while stack[-1] != name:
            out.append(_synthetic_close(stack[-1]))
            stack.pop()
            stats.out_of_order_closes += 1
        stack.pop()
        out.append(node)

    while stack:
        out.append(_synthetic_close(stack[-1]))
        stack.pop()
        stats.unclosed_at_eof += 1
    return out
