"""Character entity handling for mid-1990s HTML.

HtmlDiff compares words textually, so ``&amp;`` and a literal ``&`` in
two versions of a page must compare equal; the merged-page renderer must
also re-escape text it wraps in highlight markup.  Only the HTML 2.0
named entities plus numeric references are supported — that is what the
paper's corpus used.
"""

from __future__ import annotations

import re
from typing import Dict

__all__ = ["decode_entities", "encode_entities", "NAMED_ENTITIES"]

#: The HTML 2.0 named character entities (ISO 8859-1 subset that 1995-era
#: documents actually used, plus the structural four).
NAMED_ENTITIES: Dict[str, str] = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "nbsp": " ",
    "copy": "©",
    "reg": "®",
    "agrave": "à",
    "aacute": "á",
    "eacute": "é",
    "egrave": "è",
    "iacute": "í",
    "oacute": "ó",
    "uacute": "ú",
    "ntilde": "ñ",
    "ouml": "ö",
    "uuml": "ü",
    "auml": "ä",
    "szlig": "ß",
    "ccedil": "ç",
    "middot": "·",
    "sect": "§",
    "para": "¶",
}

_ENTITY_RE = re.compile(r"&(#(?:\d+|[xX][0-9a-fA-F]+)|[a-zA-Z][a-zA-Z0-9]*);?")


def decode_entities(text: str) -> str:
    """Replace entity references with their characters.

    Unknown named entities are left verbatim (browsers of the era did
    the same), as are malformed numeric references.
    """

    def _replace(match: re.Match) -> str:
        body = match.group(1)
        if body.startswith("#"):
            try:
                if body[1:2] in ("x", "X"):
                    code = int(body[2:], 16)
                else:
                    code = int(body[1:])
                return chr(code)
            except (ValueError, OverflowError):
                return match.group(0)
        replacement = NAMED_ENTITIES.get(body.lower())
        return replacement if replacement is not None else match.group(0)

    return _ENTITY_RE.sub(_replace, text)


def encode_entities(text: str, quote: bool = False) -> str:
    """Escape characters that would be misread as markup.

    ``quote=True`` additionally escapes double quotes, for use inside
    attribute values.
    """
    out = (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )
    if quote:
        out = out.replace('"', "&quot;")
    return out
