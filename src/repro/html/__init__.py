"""HTML substrate: lexing, tag model, sentence segmentation, repair.

HtmlDiff's document model (paper Section 5.1) is built from these
pieces: the lexer produces a flat node stream, the model classifies
markups as sentence-breaking / content-defining, the sentence splitter
carves text runs into the comparison units, and the repairer balances
real-world sloppy markup before the merged page is generated.
"""

from .entities import decode_entities, encode_entities
from .lexer import Comment, Declaration, Node, Tag, Text, tokenize_html
from .model import (
    CONTENT_DEFINING_TAGS,
    EMPTY_TAGS,
    PRESERVED_WHITESPACE_TAGS,
    SENTENCE_BREAKING_TAGS,
    is_content_defining,
    is_empty_tag,
    is_sentence_breaking,
)
from .repair import RepairStats, repair_nodes
from .sentences import split_preformatted, split_sentences, split_words
from .serializer import serialize_nodes

__all__ = [
    "decode_entities",
    "encode_entities",
    "Comment",
    "Declaration",
    "Node",
    "Tag",
    "Text",
    "tokenize_html",
    "CONTENT_DEFINING_TAGS",
    "EMPTY_TAGS",
    "PRESERVED_WHITESPACE_TAGS",
    "SENTENCE_BREAKING_TAGS",
    "is_content_defining",
    "is_empty_tag",
    "is_sentence_breaking",
    "RepairStats",
    "repair_nodes",
    "split_preformatted",
    "split_sentences",
    "split_words",
    "serialize_nodes",
]
