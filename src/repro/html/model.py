"""Tag classification: the paper's document model.

Section 5.1 views an HTML document as "a sequence of sentences and
'sentence-breaking' markups (such as <P>, <HR>, <LI>, or <H1>) where a
'sentence' is a sequence of words and certain (non-sentence-breaking)
markups (such as <B> or <A>)".  Separately, some markups are
"content-defining" — images and hypertext references — and those count
toward sentence length and are highlighted when changed, while purely
presentational markups are not.

These sets reflect HTML 2.0 / early-Netscape-extension vocabulary, which
is the language the paper's corpus was written in.
"""

from __future__ import annotations

from .lexer import Tag

__all__ = [
    "SENTENCE_BREAKING_TAGS",
    "CONTENT_DEFINING_TAGS",
    "EMPTY_TAGS",
    "PRESERVED_WHITESPACE_TAGS",
    "AUTO_CLOSE",
    "is_sentence_breaking",
    "is_content_defining",
    "is_empty_tag",
]

#: Markups that terminate the current sentence.  Structural / block
#: elements: paragraphs, headings, lists, rules, tables, forms.
SENTENCE_BREAKING_TAGS = frozenset({
    "HTML", "HEAD", "BODY", "TITLE",
    "H1", "H2", "H3", "H4", "H5", "H6",
    "P", "BR", "HR",
    "UL", "OL", "DL", "LI", "DT", "DD", "DIR", "MENU",
    "PRE", "BLOCKQUOTE", "ADDRESS", "CENTER", "DIV",
    "TABLE", "TR", "TD", "TH", "CAPTION",
    "FORM", "SELECT", "OPTION", "TEXTAREA",
    "MAP", "AREA", "FRAME", "FRAMESET", "META", "LINK", "BASE",
    "ISINDEX", "NEXTID", "SCRIPT", "STYLE",
})

#: Markups that define content rather than presentation; they count
#: toward sentence length and changes to them are highlighted.
CONTENT_DEFINING_TAGS = frozenset({
    "A", "IMG", "INPUT", "APPLET", "EMBED", "OBJECT", "AREA",
})

#: Tags with no closing counterpart in this era's HTML.
EMPTY_TAGS = frozenset({
    "BR", "HR", "IMG", "INPUT", "META", "LINK", "BASE",
    "ISINDEX", "NEXTID", "AREA", "PARAM",
})

#: Inside these, whitespace carries content (paper: "Whitespace in a
#: document does not provide any content (except perhaps inside a
#: <PRE>)").
PRESERVED_WHITESPACE_TAGS = frozenset({"PRE", "TEXTAREA", "XMP", "LISTING"})

#: Implicit end tags: opening the key closes any open element in the
#: value set (stack-based repair uses this).
AUTO_CLOSE = {
    "LI": frozenset({"LI"}),
    "DT": frozenset({"DT", "DD"}),
    "DD": frozenset({"DT", "DD"}),
    "P": frozenset({"P"}),
    "TR": frozenset({"TR", "TD", "TH"}),
    "TD": frozenset({"TD", "TH"}),
    "TH": frozenset({"TD", "TH"}),
    "OPTION": frozenset({"OPTION"}),
    "H1": frozenset({"P"}),
    "H2": frozenset({"P"}),
    "H3": frozenset({"P"}),
    "H4": frozenset({"P"}),
    "H5": frozenset({"P"}),
    "H6": frozenset({"P"}),
}


def is_sentence_breaking(tag: Tag) -> bool:
    """Whether this markup ends the current sentence."""
    return tag.name in SENTENCE_BREAKING_TAGS


def is_content_defining(tag: Tag) -> bool:
    """Whether this markup counts as content (paper Section 5.1).

    Only opening tags count — ``</A>`` carries no HREF, and counting it
    would double-weight every anchor in the sentence-length metric.
    """
    return tag.name in CONTENT_DEFINING_TAGS and not tag.closing


def is_empty_tag(name: str) -> bool:
    """Whether the tag takes no end tag in 1995-era HTML."""
    return name.upper() in EMPTY_TAGS
