"""A lexical analyzer for 1995-era HTML.

Paper Section 5.1: "A simple lexical analysis of an HTML document
creates the token sequence and converts the case of the markup name and
associated (variable,value) pairs to uppercase; parsing is not
required."  This module supplies that lexical pass: it splits a document
into tags, text runs, comments, and declarations without building a
tree.  Downstream, :mod:`repro.core.htmldiff.tokenizer` groups these
nodes into sentences and sentence-breaking markups.

Each node keeps its raw source slice so serialization can reproduce the
original byte-for-byte; normalized forms (used for comparison) are
computed on demand.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

__all__ = ["Tag", "Text", "Comment", "Declaration", "Node", "tokenize_html",
           "iter_nodes"]

_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9._\-]*")
_WS_RE = re.compile(r"\s+")


@dataclass(frozen=True)
class Tag:
    """A start or end tag, with parsed attributes.

    ``attrs`` preserves source order and case; ``name`` is stored
    uppercase (the lexer's canonical case, per the paper).  ``raw`` is
    the exact source text including angle brackets.
    """

    name: str
    attrs: Tuple[Tuple[str, Optional[str]], ...] = ()
    closing: bool = False
    raw: str = ""

    @property
    def normalized(self) -> str:
        """Comparison key: case-folded, whitespace-collapsed, attributes
        sorted — per the paper, markups "must be identical (modulo
        whitespace, case, and reordering of (variable,value) pairs)".
        """
        parts = [("/" if self.closing else "") + self.name]
        for key, value in sorted(self.attrs, key=lambda kv: (kv[0].upper(), kv[1] or "")):
            if value is None:
                parts.append(key.upper())
            else:
                parts.append(f"{key.upper()}={value.upper()}")
        return "<" + " ".join(parts) + ">"

    def attr(self, name: str) -> Optional[str]:
        """First value of an attribute, case-insensitively (None if absent
        or valueless)."""
        wanted = name.upper()
        for key, value in self.attrs:
            if key.upper() == wanted:
                return value
        return None

    def has_attr(self, name: str) -> bool:
        wanted = name.upper()
        return any(key.upper() == wanted for key, value in self.attrs)

    def __str__(self) -> str:
        return self.raw or self.normalized


@dataclass(frozen=True)
class Text:
    """A run of character data between tags (entities not yet decoded)."""

    data: str

    def __str__(self) -> str:
        return self.data


@dataclass(frozen=True)
class Comment:
    """``<!-- ... -->`` — ignored by comparison, preserved by output."""

    data: str
    raw: str = ""

    def __str__(self) -> str:
        return self.raw or f"<!--{self.data}-->"


@dataclass(frozen=True)
class Declaration:
    """``<!DOCTYPE ...>`` and friends."""

    raw: str

    def __str__(self) -> str:
        return self.raw


Node = Union[Tag, Text, Comment, Declaration]


def _parse_attrs(body: str, budget=None) -> Tuple[Tuple[str, Optional[str]], ...]:
    """Parse the attribute region of a start tag.

    Handles ``name``, ``name=value``, ``name="value"``, ``name='value'``
    in any mix, tolerating sloppy whitespace — 1995 HTML was hand-typed.
    An optional hardening ``budget`` caps attributes per tag (the
    attr-bomb guard); it is charged as the list grows so a pathological
    tag aborts early instead of being materialized first.
    """
    attrs: List[Tuple[str, Optional[str]]] = []
    pos = 0
    length = len(body)
    while pos < length:
        ws = _WS_RE.match(body, pos)
        if ws:
            pos = ws.end()
        if pos >= length:
            break
        name_match = _NAME_RE.match(body, pos)
        if not name_match:
            pos += 1  # skip stray characters rather than failing
            continue
        name = name_match.group(0)
        pos = name_match.end()
        ws = _WS_RE.match(body, pos)
        if ws:
            pos = ws.end()
        if pos < length and body[pos] == "=":
            pos += 1
            ws = _WS_RE.match(body, pos)
            if ws:
                pos = ws.end()
            if pos < length and body[pos] in ("'", '"'):
                quote = body[pos]
                end = body.find(quote, pos + 1)
                if end == -1:
                    value = body[pos + 1:]
                    pos = length
                else:
                    value = body[pos + 1:end]
                    pos = end + 1
            else:
                end = pos
                while end < length and not body[end].isspace():
                    end += 1
                value = body[pos:end]
                pos = end
            attrs.append((name, value))
        else:
            attrs.append((name, None))
        if budget is not None:
            budget.check_attrs(len(attrs))
    return tuple(attrs)


def tokenize_html(source: str, budget=None) -> List[Node]:
    """Lex an HTML document into a flat node list.

    Never raises on malformed input: unterminated tags become text, junk
    inside tags is skipped.  Robustness matters more than strictness —
    w3newer and snapshot feed this whatever the wire delivered.

    The one exception is an explicit hardening ``budget`` (an
    ``HtmlBudget`` from ``repro.web.guards``): token-count and
    attribute caps raise its guard errors, turning markup bombs into
    quarantine verdicts instead of memory floods.  Without a budget
    (the default) behavior is exactly the legacy never-raises contract.
    """
    return list(iter_nodes(source, budget=budget))


def iter_nodes(source: str, budget=None) -> Iterator[Node]:
    """Streaming form of :func:`tokenize_html`."""

    def emit(node: Node) -> Node:
        if budget is not None:
            budget.charge_token()
        return node

    pos = 0
    length = len(source)
    while pos < length:
        lt = source.find("<", pos)
        if lt == -1:
            yield emit(Text(source[pos:]))
            return
        if lt > pos:
            yield emit(Text(source[pos:lt]))
        if source.startswith("<!--", lt):
            end = source.find("-->", lt + 4)
            if end == -1:
                yield emit(Comment(source[lt + 4:], raw=source[lt:]))
                return
            yield emit(Comment(source[lt + 4:end], raw=source[lt:end + 3]))
            pos = end + 3
            continue
        if source.startswith("<!", lt):
            end = source.find(">", lt)
            if end == -1:
                yield emit(Text(source[lt:]))
                return
            yield emit(Declaration(source[lt:end + 1]))
            pos = end + 1
            continue
        end = source.find(">", lt)
        if end == -1:
            # Unterminated tag: emit as literal text, as browsers did.
            yield emit(Text(source[lt:]))
            return
        inner = source[lt + 1:end]
        closing = inner.startswith("/")
        if closing:
            inner = inner[1:]
        name_match = _NAME_RE.match(inner.strip())
        if not name_match:
            # "<>" or "< 3" — not markup; literal text.
            yield emit(Text(source[lt:end + 1]))
            pos = end + 1
            continue
        name = name_match.group(0).upper()
        attr_body = inner.strip()[name_match.end():]
        attrs = _parse_attrs(attr_body, budget=budget) if not closing else ()
        yield emit(Tag(name=name, attrs=attrs, closing=closing, raw=source[lt:end + 1]))
        pos = end + 1
