"""Node stream back to HTML text.

Serialization reproduces each node's raw source where available (the
lexer preserves it), so lex → serialize is the identity on well-formed
input; synthetic nodes (repair closes, HtmlDiff highlight markup) render
from their normalized form.
"""

from __future__ import annotations

from typing import Iterable

from .lexer import Node

__all__ = ["serialize_nodes"]


def serialize_nodes(nodes: Iterable[Node]) -> str:
    """Concatenate the textual form of every node."""
    return "".join(str(node) for node in nodes)
