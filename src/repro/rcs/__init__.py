"""Revision Control System (RCS) reimplementation.

The version substrate under the snapshot facility: reverse-delta
archives with datestamped trunk revisions, plus the ``rlog`` and
``rcsdiff`` views that Section 8.1's server-side CGIs expose.
"""

from .archive import RcsArchive, RevisionInfo, UnknownRevision
from .rcsdiff import rcsdiff_text
from .rcsfile import RcsParseError, parse_rcsfile, serialize_rcsfile
from .rlog import rlog_html, rlog_text

__all__ = [
    "RcsArchive",
    "RevisionInfo",
    "UnknownRevision",
    "rcsdiff_text",
    "RcsParseError",
    "parse_rcsfile",
    "serialize_rcsfile",
    "rlog_html",
    "rlog_text",
]
