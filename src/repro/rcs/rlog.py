"""rlog: render an archive's revision history.

Section 8.1: "A CGI script (/cgi-bin/rlog) converts the output of rlog
into HTML, showing the user a history of the document with links to
view any specific version or to see the differences between two
versions."  Both the plain-text form (real rlog's shape) and the HTML
form are produced here; the CGI wrapper lives in
:mod:`repro.aide.serverside`.
"""

from __future__ import annotations

from typing import Optional

from ..html.entities import encode_entities
from .archive import RcsArchive

__all__ = ["rlog_text", "rlog_html"]


def rlog_text(archive: RcsArchive) -> str:
    """Plain-text revision log, newest first (like ``rlog file,v``)."""
    lines = [
        f"RCS file: {archive.name},v",
        f"head: {archive.head_revision or '(empty)'}",
        f"total revisions: {archive.revision_count}",
        "description:",
        "----------------------------",
    ]
    for info in reversed(archive.revisions()):
        lines.append(f"revision {info.number}")
        lines.append(f"date: {info.date_string};  author: {info.author};")
        lines.append(info.log or "*** empty log message ***")
        lines.append("----------------------------")
    lines.append("=" * 26)
    return "\n".join(lines) + "\n"


def rlog_html(
    archive: RcsArchive,
    co_url: str = "/cgi-bin/co",
    rcsdiff_url: str = "/cgi-bin/rcsdiff",
    file_param: Optional[str] = None,
) -> str:
    """Revision history as HTML with view/diff links.

    Each revision row links to ``co`` (view that version); consecutive
    pairs link to ``rcsdiff`` (view the differences).
    """
    name = file_param if file_param is not None else archive.name
    safe_name = encode_entities(name, quote=True)
    rows = []
    infos = list(reversed(archive.revisions()))
    for idx, info in enumerate(infos):
        view = f'{co_url}?file={safe_name}&amp;rev={info.number}'
        row = (
            f'<LI><A HREF="{view}">{info.number}</A> '
            f"&#183; {info.date_string} &#183; {encode_entities(info.author)} "
            f"&#183; {encode_entities(info.log) or '(no log)'}"
        )
        if idx + 1 < len(infos):
            older = infos[idx + 1]
            diff = (
                f"{rcsdiff_url}?file={safe_name}"
                f"&amp;r1={older.number}&amp;r2={info.number}"
            )
            row += f' [<A HREF="{diff}">diff to {older.number}</A>]'
        rows.append(row)
    body = "".join(rows) or "<LI>(no revisions)"
    return (
        "<HTML><HEAD><TITLE>Revision history of "
        f"{encode_entities(name)}</TITLE></HEAD><BODY>"
        f"<H1>Revision history of {encode_entities(name)}</H1>"
        f"<UL>{body}</UL></BODY></HTML>"
    )
