"""rcsdiff: differences between stored revisions.

The Section 8.1 server-side interface displays differences between two
revisions; for ``.html`` files it delegates to HtmlDiff, otherwise it
produces the classic unified text diff rendered here.
"""

from __future__ import annotations

from typing import Optional

from ..diffcore.textdiff import unified_diff
from .archive import RcsArchive

__all__ = ["rcsdiff_text"]


def rcsdiff_text(
    archive: RcsArchive,
    rev_old: str,
    rev_new: Optional[str] = None,
) -> str:
    """Unified diff between two revisions (new defaults to the head)."""
    old_text = archive.checkout(rev_old)
    new_text = archive.checkout(rev_new)
    new_label = rev_new if rev_new is not None else (archive.head_revision or "head")
    return unified_diff(
        old_text.split("\n"),
        new_text.split("\n"),
        old_label=f"{archive.name} {rev_old}",
        new_label=f"{archive.name} {new_label}",
    )
