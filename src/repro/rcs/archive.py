"""An RCS archive: reverse-delta version storage (Tichy 1985).

The snapshot facility "uses RCS to store versions... subsequent requests
to remember the state of the page result in an RCS 'check-in' operation
that saves only the differences between the page and its previously
checked-in version" (Section 4.1).  The properties AIDE leans on, all
reproduced here:

* the head revision is stored in full; every older revision is a
  *reverse* edit script from its successor, so checking out the newest
  text (the common case) costs nothing;
* checking in text identical to the head creates **no** new revision —
  "the RCS ci command ensures that it is not saved if it is unchanged";
* each revision carries a datestamp, and a revision can be requested
  "as it existed at a particular time";
* revision numbers are 1.1, 1.2, 1.3, ... on the trunk (AIDE never
  branches).

Section 7 measures the other side of the reverse-delta bargain: storage
is cheap but "requesting a page as it existed at a particular time"
pays one delta application per revision between the head and the
target.  Two acceleration layers cap that cost without changing any
observable text:

* **keyframe checkpoints** — with ``keyframe_interval=K > 0``, every
  K-th revision keeps its full line list in memory when it stops being
  the head, so a checkout walks at most K-1 deltas from the nearest
  checkpoint instead of the whole chain.  Keyframes are derived data
  (reconstructible from the deltas); they are *not* counted in
  :meth:`size_bytes` and are rebuilt, not stored, when a ``,v`` file is
  parsed.
* **revision index** — revision-number lookup is a dict (O(1) instead
  of a scan), and :meth:`revision_at` bisects over the datestamps while
  they remain monotone, falling back to the paper-faithful linear scan
  the moment a clock runs backwards (Section 4.1's non-monotonic
  timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..diffcore.textdiff import (
    EditScript,
    apply_edit_script,
    make_edit_script,
    script_size,
)
from ..simclock import format_timestamp

__all__ = ["RcsArchive", "RevisionInfo", "UnknownRevision"]


class UnknownRevision(KeyError):
    """Requested revision number does not exist in the archive."""


@dataclass
class RevisionInfo:
    """Metadata of one revision (the rlog view)."""

    number: str
    date: int
    author: str
    log: str
    #: Serialized size of this revision's contribution to the archive:
    #: full text for the head, delta size otherwise.  Section 7's disk
    #: accounting sums these.
    stored_bytes: int = 0

    @property
    def date_string(self) -> str:
        return format_timestamp(self.date)


@dataclass
class _StoredRevision:
    info: RevisionInfo
    #: Reverse delta reconstructing THIS revision from its successor.
    #: None for the head (its text is stored whole).
    reverse_delta: Optional[EditScript] = None
    #: Full line list kept as a checkout checkpoint (keyframe); None for
    #: ordinary revisions.  Derived data — never serialized.
    keyframe_lines: Optional[List[str]] = field(default=None, repr=False)


class RcsArchive:
    """One RCS file (`,v` in real RCS), for one URL's page history.

    ``keyframe_interval=0`` (the default) is the paper's exact cost
    model; any positive K bounds checkout chains at K-1 deltas.
    """

    def __init__(self, name: str = "", keyframe_interval: int = 0) -> None:
        if keyframe_interval < 0:
            raise ValueError(
                f"keyframe_interval must be >= 0, got {keyframe_interval}"
            )
        self.name = name
        self.keyframe_interval = keyframe_interval
        self._head_lines: List[str] = []
        self._revisions: List[_StoredRevision] = []  # oldest first
        self._number_index: Dict[str, int] = {}
        #: Datestamps in revision order, valid for bisect only while
        #: they are non-decreasing.
        self._dates: List[int] = []
        self._dates_monotonic = True
        # Instrumentation (surfaced through SnapshotStore.stats()).
        self.checkouts = 0
        self.delta_applications = 0
        self.keyframe_starts = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def head_revision(self) -> Optional[str]:
        if not self._revisions:
            return None
        return self._revisions[-1].info.number

    @property
    def revision_count(self) -> int:
        return len(self._revisions)

    def revisions(self) -> List[RevisionInfo]:
        """All revision metadata, oldest first."""
        return [stored.info for stored in self._revisions]

    def info(self, number: str) -> RevisionInfo:
        return self._stored(number).info

    def size_bytes(self) -> int:
        """Approximate on-disk size: head text + all reverse deltas +
        a small per-revision metadata overhead (RCS headers).

        Keyframes are excluded — they are reconstructible acceleration
        state, not archive storage (see :meth:`keyframe_bytes`)."""
        head = sum(len(line) + 1 for line in self._head_lines)
        deltas = sum(rev.info.stored_bytes for rev in self._revisions[:-1])
        metadata = 64 * len(self._revisions)
        return head + deltas + metadata

    def keyframe_bytes(self) -> int:
        """Memory held by keyframe checkpoints (0 when disabled)."""
        total = 0
        for stored in self._revisions:
            if stored.keyframe_lines is not None:
                total += sum(len(line) + 1 for line in stored.keyframe_lines)
        return total

    def keyframe_count(self) -> int:
        return sum(
            1 for stored in self._revisions
            if stored.keyframe_lines is not None
        )

    # ------------------------------------------------------------------
    # ci / co
    # ------------------------------------------------------------------
    def checkin(
        self,
        text: str,
        date: int,
        author: str = "aide",
        log: str = "",
    ) -> Tuple[str, bool]:
        """Check in new content; returns (revision number, changed).

        Identical content returns the existing head number with
        ``changed=False`` and stores nothing.
        """
        new_lines = text.split("\n")
        if self._revisions and new_lines == self._head_lines:
            return self._revisions[-1].info.number, False
        number = f"1.{len(self._revisions) + 1}"
        if self._revisions:
            # The old head becomes delta-reconstructible from the new.
            reverse = make_edit_script(new_lines, self._head_lines)
            old_head = self._revisions[-1]
            old_head.reverse_delta = reverse
            old_head.info.stored_bytes = script_size(reverse)
            if (
                self.keyframe_interval
                and (len(self._revisions) - 1) % self.keyframe_interval == 0
            ):
                # checkin never mutates a committed line list, so the
                # keyframe can share it instead of copying.
                old_head.keyframe_lines = self._head_lines
        info = RevisionInfo(
            number=number,
            date=date,
            author=author,
            log=log,
            stored_bytes=sum(len(line) + 1 for line in new_lines),
        )
        if self._dates and date < self._dates[-1]:
            self._dates_monotonic = False
        self._dates.append(date)
        self._number_index[number] = len(self._revisions)
        self._revisions.append(_StoredRevision(info=info, reverse_delta=None))
        self._head_lines = new_lines
        return number, True

    def drop_head(self, number: str) -> None:
        """Undo the most recent :meth:`checkin` (transaction rollback).

        Only the head can be dropped — the write-ahead log never needs
        to unwind anything older, and interior drops would invalidate
        the whole delta chain.  The previous revision is rebuilt from
        its reverse delta and becomes the head again, exactly as if the
        dropped check-in had never happened.
        """
        if not self._revisions:
            raise KeyError(f"no revisions to drop in {self.name or ',v'}")
        head = self._revisions[-1]
        if head.info.number != number:
            raise KeyError(
                f"cannot drop {number}: head is {head.info.number}"
            )
        self._revisions.pop()
        self._dates.pop()
        del self._number_index[number]
        if self._revisions:
            new_head = self._revisions[-1]
            if new_head.reverse_delta is not None:
                self._head_lines = apply_edit_script(
                    self._head_lines, new_head.reverse_delta
                )
                self.delta_applications += 1
            # Promote: the head stores its full text, no delta, and its
            # keyframe (derived acceleration state) is redundant.
            new_head.reverse_delta = None
            new_head.keyframe_lines = None
            new_head.info.stored_bytes = sum(
                len(line) + 1 for line in self._head_lines
            )
        else:
            self._head_lines = []
        self._dates_monotonic = all(
            self._dates[i] <= self._dates[i + 1]
            for i in range(len(self._dates) - 1)
        )

    def checkout(self, number: Optional[str] = None) -> str:
        """Reconstruct a revision's text (head by default).

        Walks reverse deltas back from the nearest full text — the head,
        or a keyframe checkpoint when ``keyframe_interval`` is set.
        """
        if not self._revisions:
            raise UnknownRevision("archive is empty")
        self.checkouts += 1
        if number is None:
            return "\n".join(self._head_lines)
        index = self._index_of(number)
        start, lines = self._nearest_full_text(index)
        # Walk backward: revision k is rebuilt by applying revision k's
        # reverse delta to revision k+1's text.
        for pos in range(start - 1, index - 1, -1):
            delta = self._revisions[pos].reverse_delta
            assert delta is not None  # only the head lacks one
            lines = apply_edit_script(lines, delta)
            self.delta_applications += 1
        return "\n".join(lines)

    def _nearest_full_text(self, index: int) -> Tuple[int, List[str]]:
        """(start index, full line list) to begin a backward walk from:
        the closest keyframe at or after ``index``, else the head."""
        last = len(self._revisions) - 1
        if self.keyframe_interval and index < last:
            k = self.keyframe_interval
            candidate = index + (-index % k)  # smallest multiple of k >= index
            if candidate < last:
                keyframe = self._revisions[candidate].keyframe_lines
                if keyframe is not None:
                    self.keyframe_starts += 1
                    return candidate, keyframe
        return last, self._head_lines

    def chain_length(self, number: str) -> int:
        """Delta applications a checkout of ``number`` costs right now
        (the §7 reconstruction-cost axis, without doing the work)."""
        index = self._index_of(number)
        start, _ = self._nearest_full_text(index)
        return start - index

    def checkout_at(self, date: int) -> Optional[str]:
        """Text of the newest revision dated at or before ``date``.

        None when the archive has nothing that old — "requesting a page
        as it existed at a particular time" (Section 4.1).
        """
        info = self.revision_at(date)
        if info is None:
            return None
        return self.checkout(info.number)

    def revision_at(
        self, date: int, policy: str = "past"
    ) -> Optional[RevisionInfo]:
        """The revision the datetime-negotiation ``policy`` selects.

        The semantics live in :func:`repro.memento.core.resolve_datetime`
        — one resolver shared with the TimeGate, the TimeMap client,
        and the federation layer, so "the page at time T" means the
        same revision at every layer.  Policies:

        * ``"past"`` (default, the paper's §2.2 behaviour): the newest
          revision whose datestamp is **<=** ``date``.  An
          exact-timestamp hit returns that revision (the newest one,
          if several share the stamp); a ``date`` before the first
          revision returns **None** — nothing that old is archived.
        * ``"nearest"``: minimal ``|datestamp - date|``; ties resolve
          to the older revision, and a ``date`` before the first
          revision returns the **first** revision.
        * ``"exact"``: only a revision stamped at precisely ``date``.

        Resolution is an O(log n) bisect while datestamps are monotone.
        The moment a clock runs backwards (Section 4.1's non-monotonic
        timestamps — ``checkin`` flips ``_dates_monotonic`` when a new
        revision's stamp precedes its predecessor's), every policy
        falls back to a linear scan with last-match-wins semantics, the
        paper-faithful behaviour: for ``"past"`` the scan keeps the
        *last revision in check-in order* whose stamp qualifies, which
        can differ from "globally newest stamp" precisely when the
        history is disordered.
        """
        from ..memento.core import resolve_datetime

        index = resolve_datetime(
            self._dates, date, policy=policy,
            monotonic=self._dates_monotonic,
        )
        if index is None:
            return None
        return self._revisions[index].info

    # ------------------------------------------------------------------
    # Keyframe maintenance
    # ------------------------------------------------------------------
    def set_keyframe_interval(self, interval: int) -> None:
        """Change the checkpoint spacing and rebuild checkpoints.

        One backward walk over the whole chain — O(revisions) delta
        applications — materializes every K-th revision.  ``0`` drops
        all keyframes (back to the paper's cost model).
        """
        if interval < 0:
            raise ValueError(f"keyframe_interval must be >= 0, got {interval}")
        if interval == self.keyframe_interval:
            return
        self.keyframe_interval = interval
        for stored in self._revisions:
            stored.keyframe_lines = None
        if not interval or len(self._revisions) < 2:
            return
        lines = self._head_lines
        for pos in range(len(self._revisions) - 2, -1, -1):
            delta = self._revisions[pos].reverse_delta
            assert delta is not None
            lines = apply_edit_script(lines, delta)
            if pos % interval == 0:
                self._revisions[pos].keyframe_lines = lines
        # The walk reused each reconstruction as the next step's input;
        # keyframes must not alias a list a later apply could observe —
        # apply_edit_script builds fresh lists, so sharing is safe.

    # ------------------------------------------------------------------
    # Bulk reconstruction
    # ------------------------------------------------------------------
    def iter_texts(self) -> Iterator[Tuple[RevisionInfo, str]]:
        """Yield (info, text) for every revision, oldest first.

        A single backward walk reconstructs all n revisions in O(n)
        delta applications — against n separate checkouts' O(n²) (or
        O(nK) with keyframes).  Used by full-copy accounting and the
        journal writer.
        """
        if not self._revisions:
            return
        texts: List[str] = ["\n".join(self._head_lines)]
        lines = self._head_lines
        for pos in range(len(self._revisions) - 2, -1, -1):
            delta = self._revisions[pos].reverse_delta
            assert delta is not None
            lines = apply_edit_script(lines, delta)
            texts.append("\n".join(lines))
        texts.reverse()
        for stored, text in zip(self._revisions, texts):
            yield stored.info, text

    # ------------------------------------------------------------------
    def _index_of(self, number: str) -> int:
        index = self._number_index.get(number)
        if index is None:
            raise UnknownRevision(number)
        return index

    def _stored(self, number: str) -> _StoredRevision:
        return self._revisions[self._index_of(number)]

    def _rebuild_lookup_state(self) -> None:
        """Recompute index/date structures after direct ``_revisions``
        surgery (the ,v parser builds archives that way)."""
        self._number_index = {
            stored.info.number: index
            for index, stored in enumerate(self._revisions)
        }
        self._dates = [stored.info.date for stored in self._revisions]
        self._dates_monotonic = all(
            earlier <= later
            for earlier, later in zip(self._dates, self._dates[1:])
        )
