"""An RCS archive: reverse-delta version storage (Tichy 1985).

The snapshot facility "uses RCS to store versions... subsequent requests
to remember the state of the page result in an RCS 'check-in' operation
that saves only the differences between the page and its previously
checked-in version" (Section 4.1).  The properties AIDE leans on, all
reproduced here:

* the head revision is stored in full; every older revision is a
  *reverse* edit script from its successor, so checking out the newest
  text (the common case) costs nothing;
* checking in text identical to the head creates **no** new revision —
  "the RCS ci command ensures that it is not saved if it is unchanged";
* each revision carries a datestamp, and a revision can be requested
  "as it existed at a particular time";
* revision numbers are 1.1, 1.2, 1.3, ... on the trunk (AIDE never
  branches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..diffcore.textdiff import (
    EditScript,
    apply_edit_script,
    make_edit_script,
    script_size,
)
from ..simclock import format_timestamp

__all__ = ["RcsArchive", "RevisionInfo", "UnknownRevision"]


class UnknownRevision(KeyError):
    """Requested revision number does not exist in the archive."""


@dataclass
class RevisionInfo:
    """Metadata of one revision (the rlog view)."""

    number: str
    date: int
    author: str
    log: str
    #: Serialized size of this revision's contribution to the archive:
    #: full text for the head, delta size otherwise.  Section 7's disk
    #: accounting sums these.
    stored_bytes: int = 0

    @property
    def date_string(self) -> str:
        return format_timestamp(self.date)


@dataclass
class _StoredRevision:
    info: RevisionInfo
    #: Reverse delta reconstructing THIS revision from its successor.
    #: None for the head (its text is stored whole).
    reverse_delta: Optional[EditScript] = None


class RcsArchive:
    """One RCS file (`,v` in real RCS), for one URL's page history."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._head_lines: List[str] = []
        self._revisions: List[_StoredRevision] = []  # oldest first

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def head_revision(self) -> Optional[str]:
        if not self._revisions:
            return None
        return self._revisions[-1].info.number

    @property
    def revision_count(self) -> int:
        return len(self._revisions)

    def revisions(self) -> List[RevisionInfo]:
        """All revision metadata, oldest first."""
        return [stored.info for stored in self._revisions]

    def info(self, number: str) -> RevisionInfo:
        return self._stored(number).info

    def size_bytes(self) -> int:
        """Approximate on-disk size: head text + all reverse deltas +
        a small per-revision metadata overhead (RCS headers)."""
        head = sum(len(line) + 1 for line in self._head_lines)
        deltas = sum(rev.info.stored_bytes for rev in self._revisions[:-1])
        metadata = 64 * len(self._revisions)
        return head + deltas + metadata

    # ------------------------------------------------------------------
    # ci / co
    # ------------------------------------------------------------------
    def checkin(
        self,
        text: str,
        date: int,
        author: str = "aide",
        log: str = "",
    ) -> Tuple[str, bool]:
        """Check in new content; returns (revision number, changed).

        Identical content returns the existing head number with
        ``changed=False`` and stores nothing.
        """
        new_lines = text.split("\n")
        if self._revisions and new_lines == self._head_lines:
            return self._revisions[-1].info.number, False
        number = f"1.{len(self._revisions) + 1}"
        if self._revisions:
            # The old head becomes delta-reconstructible from the new.
            reverse = make_edit_script(new_lines, self._head_lines)
            old_head = self._revisions[-1]
            old_head.reverse_delta = reverse
            old_head.info.stored_bytes = script_size(reverse)
        info = RevisionInfo(
            number=number,
            date=date,
            author=author,
            log=log,
            stored_bytes=sum(len(line) + 1 for line in new_lines),
        )
        self._revisions.append(_StoredRevision(info=info, reverse_delta=None))
        self._head_lines = new_lines
        return number, True

    def checkout(self, number: Optional[str] = None) -> str:
        """Reconstruct a revision's text (head by default).

        Walks reverse deltas from the head back to the requested
        revision — the cost model the paper's storage argument assumes.
        """
        if not self._revisions:
            raise UnknownRevision("archive is empty")
        if number is None:
            return "\n".join(self._head_lines)
        index = self._index_of(number)
        lines = self._head_lines
        # Walk backward: revision k is rebuilt by applying revision k's
        # reverse delta to revision k+1's text.
        for pos in range(len(self._revisions) - 2, index - 1, -1):
            delta = self._revisions[pos].reverse_delta
            assert delta is not None  # only the head lacks one
            lines = apply_edit_script(lines, delta)
        return "\n".join(lines)

    def checkout_at(self, date: int) -> Optional[str]:
        """Text of the newest revision dated at or before ``date``.

        None when the archive has nothing that old — "requesting a page
        as it existed at a particular time" (Section 4.1).
        """
        info = self.revision_at(date)
        if info is None:
            return None
        return self.checkout(info.number)

    def revision_at(self, date: int) -> Optional[RevisionInfo]:
        """Newest revision whose datestamp is <= ``date``."""
        best = None
        for stored in self._revisions:
            if stored.info.date <= date:
                best = stored.info
        return best

    # ------------------------------------------------------------------
    def _index_of(self, number: str) -> int:
        for index, stored in enumerate(self._revisions):
            if stored.info.number == number:
                return index
        raise UnknownRevision(number)

    def _stored(self, number: str) -> _StoredRevision:
        return self._revisions[self._index_of(number)]
