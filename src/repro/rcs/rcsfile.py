"""The RCS ``,v`` file format: serialize and parse archives.

Real RCS persists each archive as a ``file,v`` text file: an admin
header (``head``, ``access``, ``symbols``, ``locks``), per-revision
metadata paragraphs, and per-revision ``log``/``text`` sections where
the head's text is stored whole and every other revision's text is a
``diff -n`` edit script.  AIDE's repository directory is a tree of
these files; this module reads and writes the same shape so archives
survive process restarts (and can be eyeballed with ``cat``).

``@``-quoting follows RCS exactly: string payloads are wrapped in
``@...@`` with literal ``@`` doubled.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..diffcore.textdiff import EditCommand, EditScript, script_size
from .archive import RcsArchive, RevisionInfo, _StoredRevision

__all__ = ["serialize_rcsfile", "parse_rcsfile", "RcsParseError"]


class RcsParseError(ValueError):
    """The ,v text is not a valid archive serialization."""


def _quote(text: str) -> str:
    return "@" + text.replace("@", "@@") + "@"


def _format_script(script: EditScript) -> str:
    return "\n".join(cmd.serialize() for cmd in script)


def serialize_rcsfile(archive: RcsArchive) -> str:
    """Render an archive in the ,v shape."""
    revisions = archive.revisions()
    head = archive.head_revision or ""
    lines = [
        f"head\t{head};",
        "access;",
        "symbols;",
        "locks; strict;",
        f"comment\t{_quote('# ')};",
    ]
    if archive.keyframe_interval:
        # Checkpoint spacing survives the round trip; the checkpoints
        # themselves are derived data and are rebuilt by the parser.
        # Emitted only when enabled, so reference archives serialize
        # byte-identically to the historical format.
        lines.append(f"keyframes\t{archive.keyframe_interval};")
    lines.append("")
    # Metadata paragraphs, newest first (RCS order).
    for info in reversed(revisions):
        lines.append(f"{info.number}")
        lines.append(f"date\t{info.date};\tauthor {info.author or 'aide'};\tstate Exp;")
        lines.append("branches;")
        lines.append("next\t;")
        lines.append("")
    lines.append("")
    lines.append("desc")
    lines.append(_quote(archive.name))
    lines.append("")
    # Text sections, newest first: head whole, others as reverse deltas.
    for index in range(len(revisions) - 1, -1, -1):
        info = revisions[index]
        stored = archive._stored(info.number)
        lines.append("")
        lines.append(f"{info.number}")
        lines.append("log")
        lines.append(_quote(info.log))
        lines.append("text")
        if stored.reverse_delta is None:
            lines.append(_quote(archive.checkout(info.number)))
        else:
            lines.append(_quote(_format_script(stored.reverse_delta)))
    return "\n".join(lines) + "\n"


class _Reader:
    """Tokenizing cursor over ,v text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek_at_string(self) -> bool:
        self.skip_ws()
        return self.pos < len(self.text) and self.text[self.pos] == "@"

    def read_string(self) -> str:
        """Read an @...@ string, un-doubling @@."""
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != "@":
            raise RcsParseError(f"expected @string at offset {self.pos}")
        self.pos += 1
        out: List[str] = []
        while True:
            next_at = self.text.find("@", self.pos)
            if next_at == -1:
                raise RcsParseError("unterminated @string")
            out.append(self.text[self.pos:next_at])
            if self.text[next_at + 1:next_at + 2] == "@":
                out.append("@")
                self.pos = next_at + 2
                continue
            self.pos = next_at + 1
            return "".join(out)

    def read_word(self) -> str:
        self.skip_ws()
        match = re.compile(r"[^\s;@]+").match(self.text, self.pos)
        if not match:
            raise RcsParseError(f"expected word at offset {self.pos}")
        self.pos = match.end()
        return match.group(0)

    def skip_to_line_matching(self, pattern: re.Pattern) -> Optional[str]:
        """Advance past lines until one matches; return the match."""
        while self.pos < len(self.text):
            eol = self.text.find("\n", self.pos)
            if eol == -1:
                eol = len(self.text)
            line = self.text[self.pos:eol].strip()
            self.pos = eol + 1
            if pattern.fullmatch(line):
                return line
        return None


_REV_LINE = re.compile(r"\d+\.\d+")


def _parse_script(text: str) -> EditScript:
    """Parse a serialized diff -n script back into commands."""
    script: EditScript = []
    lines = text.split("\n")
    index = 0
    while index < len(lines):
        line = lines[index]
        index += 1
        if not line.strip():
            continue
        match = re.fullmatch(r"([ad])(\d+) (\d+)", line.strip())
        if not match:
            raise RcsParseError(f"bad edit command: {line!r}")
        kind, anchor, count = match.group(1), int(match.group(2)), int(match.group(3))
        if kind == "d":
            script.append(EditCommand("d", anchor, count))
        else:
            payload = tuple(lines[index:index + count])
            if len(payload) != count:
                raise RcsParseError("append command truncated")
            index += count
            script.append(EditCommand("a", anchor, count, payload))
    return script


def parse_rcsfile(text: str) -> RcsArchive:
    """Reconstruct an archive from ,v text.

    The parser is purpose-built for what :func:`serialize_rcsfile`
    emits (plus whitespace tolerance); it is not a general RCS reader.
    """
    reader = _Reader(text)

    # Admin header: head N.N;
    head_line = reader.skip_to_line_matching(re.compile(r"head\s+[\d.]+;|head\s*;"))
    if head_line is None:
        raise RcsParseError("missing head line")

    # Optional checkpoint spacing (absent in historical archives).
    keyframe_interval = 0
    keyframe_match = re.search(r"^keyframes\s+(\d+);$", text, re.MULTILINE)
    if keyframe_match:
        keyframe_interval = int(keyframe_match.group(1))

    # Revision metadata paragraphs.
    dates: Dict[str, int] = {}
    authors: Dict[str, str] = {}
    meta_re = re.compile(
        r"date\s+(\d+);\s*author ([^;]*);\s*state [^;]*;"
    )
    # Walk lines collecting "N.N" then its date line, until "desc".
    lines = text.split("\n")
    index = 0
    order_newest_first: List[str] = []
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped == "desc":
            break
        if _REV_LINE.fullmatch(stripped):
            number = stripped
            if index + 1 < len(lines):
                match = meta_re.match(lines[index + 1].strip())
                if match:
                    dates[number] = int(match.group(1))
                    authors[number] = match.group(2).strip()
                    order_newest_first.append(number)
                    index += 2
                    continue
        index += 1
    if not order_newest_first and "desc" not in text:
        raise RcsParseError("no revisions and no desc section")

    # desc string gives the archive name.
    desc_pos = text.find("\ndesc")
    reader.pos = desc_pos + len("\ndesc") if desc_pos != -1 else 0
    name = reader.read_string() if desc_pos != -1 else ""

    archive = RcsArchive(name=name)
    if not order_newest_first:
        archive.keyframe_interval = keyframe_interval
        return archive

    # Text sections: for each revision number, a log string and a text
    # string, newest first.
    logs: Dict[str, str] = {}
    texts: Dict[str, str] = {}
    while True:
        line = reader.skip_to_line_matching(_REV_LINE)
        if line is None:
            break
        number = line
        marker = reader.skip_to_line_matching(re.compile(r"log"))
        if marker is None:
            raise RcsParseError(f"revision {number}: missing log")
        logs[number] = reader.read_string()
        marker = reader.skip_to_line_matching(re.compile(r"text"))
        if marker is None:
            raise RcsParseError(f"revision {number}: missing text")
        texts[number] = reader.read_string()

    head_number = order_newest_first[0]
    if head_number not in texts:
        raise RcsParseError("head revision has no text section")

    # Rebuild internal state directly (oldest first).
    oldest_first = list(reversed(order_newest_first))
    archive._head_lines = texts[head_number].split("\n")
    for number in oldest_first:
        info = RevisionInfo(
            number=number,
            date=dates.get(number, 0),
            author=authors.get(number, "aide"),
            log=logs.get(number, ""),
        )
        if number == head_number:
            info.stored_bytes = sum(len(l) + 1 for l in archive._head_lines)
            archive._revisions.append(
                _StoredRevision(info=info, reverse_delta=None)
            )
        else:
            delta = _parse_script(texts[number])
            info.stored_bytes = script_size(delta)
            archive._revisions.append(
                _StoredRevision(info=info, reverse_delta=delta)
            )
    archive._rebuild_lookup_state()
    if keyframe_interval:
        archive.set_keyframe_interval(keyframe_interval)
    return archive
