"""Deterministic HTML page synthesis.

All experiment pages come from here: seeded, multi-line (RCS deltas are
line-based, as were real fetched pages), with the structural vocabulary
of 1995 HTML (headings, paragraphs, link lists, the occasional PRE).
The regular one-element-per-line structure is what
:mod:`repro.workloads.mutate` edits.
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = ["PageGenerator"]

_NOUNS = (
    "system network protocol server cache archive document page browser "
    "repository version daemon script index gateway mirror proxy robot "
    "bookmark hotlist newsletter conference workshop laboratory"
).split()
_VERBS = (
    "tracks stores retrieves compares notifies archives polls renders "
    "merges serves updates replicates caches distributes annotates"
).split()
_ADJECTIVES = (
    "distributed scalable incremental automatic periodic robust portable "
    "experimental collaborative personalized marked-up versioned"
).split()


class PageGenerator:
    """Seeded generator of period-correct HTML pages."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def sentence(self, words: Optional[int] = None) -> str:
        count = words if words is not None else self.rng.randint(6, 14)
        out = []
        for index in range(count):
            pool = (_ADJECTIVES, _NOUNS, _VERBS)[index % 3]
            out.append(self.rng.choice(pool))
        out[0] = out[0].capitalize()
        return " ".join(out) + "."

    def paragraph(self, sentences: Optional[int] = None) -> str:
        count = sentences if sentences is not None else self.rng.randint(2, 4)
        return "<P>" + " ".join(self.sentence() for _ in range(count)) + "</P>"

    def link_item(self, index: int) -> str:
        host = f"site{self.rng.randint(0, 9999)}.org"
        return (
            f'<LI><A HREF="http://{host}/doc{index}.html">'
            f"{self.sentence(self.rng.randint(3, 6))[:-1]}</A>"
        )

    def link_list(self, items: int) -> List[str]:
        lines = ["<UL>"]
        lines.extend(self.link_item(i) for i in range(items))
        lines.append("</UL>")
        return lines

    # ------------------------------------------------------------------
    def page(
        self,
        title: str = "",
        paragraphs: int = 6,
        links: int = 5,
        with_pre: bool = False,
    ) -> str:
        """A complete page, one structural element per line."""
        title = title or self.sentence(4)[:-1]
        lines = [
            "<HTML><HEAD><TITLE>" + title + "</TITLE></HEAD>",
            "<BODY>",
            f"<H1>{title}</H1>",
        ]
        for index in range(paragraphs):
            lines.append(self.paragraph())
            if index == paragraphs // 2 and links:
                lines.append(f"<H2>Related {self.rng.choice(_NOUNS)}s</H2>")
                lines.extend(self.link_list(links))
        if with_pre:
            lines.append("<PRE>")
            for i in range(4):
                lines.append(f"  step {i}: {self.rng.choice(_VERBS)} the "
                             f"{self.rng.choice(_NOUNS)}")
            lines.append("</PRE>")
        lines.append("<HR>")
        lines.append(f"<ADDRESS>{self.sentence(4)}</ADDRESS>")
        lines.append("</BODY></HTML>")
        return "\n".join(lines)
