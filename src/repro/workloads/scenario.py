"""Packaged scenarios: the worlds the experiments run in.

Every benchmark and example builds its universe through one of these,
so workloads stay comparable across experiments and reruns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.w3newer.hotlist import Hotlist
from ..simclock import DAY, WEEK, CronScheduler, SimClock
from ..web.network import Network
from .pagegen import PageGenerator
from .schedule import WebEvolver

__all__ = ["SyntheticWeb", "build_web", "build_hotlist", "CHANGE_CLASSES"]

#: Named change-rate classes with realistic 1995 periods:
#: (period seconds, fraction of the page population).
CHANGE_CLASSES: Dict[str, Tuple[int, float]] = {
    "daily-churn": (DAY, 0.05),          # news-like, changes every day
    "busy": (2 * DAY, 0.15),             # active project pages
    "weekly": (WEEK, 0.30),              # typical maintained pages
    "monthly": (4 * WEEK, 0.30),         # slow-moving pages
    "static": (0, 0.20),                 # never change
}


@dataclass
class SyntheticWeb:
    """A built universe: network, sites, evolutions, and page index."""

    clock: SimClock
    network: Network
    cron: CronScheduler
    evolver: WebEvolver
    #: Every synthetic page as an absolute URL.
    urls: List[str] = field(default_factory=list)
    #: URL → change-class name.
    change_class: Dict[str, str] = field(default_factory=dict)

    def urls_in_class(self, name: str) -> List[str]:
        return [url for url in self.urls if self.change_class[url] == name]


def build_web(
    sites: int = 10,
    pages_per_site: int = 10,
    seed: int = 42,
    clock: Optional[SimClock] = None,
    network: Optional[Network] = None,
    classes: Optional[Dict[str, Tuple[int, float]]] = None,
) -> SyntheticWeb:
    """A synthetic internet with scheduled change behaviour.

    Pages are assigned to change classes by the configured fractions;
    changing pages get a typical mutation mix with jitter so updates
    spread over the period.
    """
    clock = clock or SimClock()
    network = network or Network(clock)
    cron = CronScheduler(clock)
    evolver = WebEvolver(cron, seed=seed)
    rng = random.Random(seed)
    generator = PageGenerator(seed=seed)
    classes = classes or CHANGE_CLASSES

    class_names = sorted(classes)
    weights = [classes[name][1] for name in class_names]

    web = SyntheticWeb(clock=clock, network=network, cron=cron, evolver=evolver)
    for site_index in range(sites):
        host = f"www.site{site_index}.com"
        server = network.create_server(host)
        for page_index in range(pages_per_site):
            path = "/" if page_index == 0 else f"/page{page_index}.html"
            server.set_page(
                path,
                generator.page(
                    title=f"Site {site_index} page {page_index}",
                    paragraphs=rng.randint(4, 10),
                    links=rng.randint(2, 8),
                ),
            )
            url = f"http://{host}{path}"
            cls = rng.choices(class_names, weights=weights, k=1)[0]
            web.urls.append(url)
            web.change_class[url] = cls
            period = classes[cls][0]
            if period > 0:
                evolver.evolve(server, path, period, jitter=period)
    return web


def build_hotlist(
    web: SyntheticWeb,
    size: int,
    seed: int = 7,
    bias_to_changing: float = 0.5,
) -> Hotlist:
    """A user hotlist sampled from the synthetic web.

    ``bias_to_changing`` is the probability of drawing from pages that
    actually change (users bookmark interesting — changing — pages more
    than static ones).
    """
    rng = random.Random(seed)
    changing = [
        url for url in web.urls if web.change_class[url] != "static"
    ]
    static = web.urls_in_class("static")
    hotlist = Hotlist()
    chosen = set()
    attempts = 0
    while len(hotlist) < min(size, len(web.urls)) and attempts < size * 50:
        attempts += 1
        pool = changing if (rng.random() < bias_to_changing and changing) else (
            static or changing
        )
        url = rng.choice(pool)
        if url in chosen:
            continue
        chosen.add(url)
        hotlist.add(url, title=f"Bookmark: {url}")
    return hotlist
