"""Synthetic workloads: page generation, mutation, change schedules.

The stand-in for the live 1995 web the paper measured against — every
change class the text mentions (daily churn, link accretion, subtle
in-place edits, wholesale replacement, formatting-only reflows) is an
operator here, driven deterministically on the simulated clock.
"""

from .metrics import MetricLog, Observation
from .mutate import (
    MUTATORS,
    MutationMix,
    add_link,
    append_paragraph,
    cosmetic_whitespace,
    delete_paragraph,
    edit_sentence,
    restructure,
    rewrite,
)
from .crawlworld import (
    CRAWL_CLASSES,
    CrawlWorld,
    apply_changes,
    build_crawl_hotlist,
    build_crawl_world,
    revision_history,
    seed_estimator,
)
from .hostileworld import (
    HOSTILE_MUTATORS,
    HostileDoc,
    hostile_corpus,
    populate_hostile_server,
)
from .pagegen import PageGenerator
from .schedule import PageEvolution, WebEvolver
from .scenario import CHANGE_CLASSES, SyntheticWeb, build_hotlist, build_web

__all__ = [
    "MetricLog",
    "Observation",
    "MUTATORS",
    "MutationMix",
    "add_link",
    "append_paragraph",
    "cosmetic_whitespace",
    "delete_paragraph",
    "edit_sentence",
    "restructure",
    "rewrite",
    "CRAWL_CLASSES",
    "CrawlWorld",
    "apply_changes",
    "build_crawl_hotlist",
    "build_crawl_world",
    "revision_history",
    "seed_estimator",
    "HOSTILE_MUTATORS",
    "HostileDoc",
    "hostile_corpus",
    "populate_hostile_server",
    "PageGenerator",
    "PageEvolution",
    "WebEvolver",
    "CHANGE_CLASSES",
    "SyntheticWeb",
    "build_hotlist",
    "build_web",
]
