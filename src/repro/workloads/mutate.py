"""Edit operators: how synthetic pages change over time.

The operator vocabulary mirrors the change classes the paper discusses:

* ``append_paragraph`` — WikiWikiWeb-style growth ("typically content
  is added to the end of a page");
* ``edit_sentence`` — subtle in-place modification ("content can be
  modified anywhere on the page, and those changes may be too subtle
  to notice");
* ``delete_paragraph`` — "the really major change might be the item
  that was deleted";
* ``add_link`` — Virtual-Library-style link accretion ("10 new links
  have been added");
* ``restructure`` — a paragraph becomes a list: formatting-only change,
  the HtmlDiff-vs-line-diff discriminator;
* ``rewrite`` — wholesale replacement (the What's-New-in-Mosaic case);
* ``cosmetic_whitespace`` — reflow with no content change at all (line
  diffs flag it, HtmlDiff must not).

Operators are pure: ``(html, rng) -> html``.
"""

from __future__ import annotations

import random
import re
from typing import Callable, Dict, List

from .pagegen import PageGenerator

__all__ = [
    "Mutator",
    "append_paragraph",
    "edit_sentence",
    "delete_paragraph",
    "add_link",
    "restructure",
    "rewrite",
    "cosmetic_whitespace",
    "MUTATORS",
    "MutationMix",
]

Mutator = Callable[[str, random.Random], str]

_PARAGRAPH_RE = re.compile(r"^<P>.*</P>$")
_LI_RE = re.compile(r"^<LI>")
_WORD_RE = re.compile(r"[a-zA-Z][a-zA-Z\-]+")


def _lines(html: str) -> List[str]:
    return html.split("\n")


def _paragraph_indexes(lines: List[str]) -> List[int]:
    return [i for i, line in enumerate(lines) if _PARAGRAPH_RE.match(line)]


def _generator(rng: random.Random) -> PageGenerator:
    return PageGenerator(seed=rng.randrange(1 << 30))


def append_paragraph(html: str, rng: random.Random) -> str:
    """Add a fresh paragraph just before the closing <HR>/footer."""
    lines = _lines(html)
    gen = _generator(rng)
    insert_at = next(
        (i for i, line in enumerate(lines) if line == "<HR>"), len(lines)
    )
    lines.insert(insert_at, gen.paragraph())
    return "\n".join(lines)


def edit_sentence(html: str, rng: random.Random) -> str:
    """Replace one word somewhere in one paragraph — the subtle edit."""
    lines = _lines(html)
    candidates = _paragraph_indexes(lines)
    if not candidates:
        return append_paragraph(html, rng)
    index = rng.choice(candidates)
    words = _WORD_RE.findall(lines[index])
    content_words = [w for w in words if w.upper() not in ("P", "A", "HREF")]
    if not content_words:
        return append_paragraph(html, rng)
    target = rng.choice(content_words)
    replacement = f"{target[:3]}{rng.randint(100, 999)}"
    lines[index] = lines[index].replace(target, replacement, 1)
    return "\n".join(lines)


def delete_paragraph(html: str, rng: random.Random) -> str:
    """Remove one paragraph (never the last one)."""
    lines = _lines(html)
    candidates = _paragraph_indexes(lines)
    if len(candidates) <= 1:
        return html
    del lines[rng.choice(candidates)]
    return "\n".join(lines)


def add_link(html: str, rng: random.Random) -> str:
    """Add an item to the page's link list (create one if missing)."""
    lines = _lines(html)
    gen = _generator(rng)
    for i, line in enumerate(lines):
        if line == "</UL>":
            lines.insert(i, gen.link_item(rng.randint(1000, 9999)))
            return "\n".join(lines)
    insert_at = next(
        (i for i, line in enumerate(lines) if line == "<HR>"), len(lines)
    )
    lines[insert_at:insert_at] = ["<UL>", gen.link_item(0), "</UL>"]
    return "\n".join(lines)


def restructure(html: str, rng: random.Random) -> str:
    """Turn one paragraph into a <UL> of its sentences.

    The paper's formatting-only example: content identical, structure
    different.  HtmlDiff should report a formatting change only; a line
    diff reports the whole region as rewritten.
    """
    lines = _lines(html)
    candidates = _paragraph_indexes(lines)
    if not candidates:
        return html
    index = rng.choice(candidates)
    body = lines[index][len("<P>"):-len("</P>")]
    sentences = re.split(r"(?<=\.) ", body)
    replacement = ["<UL>"] + [f"<LI>{s}" for s in sentences if s] + ["</UL>"]
    lines[index:index + 1] = replacement
    return "\n".join(lines)


def rewrite(html: str, rng: random.Random) -> str:
    """Replace the entire page (What's-New-in-Mosaic style churn)."""
    gen = _generator(rng)
    return gen.page(paragraphs=rng.randint(4, 8), links=rng.randint(3, 8))


def cosmetic_whitespace(html: str, rng: random.Random) -> str:
    """Reflow whitespace without touching content.

    Joins two random adjacent lines — the byte stream changes (and any
    checksum with it) while the rendered content does not.
    """
    lines = _lines(html)
    if len(lines) < 2:
        return html
    index = rng.randrange(len(lines) - 1)
    lines[index:index + 2] = [lines[index] + "  " + lines[index + 1]]
    return "\n".join(lines)


MUTATORS: Dict[str, Mutator] = {
    "append_paragraph": append_paragraph,
    "edit_sentence": edit_sentence,
    "delete_paragraph": delete_paragraph,
    "add_link": add_link,
    "restructure": restructure,
    "rewrite": rewrite,
    "cosmetic_whitespace": cosmetic_whitespace,
}


class MutationMix:
    """A weighted mix of operators, applied with a seeded RNG."""

    def __init__(self, weights: Dict[str, float], seed: int = 0) -> None:
        unknown = set(weights) - set(MUTATORS)
        if unknown:
            raise ValueError(f"unknown mutators: {sorted(unknown)}")
        if not weights:
            raise ValueError("empty mutation mix")
        self._names = sorted(weights)
        self._weights = [weights[name] for name in self._names]
        self.rng = random.Random(seed)

    def apply(self, html: str) -> str:
        name = self.rng.choices(self._names, weights=self._weights, k=1)[0]
        return MUTATORS[name](html, self.rng)

    @classmethod
    def typical(cls, seed: int = 0) -> "MutationMix":
        """A realistic maintenance mix: mostly growth and small edits,
        occasional deletions and reorganizations."""
        return cls(
            {
                "append_paragraph": 0.30,
                "edit_sentence": 0.30,
                "add_link": 0.20,
                "delete_paragraph": 0.10,
                "restructure": 0.05,
                "rewrite": 0.05,
            },
            seed=seed,
        )
