"""Change schedules: driving page evolution on the simulated clock.

Each :class:`PageEvolution` ties one server page to a mutation mix and
a period (with optional jitter); :class:`WebEvolver` registers them all
on the cron so a call to ``cron.run_until(week)`` ages the whole web.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..simclock import CronScheduler
from ..web.server import HttpServer
from .mutate import MutationMix

__all__ = ["PageEvolution", "WebEvolver"]


@dataclass
class PageEvolution:
    """One page's life: mutate every ``period`` seconds (± jitter)."""

    server: HttpServer
    path: str
    period: int
    mix: MutationMix
    jitter: int = 0
    changes: int = 0

    def step(self, now: int) -> None:
        page = self.server.get_page(self.path)
        if page is None:
            return
        self.server.set_page(self.path, self.mix.apply(page.body))
        self.changes += 1


class WebEvolver:
    """All scheduled evolutions of a simulated web."""

    def __init__(self, cron: CronScheduler, seed: int = 0) -> None:
        self.cron = cron
        self.rng = random.Random(seed)
        self.evolutions: List[PageEvolution] = []

    def evolve(
        self,
        server: HttpServer,
        path: str,
        period: int,
        mix: Optional[MutationMix] = None,
        jitter: int = 0,
    ) -> PageEvolution:
        """Schedule a page to change every ``period`` seconds.

        Jitter staggers first firings so a thousand pages do not all
        change at the same instant.
        """
        evolution = PageEvolution(
            server=server,
            path=path,
            period=period,
            mix=mix or MutationMix.typical(seed=self.rng.randrange(1 << 30)),
            jitter=jitter,
        )
        first = self.cron.clock.now + period
        if jitter:
            first += self.rng.randint(0, jitter)
        self.cron.schedule(period, evolution.step,
                           name=f"evolve:{server.host}{path}",
                           first_fire=first)
        self.evolutions.append(evolution)
        return evolution

    @property
    def total_changes(self) -> int:
        return sum(e.changes for e in self.evolutions)
