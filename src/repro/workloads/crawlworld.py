"""A seeded, 100k-URL-capable web for crawl-scheduling experiments.

The :mod:`~repro.workloads.scenario` worlds carry full generated page
bodies and cron-driven mutation — realistic, but too heavy to build a
hundred thousand of.  This module trades fidelity for scale: each page
is a one-line body plus a deterministic change *period* and *phase*, so
a whole day of churn is applied with arithmetic instead of cron events.

The population mixes four change classes chosen to make revisit
scheduling matter (a crawler with a fixed budget should spend it on
``hot``/``warm`` pages, not on the 40% that never change):

========  ===========  =========  ===============================
class     period       fraction   1995 analogue
========  ===========  =========  ===============================
hot       12 hours     3%         what's-new lists, news indexes
warm      3 days       12%        active project pages
cool      4 weeks      45%        maintained but slow pages
dead      never        40%        abandoned pages
========  ===========  =========  ===============================

:func:`seed_estimator` replays each page's synthetic revision history
into a :class:`~repro.core.w3newer.estimator.ChangeRateEstimator` —
the "fit from snapshot history" cold-start path, with the world itself
standing in for a snapshot archive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.w3newer.estimator import ChangeRateEstimator
from ..core.w3newer.hotlist import Hotlist
from ..simclock import DAY, HOUR, WEEK, SimClock
from ..web.network import Network

__all__ = [
    "CRAWL_CLASSES",
    "CrawlWorld",
    "build_crawl_world",
    "apply_changes",
    "revision_history",
    "seed_estimator",
    "build_crawl_hotlist",
]

#: Change-class name → (period seconds, fraction of the population).
#: Period 0 means the page never changes.
CRAWL_CLASSES: Dict[str, Tuple[int, float]] = {
    "hot": (12 * HOUR, 0.03),
    "warm": (3 * DAY, 0.12),
    "cool": (4 * WEEK, 0.45),
    "dead": (0, 0.40),
}


@dataclass
class CrawlWorld:
    """A built crawl universe: network, page index, change model."""

    clock: SimClock
    network: Network
    created_at: int
    #: Every page as an absolute URL, in creation order.
    urls: List[str] = field(default_factory=list)
    #: URL → change-class name.
    change_class: Dict[str, str] = field(default_factory=dict)
    #: URL → change period in seconds (0 = never changes).
    period: Dict[str, int] = field(default_factory=dict)
    #: URL → phase offset in [0, period): when in its cycle the page
    #: changes, so updates spread over the period instead of stampeding.
    phase: Dict[str, int] = field(default_factory=dict)
    #: URL → number of changes already applied to the live server.
    applied: Dict[str, int] = field(default_factory=dict)
    #: URL → (host, path) for direct server access.
    location: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    def urls_in_class(self, name: str) -> List[str]:
        """All URLs assigned to change class ``name``."""
        return [url for url in self.urls if self.change_class[url] == name]

    def changes_due(self, url: str, now: int) -> int:
        """How many changes the model says ``url`` has had by ``now``."""
        period = self.period[url]
        if period <= 0:
            return 0
        elapsed = now - (self.created_at + self.phase[url])
        if elapsed < 0:
            return 0
        return elapsed // period + 1


def build_crawl_world(
    urls: int = 1000,
    hosts: int = 50,
    seed: int = 0,
    clock: Optional[SimClock] = None,
    network: Optional[Network] = None,
    classes: Optional[Dict[str, Tuple[int, float]]] = None,
) -> CrawlWorld:
    """Build a seeded world of ``urls`` one-line pages on ``hosts`` hosts.

    Pages are dealt round-robin across hosts and assigned a change
    class by the configured fractions; everything (class, phase, body)
    derives from ``seed``, so two builds with the same arguments are
    identical.
    """
    clock = clock or SimClock()
    network = network or Network(clock)
    rng = random.Random(seed)
    classes = classes or CRAWL_CLASSES
    class_names = sorted(classes)
    weights = [classes[name][1] for name in class_names]

    world = CrawlWorld(clock=clock, network=network, created_at=clock.now)
    hosts = max(1, hosts)
    servers = [
        network.create_server(f"crawl{i}.example.com") for i in range(hosts)
    ]
    for index in range(urls):
        server = servers[index % hosts]
        path = f"/p{index}.html"
        server.set_page(path, f"<P>page {index} rev 0</P>")
        url = f"http://{server.host}{path}"
        cls = rng.choices(class_names, weights=weights, k=1)[0]
        period = classes[cls][0]
        world.urls.append(url)
        world.change_class[url] = cls
        world.period[url] = period
        world.phase[url] = rng.randrange(period) if period > 0 else 0
        world.applied[url] = 0
        world.location[url] = (server.host, path)
    return world


def apply_changes(world: CrawlWorld, now: Optional[int] = None) -> int:
    """Bring every page's live content up to date with the change model.

    Each page due for changes since the last application gets a new
    revision body and a fresh Last-Modified stamp (the world's clock
    must already be at ``now``).  Idempotent: calling twice at the same
    time changes nothing the second time.  Returns the number of pages
    that changed.
    """
    if now is None:
        now = world.clock.now
    changed = 0
    for url in world.urls:
        due = world.changes_due(url, now)
        if due <= world.applied[url]:
            continue
        host, path = world.location[url]
        server = world.network.server_for(host)
        server.set_page(path, f"<P>page {path} rev {due}</P>")
        world.applied[url] = due
        changed += 1
    return changed


def revision_history(
    world: CrawlWorld,
    url: str,
    start: Optional[int] = None,
    until: Optional[int] = None,
) -> List[int]:
    """The page's synthetic revision timestamps in ``[start, until]``.

    The first entry is the page's (possibly back-dated) creation; each
    later entry is one change, at ``created_at + phase + k*period``.
    ``start`` may predate the world — the archive "remembers" revisions
    from before the simulation began, which is how the estimator gets a
    warm prior without any live checks.
    """
    if until is None:
        until = world.clock.now
    if start is None:
        start = world.created_at
    dates = [start]
    period = world.period[url]
    if period <= 0:
        return dates
    first = world.created_at + world.phase[url]
    k = 0
    if first > start:
        # Back-fill whole periods so the history covers [start, until].
        k = -((first - start) // period + 1)
    while True:
        stamp = first + k * period
        k += 1
        if stamp < start:
            continue
        if stamp > until:
            break
        dates.append(stamp)
    return dates


def seed_estimator(
    world: CrawlWorld,
    estimator: ChangeRateEstimator,
    lookback: int = 8 * WEEK,
    until: Optional[int] = None,
) -> None:
    """Cold-start an estimator from the world's revision histories.

    Replays each URL's synthetic snapshot history over the ``lookback``
    window ending at ``until`` (default: now).  Dead pages contribute a
    single observation, so their estimated rate collapses to the low
    prior and a budgeted adaptive schedule ranks them last.
    """
    if until is None:
        until = world.clock.now
    start = until - lookback
    for url in world.urls:
        estimator.seed_from_history(
            url, revision_history(world, url, start=start, until=until)
        )


def build_crawl_hotlist(world: CrawlWorld, size: Optional[int] = None) -> Hotlist:
    """A hotlist of the first ``size`` world URLs (default: all)."""
    hotlist = Hotlist()
    for url in world.urls[: size if size is not None else len(world.urls)]:
        hotlist.add(url, title=url)
    return hotlist
