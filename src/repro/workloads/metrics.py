"""Experiment metrics: uniform collection and export.

Benchmarks and downstream studies record observations (requests issued,
changes detected, bytes stored, latencies) against simulation time;
this module provides a small, dependency-free event log with the
aggregations the experiment write-ups need and a CSV export for
external plotting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["Observation", "MetricLog"]


@dataclass(frozen=True)
class Observation:
    """One measured value at one simulated instant."""

    time: int
    metric: str
    value: float
    tags: Tuple[Tuple[str, str], ...] = ()

    def tag(self, key: str) -> Optional[str]:
        for name, value in self.tags:
            if name == key:
                return value
        return None


class MetricLog:
    """An append-only observation log with filtered aggregation."""

    def __init__(self) -> None:
        self._observations: List[Observation] = []

    # ------------------------------------------------------------------
    def record(self, time: int, metric: str, value: float,
               **tags: str) -> Observation:
        observation = Observation(
            time=time, metric=metric, value=float(value),
            tags=tuple(sorted(tags.items())),
        )
        self._observations.append(observation)
        return observation

    def __len__(self) -> int:
        return len(self._observations)

    # ------------------------------------------------------------------
    def select(self, metric: Optional[str] = None,
               since: Optional[int] = None,
               until: Optional[int] = None,
               **tags: str) -> List[Observation]:
        """Observations matching the metric name, window, and tags."""
        out = []
        for obs in self._observations:
            if metric is not None and obs.metric != metric:
                continue
            if since is not None and obs.time < since:
                continue
            if until is not None and obs.time > until:
                continue
            if any(obs.tag(k) != v for k, v in tags.items()):
                continue
            out.append(obs)
        return out

    def values(self, metric: str, **tags: str) -> List[float]:
        return [obs.value for obs in self.select(metric, **tags)]

    def total(self, metric: str, **tags: str) -> float:
        return sum(self.values(metric, **tags))

    def mean(self, metric: str, **tags: str) -> float:
        values = self.values(metric, **tags)
        if not values:
            raise ValueError(f"no observations for {metric!r} with {tags}")
        return sum(values) / len(values)

    def maximum(self, metric: str, **tags: str) -> float:
        values = self.values(metric, **tags)
        if not values:
            raise ValueError(f"no observations for {metric!r} with {tags}")
        return max(values)

    def series(self, metric: str, bucket: int, **tags: str) -> List[Tuple[int, float]]:
        """Sum per time bucket: [(bucket_start, total), ...], gaps kept
        at zero so plots show quiet periods honestly."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        selected = self.select(metric, **tags)
        if not selected:
            return []
        buckets: Dict[int, float] = {}
        for obs in selected:
            start = (obs.time // bucket) * bucket
            buckets[start] = buckets.get(start, 0.0) + obs.value
        first = min(buckets)
        last = max(buckets)
        return [
            (start, buckets.get(start, 0.0))
            for start in range(first, last + bucket, bucket)
        ]

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """``time,metric,value,tag=value;tag=value`` rows."""
        lines = ["time,metric,value,tags"]
        for obs in self._observations:
            tags = ";".join(f"{k}={v}" for k, v in obs.tags)
            # repr keeps full float precision (":g" would round away
            # sub-integer parts of large values).
            lines.append(f"{obs.time},{obs.metric},{obs.value!r},{tags}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_csv(cls, text: str) -> "MetricLog":
        log = cls()
        for line in text.splitlines()[1:]:
            if not line.strip():
                continue
            parts = line.split(",", 3)
            if len(parts) != 4:
                continue
            time_text, metric, value_text, tags_text = parts
            tags = {}
            for chunk in tags_text.split(";"):
                if "=" in chunk:
                    key, _, value = chunk.partition("=")
                    tags[key] = value
            try:
                log.record(int(time_text), metric, float(value_text), **tags)
            except ValueError:
                continue
        return log
