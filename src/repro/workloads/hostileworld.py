"""Hostile-content corpus: the fuzzing harness's mutation operators.

Where :mod:`repro.workloads.mutate` models how *benign* pages evolve,
this module models how pages go wrong — truncated transfers, charset
lies, tag bombs, decompression bombs — so the guard layer
(:mod:`repro.web.guards`) can be exercised deterministically.  Every
operator is seeded: the same ``(seed, count)`` pair always produces the
same corpus, byte for byte, which is what lets ``bench_hostile``
commit its results and CI re-verify them.

Each operator takes a benign seed page and a ``random.Random`` and
returns a :class:`HostileDoc`: the mutated body plus the transport
envelope (content type, extra headers) and the guard slug the document
is *designed* to trip (``expect=""`` for robustness-only mutations
like truncation, which must not crash anything but need not trip a
guard either).

The corpus is sized against :meth:`repro.web.guards.GuardLimits.strict`
— the fuzzing profile — so every one of the nine guard classes fires
somewhere in a few hundred documents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..web.guards import RLE_ENCODING, GuardLimits, rle_compress
from .pagegen import PageGenerator

__all__ = [
    "HostileDoc",
    "HostileMutator",
    "HOSTILE_MUTATORS",
    "truncate",
    "charset_swap",
    "tag_bomb",
    "attr_bomb",
    "entity_bomb",
    "token_bomb",
    "binary_splice",
    "zip_bomb_body",
    "giant_body",
    "header_bomb",
    "hostile_corpus",
    "populate_hostile_server",
]


@dataclass
class HostileDoc:
    """One mutated document plus its transport envelope."""

    name: str
    body: str
    content_type: str = "text/html"
    headers: Dict[str, str] = field(default_factory=dict)
    #: Operator that produced it.
    mutator: str = ""
    #: Guard slug this document is designed to trip ("" = should be
    #: survived gracefully but need not trip anything).
    expect: str = ""


HostileMutator = Callable[[str, random.Random], HostileDoc]

#: The strict (fuzzing) limits the corpus is sized against.
_STRICT = GuardLimits.strict()


def truncate(html: str, rng: random.Random) -> HostileDoc:
    """Cut the transfer mid-byte — possibly mid-tag, mid-entity, or
    mid-comment.  Nothing should trip; nothing should crash."""
    cut = rng.randrange(1, max(2, len(html)))
    return HostileDoc(name="", body=html[:cut], mutator="truncate")


def charset_swap(html: str, rng: random.Random) -> HostileDoc:
    """Declare a charset the decoder has never heard of, on a body
    that actually contains non-ASCII bytes."""
    exotic = rng.choice(["x-klingon", "ebcdic-ch", "koi-13", "cp1995"])
    body = html.replace(
        "<BODY>", "<BODY><P>café — naïve résumé</P>", 1
    )
    if body == html:  # no <BODY> marker in the seed
        body = "<P>café</P>" + html
    return HostileDoc(
        name="", body=body,
        content_type=f"text/html; charset={exotic}",
        mutator="charset_swap", expect="charset",
    )


def tag_bomb(html: str, rng: random.Random) -> HostileDoc:
    """Nesting far beyond any sane document: ``<DIV><DIV><DIV>...``"""
    depth = _STRICT.max_nesting_depth + rng.randrange(8, 64)
    return HostileDoc(
        name="", body="<DIV>" * depth + html,
        mutator="tag_bomb", expect="nesting-depth",
    )


def attr_bomb(html: str, rng: random.Random) -> HostileDoc:
    """One tag carrying hundreds of attributes."""
    count = _STRICT.max_attrs_per_tag + rng.randrange(4, 32)
    attrs = " ".join(f'a{i}="{i}"' for i in range(count))
    return HostileDoc(
        name="", body=f"<SPAN {attrs}>x</SPAN>" + html,
        mutator="attr_bomb", expect="attr-bomb",
    )


def entity_bomb(html: str, rng: random.Random) -> HostileDoc:
    """An ampersand flood — each ``&`` is a potential entity the
    decoder would otherwise chew on."""
    count = _STRICT.max_entity_refs + rng.randrange(16, 128)
    return HostileDoc(
        name="", body="&amp;" * count + html,
        mutator="entity_bomb", expect="entity-bomb",
    )


def token_bomb(html: str, rng: random.Random) -> HostileDoc:
    """Shallow but endless: token count blows past the lexer budget
    without ever nesting."""
    repeats = _STRICT.max_tokens // 2 + rng.randrange(16, 256)
    return HostileDoc(
        name="", body="<B>x</B>" * repeats,
        mutator="token_bomb", expect="token-bomb",
    )


def binary_splice(html: str, rng: random.Random) -> HostileDoc:
    """Splice raw binary (NUL runs) into the middle of the page — the
    mislabelled-GIF case."""
    cut = rng.randrange(0, len(html))
    noise = "".join(chr(rng.choice((0, 1, 2, 3, 4))) for _ in range(64))
    return HostileDoc(
        name="", body=html[:cut] + noise + html[cut:],
        mutator="binary_splice", expect="binary-content",
    )


def zip_bomb_body(html: str, rng: random.Random) -> HostileDoc:
    """A tiny transfer that inflates enormously: the decoded size
    stays under the absolute body cap, so it is specifically the
    expansion *ratio* guard that must fire."""
    line = "x" * rng.randrange(20, 40)
    # Decoded size: runs * (len(line)+1); keep it below the strict
    # 64 KiB body cap while the ratio (decoded/encoded) dwarfs the cap.
    runs = (_STRICT.max_body_bytes // (len(line) + 1)) - rng.randrange(2, 10)
    encoded = f"{runs}*{line}\n"
    return HostileDoc(
        name="", body=encoded,
        headers={"Content-Encoding": RLE_ENCODING},
        mutator="zip_bomb_body", expect="expansion-bomb",
    )


def giant_body(html: str, rng: random.Random) -> HostileDoc:
    """Plain oversize: more bytes than the envelope admits."""
    pad = "<P>" + "blah " * 64 + "</P>\n"
    need = _STRICT.max_body_bytes + rng.randrange(256, 4096)
    return HostileDoc(
        name="", body=pad * (need // len(pad) + 1),
        mutator="giant_body", expect="body-too-large",
    )


def header_bomb(html: str, rng: random.Random) -> HostileDoc:
    """A benign body behind an absurd header block."""
    count = _STRICT.max_headers + rng.randrange(4, 32)
    headers = {f"X-Junk-{i:03d}": "y" * 16 for i in range(count)}
    return HostileDoc(
        name="", body=html, headers=headers,
        mutator="header_bomb", expect="header-bomb",
    )


HOSTILE_MUTATORS: Dict[str, HostileMutator] = {
    "truncate": truncate,
    "charset_swap": charset_swap,
    "tag_bomb": tag_bomb,
    "attr_bomb": attr_bomb,
    "entity_bomb": entity_bomb,
    "token_bomb": token_bomb,
    "binary_splice": binary_splice,
    "zip_bomb_body": zip_bomb_body,
    "giant_body": giant_body,
    "header_bomb": header_bomb,
}


def hostile_corpus(
    count: int, seed: int = 0, mutators: Optional[List[str]] = None
) -> List[HostileDoc]:
    """``count`` mutated documents, deterministically from ``seed``.

    Operators are applied round-robin so even a small corpus covers
    every guard class; the per-document ``random.Random`` stream keeps
    sizes and cut points varied within each class.
    """
    names = mutators if mutators is not None else list(HOSTILE_MUTATORS)
    rng = random.Random(seed)
    generator = PageGenerator(seed=seed)
    docs: List[HostileDoc] = []
    for index in range(count):
        name = names[index % len(names)]
        page = generator.page(
            paragraphs=rng.randrange(2, 6), links=rng.randrange(0, 4)
        )
        doc = HOSTILE_MUTATORS[name](page, rng)
        doc.name = f"{name}-{index:04d}"
        docs.append(doc)
    return docs


def populate_hostile_server(
    server, docs: List[HostileDoc], send_last_modified: bool = False
) -> List[str]:
    """Publish a corpus on an :class:`~repro.web.server.HttpServer`;
    returns the URL list (one page per document).

    ``send_last_modified`` defaults to False so w3newer's checker takes
    the GET-and-checksum path — the one that runs bodies through the
    content guard — instead of trusting a HEAD's Last-Modified."""
    urls = []
    for doc in docs:
        path = f"/{doc.name}.html"
        server.set_page(
            path, doc.body,
            content_type=doc.content_type, headers=doc.headers,
            send_last_modified=send_last_modified,
        )
        urls.append(f"http://{server.host}{path}")
    return urls
