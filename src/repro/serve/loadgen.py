"""Closed-loop load generation for the diff server, in virtual time.

The service benchmark needs three things no wall clock can give it:

* **scale** — 10k+ concurrent simulated users without 10k threads;
* **determinism** — the same seed must produce the same request
  stream, the same admission decisions, and the same bytes, so the
  benchmark can gate on byte-identity against the reference service;
* **closed-loop behaviour** — each user waits for its response (or the
  ``Retry-After`` it was told) before issuing the next request, so
  throughput is capacity-bound, not arrival-script-bound.

The driver keeps one event heap keyed by virtual time.  Each event is
"user U issues (or retries) request K"; dispatching it through
:meth:`DiffServer.dispatch` yields either an admission (completion time
= the pool's finish time; the user thinks, then issues K+1) or a
rejection (the user honors ``Retry-After`` exactly, like
:class:`~repro.web.resilience.ResilientAgent` does, and retries the
same request).  All arithmetic is on integers drawn from seeded
sha256, so two runs are event-for-event identical.

The generated stream is **read-only** (pinned views, pinned diffs,
history pages, date views): mutations happen in the seeding phase,
shared verbatim between the system under test and the single-store
reference, which is what makes every load response byte-comparable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..simclock import SimClock
from ..web.cgi import encode_query_string
from ..web.client import UserAgent
from ..web.http import Request, Response
from ..web.network import Network
from .pool import Admission, Rejection

__all__ = ["World", "build_world", "seed_world", "ClosedLoopLoad",
           "LoadReport"]

ORIGIN_HOST = "tracked.example.com"


def _draw(seed: int, salt: str, bound: int) -> int:
    """Deterministic pseudo-random integer in ``[0, bound)``."""
    if bound <= 0:
        return 0
    digest = hashlib.sha256(f"{seed}|{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % bound


def _page_html(seed: int, index: int, round_no: int,
               link_pages: int = 0) -> str:
    """Deterministic page content that changes every seeding round (so
    every round checks in a new revision) with some lines kept stable
    (so diffs have common context, like real edits).  With
    ``link_pages`` set, each page carries three relative links into the
    same world — the web a datetime-pinned browsing session walks."""
    lines = []
    for line in range(12):
        if _draw(seed, f"p{index}.l{line}.stable", 3) == 0:
            stamp = round_no
        else:
            stamp = _draw(seed, f"p{index}.l{line}.word", 9999)
        lines.append(f"<P>page {index} line {line} token {stamp}</P>")
    if link_pages > 1:
        targets = sorted({
            (index + 1) % link_pages,
            _draw(seed, f"p{index}.link.a", link_pages),
            _draw(seed, f"p{index}.link.b", link_pages),
        } - {index})
        lines.append("<P>See also: " + " ".join(
            f'<A HREF="page{t:03d}.html">page {t}</A>' for t in targets
        ) + "</P>")
    return (
        f"<HTML><HEAD><TITLE>Page {index}</TITLE></HEAD><BODY>"
        f"<H1>Tracked page {index} (round {round_no})</H1>"
        + "".join(lines) + "</BODY></HTML>"
    )


@dataclass
class World:
    """One simulated internet: a clock, a network, an origin site with
    the tracked pages, and an agent the snapshot store fetches with."""

    clock: SimClock
    network: Network
    origin: object
    agent: UserAgent
    urls: List[str]
    #: Pages carry in-world links (datetime-pinned browsing walks them).
    linked: bool = False


def build_world(seed: int = 0, pages: int = 64,
                linked: bool = False) -> World:
    """A fresh world with ``pages`` deterministic origin pages.

    Build one world per service under comparison — each gets its own
    clock — and seed both with the same seed; everything downstream is
    then byte-for-byte reproducible.  ``linked`` adds three relative
    links per page, for browsing sessions that follow them.
    """
    clock = SimClock()
    network = Network(clock)
    origin = network.create_server(ORIGIN_HOST)
    urls = []
    link_pages = pages if linked else 0
    for index in range(pages):
        path = f"/page{index:03d}.html"
        origin.set_page(path, _page_html(seed, index, 0, link_pages))
        urls.append(f"http://{ORIGIN_HOST}{path}")
    agent = UserAgent(network, clock)
    return World(clock=clock, network=network, origin=origin, agent=agent,
                 urls=urls, linked=linked)


def _curator(index: int) -> str:
    return f"curator{index}@example.com"


def seed_world(
    service,
    world: World,
    seed: int = 0,
    rounds: int = 3,
    curators: int = 4,
    round_gap: int = 3600,
    spacing: int = 30,
) -> Dict[str, List[str]]:
    """Check ``rounds`` revisions of every page into the service.

    ``service`` is any CGI callable ``(request, now) -> Response`` — the
    sharded diff server and the single-store reference are seeded
    through the identical request sequence.  The clock advances by
    ``spacing`` after every remember — enough for a default-cost fetch
    to drain from even a one-worker pool, and (because the advance is
    unconditional) the two worlds' clocks stay in lockstep, so every
    check-in carries the same timestamp in both.  Returns ``url ->
    [revision numbers]`` (trunk numbering is ``1.N`` in check-in
    order), which the load generator draws pinned requests from.
    """
    revisions: Dict[str, List[str]] = {url: [] for url in world.urls}
    for round_no in range(rounds):
        if round_no:
            link_pages = len(world.urls) if world.linked else 0
            for index, url in enumerate(world.urls):
                path = f"/page{index:03d}.html"
                world.origin.set_page(
                    path, _page_html(seed, index, round_no, link_pages))
        for index, url in enumerate(world.urls):
            user = _curator(index % curators)
            query = encode_query_string(
                {"action": "remember", "url": url, "user": user}
            )
            request = Request("GET", f"http://aide.example.com"
                                     f"/cgi-bin/snapshot?{query}")
            response = service(request, world.clock.now)
            if response.status != 200:
                raise RuntimeError(
                    f"seeding failed: {response.status} for {url} "
                    f"round {round_no} (is spacing shorter than the "
                    f"fetch cost with a saturated pool?)"
                )
            revisions[url].append(f"1.{round_no + 1}")
            world.clock.advance(spacing)
        world.clock.advance(round_gap)
    return revisions


# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """What one closed-loop run measured (all times simulated seconds)."""

    users: int
    requests: int
    completed: int
    shed: int
    retries: int
    makespan: int
    throughput: float
    latency_p50: int
    latency_p99: int
    latency_max: int
    dispatches: int
    #: (user, step) -> final served response, for byte-identity checks.
    responses: Dict[Tuple[int, int], Response] = field(repr=False,
                                                       default_factory=dict)
    #: (user, step) -> the request issued, replayable against a
    #: reference service.
    requests_log: Dict[Tuple[int, int], Request] = field(repr=False,
                                                          default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "users": self.users,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "retries": self.retries,
            "makespan": self.makespan,
            "throughput": round(self.throughput, 4),
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "latency_max": self.latency_max,
            "dispatches": self.dispatches,
        }


def _percentile(sorted_values: List[int], fraction: float) -> int:
    if not sorted_values:
        return 0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


class ClosedLoopLoad:
    """``users`` simulated people, each issuing ``requests_per_user``
    read-only requests in a closed loop against a diff server.

    The request mix (drawn per (user, step) from the seed): pinned
    views, pinned-pair diffs, history pages, and date-resolved views —
    every action the response cache and DiffCache can help with, none
    that mutates the archive.
    """

    def __init__(
        self,
        seed: int,
        urls: List[str],
        revisions: Dict[str, List[str]],
        users: int = 10000,
        requests_per_user: int = 2,
        think_time: int = 60,
        arrival_window: int = 600,
        curators: int = 4,
        retry_jitter_cap: int = 256,
        max_dispatches: Optional[int] = None,
        mutation_rate: float = 0.0,
    ) -> None:
        self.seed = seed
        self.urls = urls
        self.revisions = revisions
        self.users = users
        self.requests_per_user = requests_per_user
        self.think_time = think_time
        self.arrival_window = arrival_window
        self.curators = curators
        #: ``Retry-After`` is a *minimum* (exactly how
        #: :class:`~repro.web.resilience.RetryPolicy` treats it); each
        #: user adds its own seeded exponential jitter on top, capped
        #: here, so ten thousand rejected users do not all come back in
        #: the same instant a single queue slot opens.
        self.retry_jitter_cap = retry_jitter_cap
        #: Runaway guard: a livelocked retry storm fails loudly instead
        #: of spinning forever.  Default scales with the request count.
        self.max_dispatches = (
            max_dispatches if max_dispatches is not None
            else 400 * users * requests_per_user
        )
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError(
                f"mutation_rate must be in [0, 1], got {mutation_rate}"
            )
        #: Fraction of requests that are ``remember`` re-saves (the
        #: chaos benches use this to drive writes through failover and
        #: hinted handoff).  The draw uses its own salt, so 0.0 — the
        #: default — leaves the read-only stream byte-identical to the
        #: pre-replication generator.
        self.mutation_rate = mutation_rate

    # ------------------------------------------------------------------
    def _request(self, user: int, step: int) -> Request:
        salt = f"u{user}.s{step}"
        url = self.urls[_draw(self.seed, f"{salt}.url", len(self.urls))]
        revs = self.revisions[url]
        if self.mutation_rate > 0.0 and (
                _draw(self.seed, f"{salt}.mut", 10_000)
                < int(self.mutation_rate * 10_000)):
            params = {
                "action": "remember", "url": url,
                "user": _curator(_draw(self.seed, f"{salt}.cu",
                                       self.curators)),
            }
            query = encode_query_string(params)
            return Request(
                "GET", f"http://aide.example.com/cgi-bin/snapshot?{query}")
        kind = _draw(self.seed, f"{salt}.kind", 100)
        if len(revs) < 2 and 40 <= kind < 70:
            kind = 0  # a single-revision archive has no diffable pair
        if kind < 40:  # pinned view
            rev = revs[_draw(self.seed, f"{salt}.rev", len(revs))]
            params = {"action": "view", "url": url, "rev": rev}
        elif kind < 70:  # pinned diff between two distinct revisions
            first = _draw(self.seed, f"{salt}.r1", len(revs) - 1)
            second = first + 1 + _draw(
                self.seed, f"{salt}.r2", len(revs) - first - 1
            )
            params = {
                "action": "diff", "url": url,
                "user": _curator(_draw(self.seed, f"{salt}.cu",
                                       self.curators)),
                "r1": revs[first], "r2": revs[second],
            }
        elif kind < 90:  # history page
            params = {
                "action": "history", "url": url,
                "user": _curator(_draw(self.seed, f"{salt}.cu",
                                       self.curators)),
            }
        else:  # date-resolved view (volatile cache path)
            params = {
                "action": "view", "url": url,
                "date": str(_draw(self.seed, f"{salt}.date", 3 * 3600)),
            }
        query = encode_query_string(params)
        return Request("GET",
                       f"http://aide.example.com/cgi-bin/snapshot?{query}")

    # ------------------------------------------------------------------
    def run(self, server, start: int = 0) -> LoadReport:
        """Drive the closed loop against ``server`` (anything with
        ``dispatch(request, now) -> (response, admission)``)."""
        heap: List[Tuple[int, int, int, int]] = []
        sequence = 0
        for user in range(self.users):
            arrival = start + _draw(self.seed, f"u{user}.arrive",
                                    self.arrival_window + 1)
            heappush(heap, (arrival, sequence, user, 0))
            sequence += 1

        issue_time: Dict[Tuple[int, int], int] = {}
        attempts: Dict[Tuple[int, int], int] = {}
        latencies: List[int] = []
        responses: Dict[Tuple[int, int], Response] = {}
        requests_log: Dict[Tuple[int, int], Request] = {}
        shed = 0
        retries = 0
        dispatches = 0
        last_finish = start

        while heap:
            now, _, user, step = heappop(heap)
            key = (user, step)
            request = requests_log.get(key)
            if request is None:
                request = self._request(user, step)
                requests_log[key] = request
                issue_time[key] = now
            dispatches += 1
            if dispatches > self.max_dispatches:
                raise RuntimeError(
                    f"load livelocked: {dispatches} dispatches for "
                    f"{self.users * self.requests_per_user} requests"
                )
            response, schedule = server.dispatch(request, now)
            if isinstance(schedule, Rejection):
                shed += 1
                retries += 1
                attempt = attempts.get(key, 0) + 1
                attempts[key] = attempt
                jitter = _draw(
                    self.seed, f"u{user}.s{step}.retry{attempt}",
                    min(1 << attempt, self.retry_jitter_cap) + 1,
                )
                heappush(heap, (now + schedule.retry_after + jitter,
                                sequence, user, step))
                sequence += 1
                continue
            finish = schedule.finish if isinstance(schedule, Admission) else now
            responses[key] = response
            latencies.append(finish - issue_time[key])
            last_finish = max(last_finish, finish)
            if step + 1 < self.requests_per_user:
                think = _draw(self.seed, f"u{user}.s{step}.think",
                              self.think_time + 1)
                heappush(heap, (finish + think, sequence, user, step + 1))
                sequence += 1

        latencies.sort()
        completed = len(responses)
        makespan = max(1, last_finish - start)
        return LoadReport(
            users=self.users,
            requests=self.users * self.requests_per_user,
            completed=completed,
            shed=shed,
            retries=retries,
            makespan=makespan,
            throughput=completed / makespan,
            latency_p50=_percentile(latencies, 0.50),
            latency_p99=_percentile(latencies, 0.99),
            latency_max=latencies[-1] if latencies else 0,
            dispatches=dispatches,
            responses=responses,
            requests_log=requests_log,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def replay(report: LoadReport, service,
               now: int = 0) -> Dict[Tuple[int, int], Response]:
        """Replay a run's logged requests against a plain CGI callable
        (the single-store reference) and return its responses keyed the
        same way, for byte-identity comparison."""
        out: Dict[Tuple[int, int], Response] = {}
        for key in sorted(report.requests_log):
            out[key] = service(report.requests_log[key], now)
        return out
