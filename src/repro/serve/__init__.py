"""The long-running snapshot/diff server (paper Section 4.2, scaled).

The paper served everything through one CGI dispatch per request; this
package is the front end the "millions of users" north star needs: a
stateful server object composing

* :class:`~repro.core.snapshot.sharding.ShardedSnapshotStore` shards
  behind stable rendezvous routing,
* a bounded per-shard :class:`~.pool.WorkerPool` (admission queue +
  deterministic virtual-time queueing on the shared sim clock),
* a per-shard :class:`~.cache.ResponseCache` above the store's
  ``DiffCache``/``CheckoutCache``,
* backpressure: queue-full requests get **503 + Retry-After**, which
  :class:`~repro.web.resilience.ResilientAgent` already honors,
* redundancy: a :class:`~.replication.ReplicationManager` keeps every
  URL's archive on R rendezvous-ordered shards, with failover reads,
  fan-out writes, hinted handoff for down replicas, read repair, and a
  Merkle-fingerprint anti-entropy scrub — all driven deterministically
  (chaos included, via :class:`~.replication.ShardFaultPlan`) on the
  sim clock,

with every moving part wired through :mod:`repro.obs`.
"""

from .cache import ResponseCache, cacheable_key
from .loadgen import ClosedLoopLoad, LoadReport, build_world, seed_world
from .pool import Admission, Rejection, WorkerPool
from .replication import (
    HandoffJournal,
    ReplicationManager,
    ShardFault,
    ShardFaultPlan,
    bucket_fingerprints,
    url_fingerprint,
)
from .server import DiffServer

__all__ = [
    "Admission",
    "ClosedLoopLoad",
    "DiffServer",
    "HandoffJournal",
    "LoadReport",
    "Rejection",
    "ReplicationManager",
    "ResponseCache",
    "ShardFault",
    "ShardFaultPlan",
    "WorkerPool",
    "bucket_fingerprints",
    "build_world",
    "cacheable_key",
    "seed_world",
    "url_fingerprint",
]
