"""The long-running snapshot/diff server (paper Section 4.2, scaled).

The paper served everything through one CGI dispatch per request; this
package is the front end the "millions of users" north star needs: a
stateful server object composing

* :class:`~repro.core.snapshot.sharding.ShardedSnapshotStore` shards
  behind stable rendezvous routing,
* a bounded per-shard :class:`~.pool.WorkerPool` (admission queue +
  deterministic virtual-time queueing on the shared sim clock),
* a per-shard :class:`~.cache.ResponseCache` above the store's
  ``DiffCache``/``CheckoutCache``,
* backpressure: queue-full requests get **503 + Retry-After**, which
  :class:`~repro.web.resilience.ResilientAgent` already honors,

with every moving part wired through :mod:`repro.obs`.
"""

from .cache import ResponseCache, cacheable_key
from .loadgen import ClosedLoopLoad, LoadReport, build_world, seed_world
from .pool import Admission, Rejection, WorkerPool
from .server import DiffServer

__all__ = [
    "Admission",
    "ClosedLoopLoad",
    "DiffServer",
    "LoadReport",
    "Rejection",
    "ResponseCache",
    "WorkerPool",
    "build_world",
    "cacheable_key",
    "seed_world",
]
