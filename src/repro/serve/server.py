"""The sharded, pooled, cached snapshot/diff server.

One :class:`DiffServer` is the whole Section-4.2 scaling story in a
single front end:

* requests route by **URL hash** (rendezvous, via
  :class:`~repro.core.snapshot.sharding.ShardedSnapshotStore`) to one
  of N shards, each a full :class:`~repro.core.snapshot.store.
  SnapshotStore` + :class:`~repro.core.snapshot.service.
  SnapshotService` pair — so every response body is produced by
  exactly the code the single-store reference service runs, which is
  what makes the byte-identity gate possible;
* each shard has a bounded :class:`~.pool.WorkerPool`; a request that
  cannot even queue is shed with **503 + Retry-After** (the advice
  :class:`~repro.web.resilience.ResilientAgent` honors) instead of
  joining an unbounded-latency convoy;
* each shard has a :class:`~.cache.ResponseCache` above the store's
  DiffCache/CheckoutCache, so a repeated pinned-revision request costs
  one dictionary lookup;
* queue depth, busy workers, shard routing, cache hit rate, shed rate,
  and per-action latency histograms all land in :mod:`repro.obs`.

The server is callable with the CGI signature ``(request, now) ->
Response`` so it registers on a simulated
:class:`~repro.web.server.HttpServer` exactly where the single CGI
script used to sit — the "long-running" difference is that the object
keeps its pools, caches, and shards alive across requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..core.snapshot.keepalive import KeepAlive
from ..core.snapshot.service import (
    OperationCosts,
    SnapshotService,
    fsck_page_html,
    stats_page_html,
)
from ..core.snapshot.sharding import (
    ShardedSnapshotStore,
    append_sharded,
    verify_sharded,
)
from ..core.snapshot.diffcache import DiffCache
from ..core.snapshot.options import StoreOptions
from ..memento.core import ACCEPT_DATETIME
from ..obs import NOOP as NOOP_OBS, to_json, to_prometheus
from ..simclock import SimClock
from ..web.cgi import parse_query_string
from ..web.client import UserAgent
from ..web.http import Request, Response, make_response
from .cache import ResponseCache, cacheable_key
from .pool import Admission, Rejection, WorkerPool
from .replication import ReplicationManager, ShardFaultPlan

__all__ = ["DiffServer"]

#: Actions with their own latency histogram; anything else is "other".
_TRACKED_ACTIONS = ("remember", "diff", "history", "view", "form",
                    "timegate", "timemap", "memento")


class DiffServer:
    """N store shards, N worker pools, N response caches, one face."""

    def __init__(
        self,
        clock: SimClock,
        agent: UserAgent,
        shards: int = 4,
        workers_per_shard: int = 4,
        queue_limit: int = 32,
        response_cache_size: int = 512,
        costs: Optional[OperationCosts] = None,
        keepalive: Optional[KeepAlive] = None,
        store_options: Optional[StoreOptions] = None,
        diff_options=None,
        obs=None,
        script_path: str = "/cgi-bin/snapshot",
        repository_dir: Optional[str] = None,
        replication: int = 1,
        fault_plan: Optional[ShardFaultPlan] = None,
        scrub_interval: int = 0,
        sync_interval: int = 0,
        guard=None,
        quarantine=None,
    ) -> None:
        self.clock = clock
        self.obs = obs if obs is not None else NOOP_OBS
        self.costs = costs or OperationCosts()
        self.keepalive = keepalive or KeepAlive()
        self.script_path = script_path
        self.repository_dir = repository_dir
        self.replication = replication
        #: Mutating dispatches between on-disk journal appends (0 =
        #: never sync automatically); requires ``repository_dir``.
        self.sync_interval = sync_interval
        self._mutations_since_sync = 0
        self.store = ShardedSnapshotStore(
            clock, agent, shard_count=shards,
            diff_options=diff_options, options=store_options, obs=self.obs,
            guard=guard, quarantine=quarantine,
        )
        #: One full CGI service per shard: the response-rendering code
        #: is shared with the reference deployment, not reimplemented.
        self.services: List[SnapshotService] = [
            SnapshotService(
                shard_store, keepalive=self.keepalive, costs=self.costs,
                script_path=script_path,
            )
            for shard_store in self.store.shards
        ]
        self.pools: List[WorkerPool] = [
            WorkerPool(workers_per_shard, queue_limit, obs=self.obs,
                       name=f"serve.shard{index:02d}.pool")
            for index in range(shards)
        ]
        self.response_caches: List[ResponseCache] = [
            ResponseCache(capacity=response_cache_size) for _ in range(shards)
        ]
        #: The replication layer is engaged only when asked for — at
        #: R=1 with no fault plan the dispatch path is byte-for-byte
        #: the unreplicated server's, which the identity gates rely on.
        self.replicator: Optional[ReplicationManager] = None
        if replication > 1 or fault_plan is not None or scrub_interval:
            self.replicator = ReplicationManager(
                self.store,
                replication=replication,
                fault_plan=fault_plan,
                directory=repository_dir,
                scrub_interval=scrub_interval,
                on_reset=self._on_shard_reset,
                on_repair=self._on_shard_repair,
            )
            self.obs.register_stats("serve.replication",
                                    self.replicator.stats)
        self.requests = 0
        self.shed = 0
        self.cache_hits = 0
        #: The last dispatch's schedule — the closed-loop driver reads
        #: completion times from here right after calling the server.
        self.last_admission: Optional[Admission] = None
        self._c_requests = self.obs.counter("serve.requests")
        self._c_shed = self.obs.counter("serve.shed")
        self._c_cache_hits = self.obs.counter("serve.cache.hits")
        self._c_cache_misses = self.obs.counter("serve.cache.misses")
        self._h_latency = {
            action: self.obs.histogram(f"serve.latency.{action}")
            for action in _TRACKED_ACTIONS + ("other",)
        }
        self.obs.register_stats("serve.server", self.stats)

    # ------------------------------------------------------------------
    # Replication hooks
    # ------------------------------------------------------------------
    def _on_shard_reset(self, shard_index: int) -> None:
        """A shard crashed (or just recovered): its store object was
        replaced, so rebuild the CGI service wrapping it, and drop the
        shard's whole response cache — cached responses may describe
        state the crash destroyed (or that recovery just rebuilt)."""
        self.services[shard_index] = SnapshotService(
            self.store.shards[shard_index], keepalive=self.keepalive,
            costs=self.costs, script_path=self.script_path,
        )
        self.response_caches[shard_index].clear()

    def _on_shard_repair(self, shard_index: int, url: str) -> None:
        """Replication repair rewrote ``url``'s state on this shard:
        drop every cached response for it, pinned entries included — a
        divergence rebuild can change what a pinned revision means."""
        self.response_caches[shard_index].invalidate_url(
            url, volatile_only=False)

    # ------------------------------------------------------------------
    # CGI entry point
    # ------------------------------------------------------------------
    def __call__(self, request: Request, now: int) -> Response:
        response, _schedule = self.dispatch(request, now)
        return response

    def dispatch(
        self, request: Request, now: int
    ) -> Tuple[Response, Union[Admission, Rejection, None]]:
        """Serve one request; also return its pool schedule (None for
        requests the server answers without touching a pool)."""
        self.requests += 1
        self._c_requests.inc()
        if self.replicator is not None:
            # Fault transitions and the anti-entropy scrub run on the
            # request stream's virtual timestamps — deterministically.
            self.replicator.advance(now)
        if request.method == "POST":
            params = parse_query_string(request.body)
        else:
            params = parse_query_string(request.url.query)
        action = params.get("action", "")
        url = params.get("url", "")

        # Operator surfaces answer from the front end itself: their
        # content spans every shard, and they must stay reachable even
        # with all pools saturated.
        if action == "stats":
            return self._stats_page(), None
        if action == "metrics":
            return self._metrics_page(params.get("format", "text")), None
        if action == "fsck":
            return self._fsck_page(params.get("repair") == "1"), None

        if self.replicator is not None and url:
            serving = self.replicator.serving_index(url)
            if serving is None:
                # The whole replica set is down.  Tell the client when
                # the earliest replica is scheduled back, exactly like
                # a queue-full shed — ResilientAgent and the closed
                # loop both honor Retry-After, so the request is
                # retried, not lost.
                self.replicator.unavailable += 1
                self.shed += 1
                self._c_shed.inc()
                self.last_admission = None
                rejection = Rejection(
                    retry_after=self.replicator.retry_after(url, now))
                return self._shed_response(rejection), rejection
            shard_index = serving
            self.store.router.routed[shard_index] += 1
            self.store._c_routes[shard_index].inc()
        else:
            shard_index = self._shard_index(url)
        cache = self.response_caches[shard_index]
        pool = self.pools[shard_index]
        key = self._cache_key(params, url, request)

        cached = cache.get(key) if key is not None else None
        if cached is not None:
            self.cache_hits += 1
            self._c_cache_hits.inc()
        elif key is not None:
            self._c_cache_misses.inc()

        cost = self._cost(action, params, shard_index,
                          cache_hit=cached is not None)
        if self.replicator is not None:
            cost *= self.replicator.slow_factor[shard_index]
        schedule = pool.admit(cost, now)
        if isinstance(schedule, Rejection):
            self.shed += 1
            self._c_shed.inc()
            self.last_admission = None
            return self._shed_response(schedule), schedule
        self.last_admission = schedule
        self._observe_latency(action, schedule.latency(now))

        mutates = self._mutates(action, params) and bool(url)
        if (self.replicator is not None and url and not mutates):
            # Read repair: live replicas that visibly lag the serving
            # copy are converged before the response leaves.
            self.replicator.on_read(url, shard_index)
        if cached is not None:
            return cached, schedule
        response = self.services[shard_index](request, now)
        if key is not None:
            cache.put(key, response)
        if mutates:
            cache.invalidate_url(self._canonical(url))
            if self.replicator is not None:
                self.replicator.on_write(url, shard_index)
            self._note_mutation()
        return response, schedule

    def checkin_content(self, user: str, url: str, body: str):
        """Check in content out-of-band (the tracker / fixed-page
        archiver path) without going stale: the shard's volatile cache
        entries for the URL — date-resolved views, TimeGate 302s,
        TimeMaps — are dropped, exactly as a dispatched ``remember``
        would have dropped them."""
        result = self.store.checkin_content(user, url, body)
        try:
            index = self.store.router.route(url)
        except Exception:
            index = 0
        self.response_caches[index].invalidate_url(self._canonical(url))
        self._note_mutation()
        return result

    def _note_mutation(self) -> None:
        """Periodic on-disk journal sync, counted in mutations so a
        read-only stretch never rewrites anything."""
        if not self.sync_interval or self.repository_dir is None:
            return
        self._mutations_since_sync += 1
        if self._mutations_since_sync < self.sync_interval:
            return
        self._mutations_since_sync = 0
        live = None
        if self.replicator is not None:
            live = [index for index, up
                    in enumerate(self.replicator.alive) if up]
        append_sharded(self.store, self.repository_dir,
                       replication=self.replication, only=live)

    # ------------------------------------------------------------------
    # Routing, caching, cost model
    # ------------------------------------------------------------------
    def _canonical(self, url: str) -> str:
        try:
            return self.store.router.canonical(url)
        except Exception:
            return url

    def _shard_index(self, url: str) -> int:
        """No-URL requests (the registration form) go to shard 0, like
        the replicated service routed them to replica 0."""
        if not url:
            return 0
        try:
            index = self.store.router.route(url)
        except Exception:
            return 0
        self.store._c_routes[index].inc()
        return index

    def _cache_key(self, params: Dict[str, str], url: str,
                   request: Optional[Request] = None):
        if not url:
            return None
        canonical = dict(params)
        canonical["url"] = self._canonical(url)
        if canonical.get("action") == "timegate" and request is not None:
            # Datetime negotiation varies on a header, not a query
            # parameter; fold it into the key so two targets never
            # share a cached 302 (exactly what Vary: accept-datetime
            # tells a real shared cache).
            canonical["accept_datetime"] = request.headers.get(
                ACCEPT_DATETIME, ""
            ) or ""
        return cacheable_key(canonical)

    @staticmethod
    def _mutates(action: str, params: Dict[str, str]) -> bool:
        """Could this action check a new revision in?  ``remember``
        always; ``diff`` when the new endpoint is unpinned (the Diff
        link fetches the live page and archives it)."""
        if action == "remember":
            return True
        if action == "diff":
            return params.get("r2") is None
        return False

    def _cost(self, action: str, params: Dict[str, str], shard_index: int,
              cache_hit: bool) -> int:
        """Simulated worker-seconds one request occupies a worker.

        The response cache turns any request into a memory read; a
        pinned diff whose result is already in the shard's DiffCache
        skips the HtmlDiff run; everything else mirrors the
        :class:`OperationCosts` arithmetic the CGI service charges.
        """
        costs = self.costs
        if cache_hit:
            return costs.cheap
        if action == "remember":
            return costs.fetch
        if action == "diff":
            r1, r2 = params.get("r1"), params.get("r2")
            if r1 is not None and r2 is not None:
                store = self.store.shards[shard_index]
                shared_key = DiffCache.make_key(
                    self._canonical(params.get("url", "")), r1, r2,
                    store.diff_options,
                )
                if store.diff_cache.peek(shared_key):
                    return costs.cheap
                return costs.htmldiff
            return costs.fetch + costs.htmldiff
        return costs.cheap

    def _observe_latency(self, action: str, latency: int) -> None:
        name = action if action in _TRACKED_ACTIONS else (
            "form" if not action else "other"
        )
        self._h_latency[name].observe(latency)

    # ------------------------------------------------------------------
    # Backpressure and operator pages
    # ------------------------------------------------------------------
    def _shed_response(self, rejection: Rejection) -> Response:
        response = make_response(
            503,
            "<P>The snapshot facility is at its simultaneous-user "
            "limit; please retry shortly.</P>",
        )
        response.headers.set("Retry-After", str(rejection.retry_after))
        return response

    def _stats_page(self) -> Response:
        padding = self.keepalive.padding(self.costs.cheap)
        stats = dict(self.store.stats())
        stats["serve"] = self.stats()
        return make_response(200, padding + stats_page_html(stats))

    def _metrics_page(self, fmt: str) -> Response:
        snapshot = self.obs.snapshot()
        if fmt == "json":
            return make_response(200, to_json(snapshot),
                                 content_type="application/json")
        if fmt != "text":
            return make_response(
                400, "<HTML><HEAD><TITLE>Snapshot error</TITLE></HEAD><BODY>"
                     "<H1>Snapshot error</H1>"
                     f"<P>unknown metrics format {fmt!r}</P></BODY></HTML>",
            )
        return make_response(200, to_prometheus(snapshot),
                             content_type="text/plain")

    def _fsck_page(self, repair: bool) -> Response:
        if self.repository_dir is None:
            return make_response(
                400, "<HTML><HEAD><TITLE>Snapshot error</TITLE></HEAD><BODY>"
                     "<H1>Snapshot error</H1><P>fsck requires an on-disk "
                     "repository directory</P></BODY></HTML>",
            )
        padding = self.keepalive.padding(self.costs.cheap)
        report = verify_sharded(self.repository_dir, repair=repair)
        return make_response(200 if report.ok else 500,
                             padding + fsck_page_html(report))

    # ------------------------------------------------------------------
    def attach_scheduler(self, scheduler) -> None:
        """Deterministic concurrency: wire every shard's locks and
        failpoints to a :class:`~repro.core.snapshot.sched.SimScheduler`
        so simulated request processes interleave reproducibly."""
        self.store.attach_scheduler(scheduler)

    def stats(self) -> Dict[str, object]:
        pools = [pool.stats() for pool in self.pools]
        caches = [cache.stats() for cache in self.response_caches]
        lookups = sum(c["hits"] + c["misses"] for c in caches)
        hits = sum(c["hits"] for c in caches)
        out: Dict[str, object] = {
            "requests": self.requests,
            "shed": self.shed,
            "shards": self.store.shard_count,
            "routed": list(self.store.router.routed),
            "pool": {
                "workers": sum(p["workers"] for p in pools),
                "admitted": sum(p["admitted"] for p in pools),
                "rejected": sum(p["rejected"] for p in pools),
                "queued": sum(p["queued"] for p in pools),
                "busy_seconds": sum(p["busy_seconds"] for p in pools),
            },
            "response_cache": {
                "hits": hits,
                "misses": sum(c["misses"] for c in caches),
                "evictions": sum(c["evictions"] for c in caches),
                "invalidations": sum(c["invalidations"] for c in caches),
                "hit_rate": (hits / lookups) if lookups else 0.0,
            },
        }
        if self.replicator is not None:
            out["replication"] = self.replicator.stats()
        return out
